"""Renderings of an :class:`~repro.analysis.engine.AnalysisResult`.

Three formats, all deterministic (no timestamps, stable ordering):

* ``text`` -- the human default: one ``path:line:col: CODE message``
  line per active finding plus a summary;
* ``json`` -- the machine form consumed by tests and tooling;
* ``github`` -- GitHub Actions workflow annotations, so CI failures
  show up inline on the offending lines of a pull request.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.engine import AnalysisResult
from repro.analysis.rules import Finding

__all__ = ["render_text", "render_json", "render_github"]


def _sorted_findings(findings: List[Finding]) -> List[Finding]:
    return sorted(
        findings, key=lambda finding: (finding.path, finding.line, finding.column, finding.code)
    )


def render_text(result: AnalysisResult, show_suppressed: bool = False) -> str:
    """Human-readable report; active findings only unless asked."""
    lines: List[str] = []
    for finding in _sorted_findings(result.findings):
        if finding.status == "active":
            lines.append(
                f"{finding.location()}: {finding.code} "
                f"[{finding.severity.value}] {finding.message}"
            )
        elif show_suppressed:
            reason = (
                f" ({finding.suppress_reason})" if finding.suppress_reason else ""
            )
            lines.append(
                f"{finding.location()}: {finding.code} "
                f"[{finding.status}]{reason} {finding.message}"
            )
    counts = result.counts()
    lines.append(
        f"{len(result.files)} files analyzed: {counts['active']} findings, "
        f"{counts['suppressed']} suppressed, {counts['baselined']} baselined"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (stable key order, no timestamps)."""
    payload = {
        "files": len(result.files),
        "summary": result.counts(),
        "findings": [
            {
                "code": finding.code,
                "severity": finding.severity.value,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "message": finding.message,
                "status": finding.status,
                "suppress_reason": finding.suppress_reason,
                "fingerprint": finding.fingerprint,
            }
            for finding in _sorted_findings(result.findings)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_github(result: AnalysisResult) -> str:
    """GitHub Actions ``::error``/``::warning`` workflow annotations."""
    lines: List[str] = []
    for finding in _sorted_findings(result.unsuppressed):
        level = "error" if finding.severity.value == "error" else "warning"
        message = finding.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.column},title={finding.code}::{message}"
        )
    return "\n".join(lines)
