"""CLI: ``python -m repro.analysis [paths...]``.

Exit codes
----------
0   no unsuppressed findings
1   at least one unsuppressed finding (the CI gate)
2   usage error (bad path, unknown rule code, bad baseline file)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import analyze_paths, load_baseline, write_baseline
from repro.analysis.report import render_github, render_json, render_text
from repro.analysis.rules import all_rules


def _list_rules() -> str:
    blocks: List[str] = []
    for rule in all_rules():
        scope = ", ".join(rule.scope.include)
        if rule.scope.exclude:
            scope += f" (except {', '.join(rule.scope.exclude)})"
        blocks.append(
            f"{rule.code} {rule.name} [{rule.severity.value}]\n"
            f"  scope: {scope}\n"
            f"  {rule.rationale}"
        )
    return "\n\n".join(blocks)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism and simulation-safety linter. Checks the repo's "
            "fixed-seed reproducibility invariants (see --list-rules) and "
            "exits nonzero on any finding not suppressed with a justified "
            "'# repro: ignore[CODE] <reason>' comment."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to analyze (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory that scope patterns and reported paths are relative to",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline JSON file; recorded findings do not fail the gate",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record all current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed/baselined findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule's code, scope, and rationale, then exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0
    if options.write_baseline and not options.baseline:
        parser.error("--write-baseline requires --baseline PATH")

    select = None
    if options.select:
        select = [code.strip() for code in options.select.split(",") if code.strip()]

    root = Path(options.root)
    baseline = None
    try:
        if options.baseline and not options.write_baseline:
            baseline = load_baseline(Path(options.baseline))
        result = analyze_paths(
            options.paths, root=root, baseline=baseline, select=select
        )
    except (FileNotFoundError, KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2

    if options.write_baseline:
        recorded = write_baseline(Path(options.baseline), result)
        print(f"baseline: recorded {recorded} findings to {options.baseline}")
        return 0

    if options.format == "json":
        print(render_json(result))
    elif options.format == "github":
        output = render_github(result)
        if output:
            print(output)
        print(render_text(result), file=sys.stderr)
    else:
        print(render_text(result, show_suppressed=options.show_suppressed))
    return 1 if result.unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
