"""Analysis engine: discovery, scoping, suppressions, and baselines.

One :func:`analyze_paths` call is one analyzer run: discover ``*.py``
files under the given paths, run every registered rule whose scope
matches each file, apply inline suppressions, then grandfather any
findings recorded in a committed baseline.

Suppressions
------------
A finding is suppressed by a comment on the *same line* (the first line
of the flagged expression)::

    order = list(self._streams.values())  # repro: ignore[DET001] insertion order is the draw order contract

The justification text after the bracket is required: a suppression
without one does not suppress and is itself reported (``SUP001``), as
is a suppression that matches no finding -- stale ignores rot into
false documentation otherwise.

Baselines
---------
A baseline JSON file records fingerprints of known findings so a new
rule can land before its full triage is finished.  Fingerprints hash
the file path, rule code, and stripped source-line text (not the line
number), so unrelated edits above a finding do not invalidate it.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.rules import Finding, Rule, Scope, Severity, all_rules
from repro.analysis.visitor import AnalysisVisitor, FileContext

__all__ = [
    "PARSE_CODE",
    "SUPPRESSION_CODE",
    "Suppression",
    "AnalysisResult",
    "analyze_paths",
    "load_baseline",
    "write_baseline",
]

#: Engine-level pseudo-rule codes (not in the registry, never scoped).
PARSE_CODE = "PARSE001"
SUPPRESSION_CODE = "SUP001"

#: Directory names never descended into during discovery.  Explicitly
#: listed *files* are always analyzed, so the rule-fixture corpus under
#: ``tests/fixtures/`` (deliberate violations) is reachable by tests
#: while a whole-tree scan of ``tests`` skips it.
_SKIPPED_DIRECTORIES = frozenset({"__pycache__", "fixtures"})

_SUPPRESSION = re.compile(
    r"#\s*repro:\s*ignore\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*)$"
)
_SUPPRESSION_MARKER = re.compile(r"#\s*repro:\s*ignore\b")


@dataclass
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    root: str
    files: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    @property
    def unsuppressed(self) -> List[Finding]:
        """Findings that fail the gate."""
        return [finding for finding in self.findings if finding.status == "active"]

    def counts(self) -> Dict[str, int]:
        """Totals by status, for summary lines."""
        totals = {"active": 0, "suppressed": 0, "baselined": 0}
        for finding in self.findings:
            totals[finding.status] = totals.get(finding.status, 0) + 1
        return totals


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
def discover_files(paths: Sequence[str], root: Path) -> List[Path]:
    """Resolve CLI path arguments to an ordered, de-duplicated file list."""
    discovered: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = [
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _skipped(candidate.relative_to(path))
            ]
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                discovered.append(candidate)
    return discovered


def _skipped(relative: Path) -> bool:
    return any(
        part in _SKIPPED_DIRECTORIES or part.startswith(".")
        for part in relative.parts[:-1]
    )


def _relative_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# ----------------------------------------------------------------------
# Suppression parsing
# ----------------------------------------------------------------------
def parse_suppressions(
    source: str, path: str
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Extract suppressions per line, plus findings for malformed ones.

    Tokenizes rather than greps so that prose *mentioning* the
    suppression syntax (docstrings, help text, string literals) is never
    mistaken for an actual suppression comment.
    """
    suppressions: Dict[int, Suppression] = {}
    malformed: List[Finding] = []
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type != tokenize.COMMENT:
            continue
        text = token.string
        number = token.start[0]
        marker = _SUPPRESSION_MARKER.search(text)
        if marker is None:
            continue
        match = _SUPPRESSION.search(text)
        codes: Tuple[str, ...] = ()
        reason = ""
        if match is not None:
            codes = tuple(
                code.strip() for code in match.group("codes").split(",") if code.strip()
            )
            reason = match.group("reason").strip()
        if match is None or not codes:
            malformed.append(
                _engine_finding(
                    SUPPRESSION_CODE,
                    "malformed suppression: expected "
                    "'# repro: ignore[CODE] <justification>'",
                    path,
                    number,
                    token.start[1] + marker.start() + 1,
                )
            )
            continue
        if not reason:
            malformed.append(
                _engine_finding(
                    SUPPRESSION_CODE,
                    f"suppression of {', '.join(codes)} has no justification "
                    "text; say why the finding is safe",
                    path,
                    number,
                    token.start[1] + marker.start() + 1,
                )
            )
            continue
        suppressions[number] = Suppression(line=number, codes=codes, reason=reason)
    return suppressions, malformed


def _engine_finding(
    code: str, message: str, path: str, line: int, column: int = 1
) -> Finding:
    return Finding(
        code=code,
        message=message,
        path=path,
        line=line,
        column=column,
        severity=Severity.ERROR,
    )


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def _fingerprint(path: str, code: str, line_text: str, occurrence: int) -> str:
    payload = f"{path}::{code}::{line_text.strip()}::{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> Set[str]:
    """The fingerprint set of a baseline file (empty if absent)."""
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"baseline {path} is not a repro.analysis baseline file")
    return set(data["fingerprints"])


def write_baseline(path: Path, result: AnalysisResult) -> int:
    """Record every currently active finding; returns how many."""
    fingerprints = sorted(finding.fingerprint for finding in result.unsuppressed)
    payload = {
        "version": 1,
        "comment": (
            "Grandfathered repro.analysis findings. Entries disappear as "
            "findings are fixed; do not add entries by hand."
        ),
        "fingerprints": fingerprints,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(fingerprints)


# ----------------------------------------------------------------------
# Per-file analysis
# ----------------------------------------------------------------------
def _analyze_file(
    path: Path,
    relative: str,
    rules: Sequence[Rule],
    scopes: Mapping[str, Scope],
) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=relative)
    except SyntaxError as error:
        return [
            _engine_finding(
                PARSE_CODE,
                f"file does not parse: {error.msg}",
                relative,
                error.lineno or 1,
                (error.offset or 0) + 1,
            )
        ]

    applicable = [
        rule
        for rule in rules
        if scopes.get(rule.code, rule.scope).applies_to(relative)
    ]
    context = FileContext(relative, tree)
    findings = AnalysisVisitor(applicable).run(tree, context)

    suppressions, malformed = parse_suppressions(source, relative)
    for finding in findings:
        suppression = suppressions.get(finding.line)
        if suppression is not None and finding.code in suppression.codes:
            finding.status = "suppressed"
            finding.suppress_reason = suppression.reason
            suppression.used = True
    for _line, suppression in sorted(suppressions.items()):
        if not suppression.used:
            malformed.append(
                _engine_finding(
                    SUPPRESSION_CODE,
                    f"unused suppression of {', '.join(suppression.codes)}: "
                    "no matching finding on this line",
                    relative,
                    suppression.line,
                )
            )
    findings.extend(malformed)
    findings.sort(key=lambda finding: (finding.line, finding.column, finding.code))

    occurrences: Dict[Tuple[str, str], int] = {}
    for finding in findings:
        line_text = lines[finding.line - 1] if finding.line <= len(lines) else ""
        key = (finding.code, line_text.strip())
        occurrence = occurrences.get(key, 0)
        occurrences[key] = occurrence + 1
        finding.fingerprint = _fingerprint(
            relative, finding.code, line_text, occurrence
        )
    return findings


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def analyze_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    scopes: Optional[Mapping[str, Scope]] = None,
    baseline: Optional[Set[str]] = None,
    select: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Run the analyzer over ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories, absolute or relative to ``root``.
    root:
        Directory scope patterns and reported paths are relative to;
        defaults to the current working directory.
    rules:
        Rule instances to run; defaults to the full registry.
    scopes:
        Per-code :class:`~repro.analysis.rules.Scope` overrides -- how
        tests aim a rule at fixture files outside its default packages,
        and how a downstream config could widen or narrow a package's
        rule set.
    baseline:
        Fingerprints (from :func:`load_baseline`) to grandfather:
        matching active findings become ``"baselined"``.
    select:
        Restrict the run to these rule codes.
    """
    root = Path.cwd() if root is None else root
    active_rules: Sequence[Rule] = all_rules() if rules is None else rules
    if select is not None:
        wanted = set(select)
        unknown = wanted - {rule.code for rule in active_rules}
        if unknown:
            raise KeyError(f"unknown rule codes: {', '.join(sorted(unknown))}")
        active_rules = [rule for rule in active_rules if rule.code in wanted]

    result = AnalysisResult(root=str(root))
    for path in discover_files(paths, root):
        relative = _relative_path(path, root)
        result.files.append(relative)
        result.findings.extend(
            _analyze_file(path, relative, active_rules, scopes or {})
        )
    if baseline:
        for finding in result.findings:
            if finding.status == "active" and finding.fingerprint in baseline:
                finding.status = "baselined"
    return result
