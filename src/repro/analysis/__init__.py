"""Determinism and simulation-safety linter for this repository.

Every result of the reproduction rests on fixed-seed, bit-identical
stochastic experiments.  That contract has been broken silently three
times in this repo's history -- ``hash(kind)`` seeding that varied with
``PYTHONHASHSEED`` (figure 9), RNG draws made in set-iteration order
(the SAN executor), and colliding ``RandomStreams.spawn`` children --
each caught ad hoc, after the fact.  This package encodes the invariants
behind those bugs as named, testable AST lint rules and gates CI on
them:

* :mod:`repro.analysis.rules` -- the :class:`Rule` framework, the rule
  registry, and the initial rule set (``DET001``..``DET005``,
  ``PICKLE001``, ``MUT001``);
* :mod:`repro.analysis.visitor` -- a single-pass AST visitor that
  dispatches each node to the rules interested in it;
* :mod:`repro.analysis.engine` -- file discovery, per-package rule
  scoping, inline ``# repro: ignore[CODE] <reason>`` suppressions
  (justification text required), and committed-baseline support;
* :mod:`repro.analysis.report` -- human text, JSON, and GitHub
  annotation renderings;
* :mod:`repro.analysis.docs` -- a separate, self-contained gate: the
  intra-repo markdown link checker behind the CI ``docs`` job
  (``python -m repro.analysis.docs``);
* ``python -m repro.analysis src tests benchmarks`` -- the CLI, which
  exits nonzero on any unsuppressed finding.

The analyzer holds itself to its own contract: ``repro.analysis`` is
inside the scope of the strictest rule (``DET001``) and must report
zero findings on its own source (covered by a self-hosting test).
"""

from repro.analysis.engine import (
    AnalysisResult,
    Suppression,
    analyze_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import (
    Finding,
    Rule,
    Scope,
    Severity,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.report import render_github, render_json, render_text

__all__ = [
    "AnalysisResult",
    "Finding",
    "Rule",
    "Scope",
    "Severity",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "get_rule",
    "load_baseline",
    "register_rule",
    "render_github",
    "render_json",
    "render_text",
    "write_baseline",
]
