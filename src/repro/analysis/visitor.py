"""Single-pass dispatching AST visitor and its per-file context.

The engine parses each file once; :class:`AnalysisVisitor` walks the
tree once, dispatching every node to the rules that registered interest
in its type.  :class:`FileContext` carries what rules need beyond the
node itself: the file path, parent links, the enclosing
function/class stacks, which names were defined locally inside a
function (for picklability checks), and an import-alias table that
resolves expressions like ``np.random.seed`` to the dotted name
``numpy.random.seed`` regardless of how the module was imported.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.rules import Finding, Rule

__all__ = ["FileContext", "AnalysisVisitor"]


class FileContext:
    """Resolution and traversal context for one analyzed file."""

    def __init__(self, path: str, tree: ast.AST) -> None:
        self.path = path
        #: Names of enclosing functions, innermost last.
        self.function_stack: List[str] = []
        #: Names of enclosing classes, innermost last.
        self.class_stack: List[str] = []
        self._parents: Dict[int, ast.AST] = {}
        # AST nodes lack value hashing, so the parent map is keyed by
        # object identity; it lives for one parse, in one process, and is
        # never iterated in key order -- exactly the DET005 carve-out.
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent  # repro: ignore[DET005] in-process identity map, never ordered
        self._module_imports: Dict[str, str] = {}
        self._from_imports: Dict[str, str] = {}
        self._collect_imports(tree)
        # Stack of per-function-scope def/class name sets; module level is
        # deliberately absent (module-level definitions pickle fine).
        self._local_definitions: List[Set[str]] = []

    # ------------------------------------------------------------------
    # Imports and name resolution
    # ------------------------------------------------------------------
    def _collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._module_imports[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds the *top* package name.
                        top = alias.name.split(".")[0]
                        self._module_imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports resolve inside this repo
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self._from_imports[bound] = f"{node.module}.{alias.name}"

    def resolved_name(self, node: ast.AST) -> Optional[str]:
        """The dotted name of ``node`` with import aliases expanded.

        A bare :class:`ast.Name` resolves through the import table
        (``np`` -> ``numpy``, ``from time import perf_counter`` makes
        ``perf_counter`` -> ``time.perf_counter``) and otherwise to
        itself, so builtins resolve to their own name.  Returns ``None``
        for expressions that are not name/attribute chains.
        """
        if isinstance(node, ast.Name):
            if node.id in self._from_imports:
                return self._from_imports[node.id]
            if node.id in self._module_imports:
                return self._module_imports[node.id]
            return node.id
        if isinstance(node, ast.Attribute):
            base = self.resolved_name(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return self._parents.get(id(node))  # repro: ignore[DET005] lookup in the identity map built in __init__

    def is_locally_defined(self, name: str) -> bool:
        """``True`` if ``name`` is a def/class inside an enclosing function."""
        return any(name in scope for scope in self._local_definitions)

    # ------------------------------------------------------------------
    # Stack maintenance (driven by the visitor)
    # ------------------------------------------------------------------
    def enter_function(self, name: str) -> None:
        self.function_stack.append(name)
        self._local_definitions.append(set())

    def exit_function(self) -> None:
        self.function_stack.pop()
        self._local_definitions.pop()

    def record_definition(self, name: str) -> None:
        """Register a def/class name in the innermost function scope."""
        if self._local_definitions:
            self._local_definitions[-1].add(name)


class AnalysisVisitor:
    """Walks one tree, feeding each node to the interested rules."""

    def __init__(self, rules: List["Rule"]) -> None:
        self._dispatch: Dict[Type[ast.AST], List["Rule"]] = {}
        for rule in rules:
            for node_type in rule.interests:
                self._dispatch.setdefault(node_type, []).append(rule)

    def run(self, tree: ast.AST, context: FileContext) -> List["Finding"]:
        """Single pass over ``tree``; returns findings in source order."""
        findings: List["Finding"] = []
        self._visit(tree, context, findings)
        findings.sort(key=lambda finding: (finding.line, finding.column, finding.code))
        return findings

    # ------------------------------------------------------------------
    def _visit(
        self, node: ast.AST, context: FileContext, findings: List["Finding"]
    ) -> None:
        for rule in self._dispatch.get(type(node), ()):
            findings.extend(rule.check(node, context))

        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            context.record_definition(node.name)
            context.enter_function(node.name)
            self._visit_children(node, context, findings)
            context.exit_function()
        elif isinstance(node, ast.Lambda):
            context.enter_function("<lambda>")
            self._visit_children(node, context, findings)
            context.exit_function()
        elif isinstance(node, ast.ClassDef):
            context.record_definition(node.name)
            context.class_stack.append(node.name)
            self._visit_children(node, context, findings)
            context.class_stack.pop()
        else:
            self._visit_children(node, context, findings)

    def _visit_children(
        self, node: ast.AST, context: FileContext, findings: List["Finding"]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, context, findings)
