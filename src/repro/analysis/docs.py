"""Intra-repo markdown link checker for the docs CI gate.

``README.md`` and ``docs/ARCHITECTURE.md`` route readers across the
repository with relative links; a file rename or section retitle strands
them silently.  This module resolves every relative link (and
``#fragment`` heading anchor) in ``README.md``, ``ROADMAP.md`` and
``docs/**/*.md`` against the working tree and reports the broken ones.

Run as ``python -m repro.analysis.docs [root]``:

0   every link resolves
1   at least one broken link (the CI gate)
2   usage error (root is not a directory)

External links (``http(s)://``, ``mailto:``) are out of scope -- CI
must not depend on the network.  The fenced doctest examples in
``docs/ARCHITECTURE.md`` are checked separately by ``python -m doctest``;
together the two checks make up the CI ``docs`` job.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

#: Inline markdown link or image: ``[text](target)`` / ``![alt](target)``,
#: with an optional ``"title"`` after the target.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


@dataclass(frozen=True)
class BrokenLink:
    """One unresolvable link: where it is and why it is broken."""

    file: str
    line: int
    target: str
    reason: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: broken link '{self.target}' ({self.reason})"


def markdown_files(root: Path) -> List[Path]:
    """The markdown files the gate covers, in deterministic order."""
    files = [root / "README.md", root / "ROADMAP.md"]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def _visible_lines(text: str) -> Iterable[Tuple[int, str]]:
    """Lines with fenced code blocks and inline code spans blanked out."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield lineno, _CODE_SPAN_RE.sub("", line)


def extract_links(text: str) -> List[Tuple[int, str]]:
    """``(line, target)`` for every inline link outside code blocks."""
    links: List[Tuple[int, str]] = []
    for lineno, line in _visible_lines(text):
        for match in _LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def slugify(heading: str) -> str:
    """GitHub's heading-to-anchor slug (lowercase, punctuation dropped)."""
    text = _CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(text: str) -> Set[str]:
    """Every anchor a markdown file exposes, with GitHub's dedup suffixes."""
    anchors: Set[str] = set()
    seen: Dict[str, int] = {}
    for _, line in _visible_lines(text):
        match = _HEADING_RE.match(line)
        if match is None:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def check_file(path: Path, root: Path) -> List[BrokenLink]:
    """All broken relative links and anchors in one markdown file."""
    text = path.read_text(encoding="utf-8")
    rel = str(path.relative_to(root))
    broken: List[BrokenLink] = []
    for lineno, target in extract_links(text):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        raw_path, _, fragment = target.partition("#")
        if raw_path:
            resolved = (path.parent / raw_path).resolve()
            if not resolved.exists():
                broken.append(BrokenLink(rel, lineno, target, "no such file"))
                continue
            anchor_source = resolved
        else:  # pure '#fragment': an anchor within this file
            anchor_source = path
        if fragment and anchor_source.suffix == ".md":
            if fragment not in heading_anchors(anchor_source.read_text(encoding="utf-8")):
                broken.append(BrokenLink(rel, lineno, target, "no such heading anchor"))
    return broken


def check_docs(root: Path) -> List[BrokenLink]:
    """All broken links across the covered markdown files."""
    broken: List[BrokenLink] = []
    for path in markdown_files(root):
        broken.extend(check_file(path, root))
    return broken


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit code."""
    root = Path(argv[0]) if argv else Path.cwd()
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    broken = check_docs(root)
    files = markdown_files(root)
    for item in broken:
        print(item)
    if broken:
        print(f"{len(broken)} broken link(s) across {len(files)} file(s)")
        return 1
    print(f"all intra-repo links resolve across {len(files)} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
