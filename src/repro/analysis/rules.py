"""Rule framework and the determinism/simulation-safety rule set.

A :class:`Rule` packages one checkable invariant: a stable code
(``DET001``), the AST node types it wants to see, the package scope it
applies to by default, a severity, and a rationale that doubles as its
documentation (``python -m repro.analysis --list-rules`` prints it).

Every rule in the initial set is derived from a real bug class that has
occurred in this repository -- see each rule's ``rationale``.  Rules are
stateless: the engine instantiates each once and the visitor calls
:meth:`Rule.check` for every interesting node, so a rule never needs to
worry about traversal order or file boundaries.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, ClassVar, Dict, Iterator, List, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.visitor import FileContext

__all__ = [
    "Severity",
    "Finding",
    "Scope",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "SIM_PACKAGES",
]


class Severity(enum.Enum):
    """How serious a finding is; both levels currently fail the gate."""

    ERROR = "error"
    WARNING = "warning"


@dataclass
class Finding:
    """One reported violation of a rule at a concrete source location.

    ``status`` is assigned by the engine after suppression/baseline
    matching: ``"active"`` findings fail the CLI, ``"suppressed"`` ones
    carry the justification of their inline ignore comment, and
    ``"baselined"`` ones were grandfathered by a committed baseline file.
    """

    code: str
    message: str
    path: str
    line: int
    column: int
    severity: Severity = Severity.ERROR
    status: str = "active"
    suppress_reason: str = ""
    fingerprint: str = ""

    def location(self) -> str:
        """``path:line:col`` in the clickable convention."""
        return f"{self.path}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Scope:
    """Which files a rule applies to, as ``fnmatch`` patterns.

    Patterns match the file path relative to the analysis root, in posix
    form (e.g. ``src/repro/des/*``).  ``fnmatch``'s ``*`` crosses ``/``
    boundaries, so one pattern covers a whole package tree.
    """

    include: Tuple[str, ...] = ("*",)
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """``True`` if the rule should run on ``path``."""
        if not any(fnmatchcase(path, pattern) for pattern in self.include):
            return False
        return not any(fnmatchcase(path, pattern) for pattern in self.exclude)


#: The packages whose code runs inside a simulation replication: any
#: nondeterminism here flows straight into RNG draw order, event order,
#: and therefore fixed-seed results.  ``repro.analysis`` itself is held
#: to the same standard so that report ordering is reproducible.
SIM_PACKAGES: Tuple[str, ...] = (
    "src/repro/des/*",
    "src/repro/san/*",
    "src/repro/cluster/*",
    "src/repro/consensus/*",
    "src/repro/faults/*",
    "src/repro/analysis/*",
)


class Rule:
    """Base class: one named, scoped, documented invariant.

    Subclasses declare class-level metadata and implement :meth:`check`;
    :func:`register_rule` adds them to the registry the engine runs.
    """

    code: ClassVar[str]
    name: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    #: One-paragraph documentation: what the rule forbids and which real
    #: bug class motivates it.  Shown by ``--list-rules``.
    rationale: ClassVar[str]
    #: Default file scope; the engine may override per run.
    scope: ClassVar[Scope] = Scope()
    #: AST node types dispatched to :meth:`check`.
    interests: ClassVar[Tuple[Type[ast.AST], ...]]

    def check(self, node: ast.AST, context: "FileContext") -> Iterator[Finding]:
        """Yield findings for ``node``; called once per interesting node."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator

    # ------------------------------------------------------------------
    def finding(
        self, context: "FileContext", node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            code=self.code,
            message=message,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (codes are unique)."""
    code = rule_class.code
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_class:
        raise ValueError(
            f"duplicate rule code {code!r}: {existing.__name__} vs "
            f"{rule_class.__name__}"
        )
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """One instance of every registered rule, ordered by code."""
    return [
        _REGISTRY[code]() for code in sorted(_REGISTRY)
    ]


def get_rule(code: str) -> Rule:
    """Instantiate the rule registered under ``code``."""
    try:
        return _REGISTRY[code]()
    except KeyError:
        raise KeyError(
            f"unknown rule code {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


# ======================================================================
# Shared AST helpers
# ======================================================================
def _is_unordered_view(expr: ast.AST) -> str | None:
    """Describe ``expr`` if it is an unordered (or order-fragile) iterable.

    Matches zero-argument ``.items()``/``.keys()``/``.values()`` calls
    (dict views: insertion-ordered, so their order encodes mutation
    history), set literals, and ``set()``/``frozenset()`` calls (hash
    ordered: varies with ``PYTHONHASHSEED`` for str elements).
    """
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("items", "keys", "values")
        and not expr.args
        and not expr.keywords
    ):
        return f".{expr.func.attr}() view"
    if isinstance(expr, ast.Set):
        return "set literal"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    ):
        return f"{expr.func.id}() result"
    return None


#: Builtins whose result does not depend on the order their iterable
#: argument is consumed in: a generator feeding one of these is safe to
#: run over an unordered view.  (``min``/``max`` are excluded: on ties
#: they return the first occurrence, which is order-dependent.)
_ORDER_INSENSITIVE_REDUCERS = frozenset(
    {"sum", "any", "all", "len", "set", "frozenset", "sorted"}
)

#: Builtins that materialise their argument in iteration order.
_ORDER_PRESERVING_BUILTINS = frozenset({"list", "tuple", "enumerate", "iter"})


# ======================================================================
# DET001 -- unordered iteration
# ======================================================================
@register_rule
class UnorderedIterationRule(Rule):
    code = "DET001"
    name = "unordered-iteration"
    rationale = (
        "Iterating a set, or a dict .items()/.keys()/.values() view, in an "
        "order-sensitive position inside a simulation package leaks hash "
        "ordering (PYTHONHASHSEED) or mutation history into event and RNG "
        "draw order. PR 3 fixed exactly this bug: SANExecutor drew "
        "durations in set-iteration order, so fixed-seed results differed "
        "across processes. Wrap the iterable in sorted(), or suppress with "
        "a justification when the surrounding dict's insertion order is "
        "itself part of the determinism contract. Iteration feeding an "
        "order-insensitive reducer (sum/any/all/len/set/frozenset/sorted) "
        "or a set comprehension is exempt."
    )
    scope = Scope(include=SIM_PACKAGES)
    interests = (ast.For, ast.ListComp, ast.DictComp, ast.GeneratorExp, ast.Call)

    def check(self, node: ast.AST, context: "FileContext") -> Iterator[Finding]:
        if isinstance(node, ast.For):
            yield from self._check_iterable(node.iter, context)
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for comprehension in node.generators:
                yield from self._check_iterable(comprehension.iter, context)
        elif isinstance(node, ast.GeneratorExp):
            if self._consumed_order_insensitively(node, context):
                return
            for comprehension in node.generators:
                yield from self._check_iterable(comprehension.iter, context)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_PRESERVING_BUILTINS
                and len(node.args) == 1
                and not node.keywords
            ):
                yield from self._check_iterable(node.args[0], context)

    def _check_iterable(
        self, expr: ast.AST, context: "FileContext"
    ) -> Iterator[Finding]:
        description = _is_unordered_view(expr)
        if description is not None:
            yield self.finding(
                context,
                expr,
                f"order-sensitive iteration over unordered {description}; "
                "wrap in sorted() or justify why the order is deterministic",
            )

    @staticmethod
    def _consumed_order_insensitively(
        node: ast.GeneratorExp, context: "FileContext"
    ) -> bool:
        parent = context.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE_REDUCERS
        )


# ======================================================================
# DET002 -- builtin hash()
# ======================================================================
@register_rule
class BuiltinHashRule(Rule):
    code = "DET002"
    name = "builtin-hash"
    rationale = (
        "builtin hash() on str/bytes varies from process to process under "
        "hash randomisation (PYTHONHASHSEED), so any hash() value that "
        "reaches a seed, an ordering, or a persisted artifact silently "
        "breaks cross-process reproducibility. PR 1 fixed exactly this "
        "bug: figure 9 derived simulation seeds from hash(kind). Derive "
        "stable identities with hashlib or RandomStreams._stable_hash "
        "instead; __hash__ implementations and _stable_hash itself are "
        "exempt, and purely in-process uses (dict-key memoisation) can be "
        "suppressed with a justification."
    )
    scope = Scope(include=("src/repro/*",))
    interests = (ast.Call,)

    #: Enclosing function names inside which ``hash()`` is legitimate.
    whitelisted_functions = frozenset({"__hash__", "_stable_hash"})

    def check(self, node: ast.AST, context: "FileContext") -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not (isinstance(node.func, ast.Name) and node.func.id == "hash"):
            return
        if context.resolved_name(node.func) != "hash":
            return  # shadowed by an import; not the builtin
        if self.whitelisted_functions & set(context.function_stack):
            return
        yield self.finding(
            context,
            node,
            "builtin hash() is PYTHONHASHSEED-dependent on str/bytes; use "
            "hashlib or RandomStreams._stable_hash for stable identities",
        )


# ======================================================================
# DET003 -- module-level RNG
# ======================================================================
#: numpy.random attributes that construct explicit, seedable generator
#: objects rather than drawing from the hidden module-level state.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register_rule
class ModuleLevelRandomRule(Rule):
    code = "DET003"
    name = "module-level-random"
    rationale = (
        "Drawing from the stdlib random module or numpy's module-level "
        "np.random.* state uses one hidden global stream: draws made by "
        "unrelated components interleave, so adding or reordering any draw "
        "perturbs every other component's randomness, and worker processes "
        "see different state than the parent. All randomness must come "
        "from named repro.des.random.RandomStreams streams (or an "
        "explicitly seeded np.random.default_rng). Constructing Generator/"
        "SeedSequence/bit-generator objects is exempt; default_rng() is "
        "flagged only when called without a seed."
    )
    scope = Scope(include=("src/repro/*", "tests/*", "benchmarks/*"))
    interests = (ast.Call,)

    def check(self, node: ast.AST, context: "FileContext") -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = context.resolved_name(node.func)
        if resolved is None:
            return
        if resolved == "random" or resolved.startswith("random."):
            yield self.finding(
                context,
                node,
                f"call to stdlib {resolved}() draws from the hidden global "
                "stream; use a named RandomStreams stream",
            )
            return
        prefix = "numpy.random."
        if resolved.startswith(prefix):
            attribute = resolved[len(prefix):]
            if attribute in _NUMPY_RANDOM_ALLOWED:
                return
            if attribute == "default_rng":
                if node.args or node.keywords:
                    return
                yield self.finding(
                    context,
                    node,
                    "numpy.random.default_rng() without a seed is "
                    "nondeterministic; pass a seed or SeedSequence",
                )
                return
            yield self.finding(
                context,
                node,
                f"call to {resolved}() uses numpy's module-level RNG state; "
                "use a named RandomStreams stream",
            )


# ======================================================================
# DET004 -- wall-clock reads
# ======================================================================
#: Resolved dotted names that read the host clock.  Monotonic/perf
#: counters are included: elapsed-time *metadata* is legitimate (and
#: suppressible with a justification), but a clock value feeding
#: simulation logic is a determinism bug regardless of which clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class WallClockRule(Rule):
    code = "DET004"
    name = "wall-clock-read"
    rationale = (
        "Reading the host clock (time.time, datetime.now, perf counters) "
        "inside simulation code ties results to the machine's execution "
        "speed: two fixed-seed runs diverge, and cached results stop being "
        "comparable. Simulated time must come from Simulator.now. "
        "Elapsed-time bookkeeping that provably never feeds back into "
        "results (run manifests, solver timing metadata) is suppressed "
        "with a justification; repro/experiments/artifacts.py (run "
        "timestamps) and repro/benchmarking.py (its entire purpose is "
        "timing) are exempt by scope."
    )
    scope = Scope(
        include=("src/repro/*",),
        exclude=(
            "src/repro/experiments/artifacts.py",
            "src/repro/benchmarking.py",
        ),
    )
    interests = (ast.Call,)

    def check(self, node: ast.AST, context: "FileContext") -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = context.resolved_name(node.func)
        if resolved in _WALL_CLOCK_CALLS:
            yield self.finding(
                context,
                node,
                f"wall-clock read {resolved}() in simulation code; use "
                "Simulator.now for simulated time, or justify pure "
                "elapsed-time bookkeeping",
            )


# ======================================================================
# DET005 -- identity-based state
# ======================================================================
@register_rule
class IdentityOrderingRule(Rule):
    code = "DET005"
    name = "identity-ordering"
    rationale = (
        "id() values are memory addresses: they differ between runs and "
        "processes, so ordering by id() or keying simulation state on "
        "id(obj) makes iteration order and cache keys nondeterministic. "
        "Key state on stable names or explicit sequence numbers (the DES "
        "calendar's _seq counter is the house pattern) instead."
    )
    scope = Scope(include=SIM_PACKAGES)
    interests = (ast.Call,)

    def check(self, node: ast.AST, context: "FileContext") -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not (isinstance(node.func, ast.Name) and node.func.id == "id"):
            return
        if context.resolved_name(node.func) != "id":
            return
        yield self.finding(
            context,
            node,
            "id() is a per-process memory address; key or order simulation "
            "state by stable names or sequence numbers instead",
        )


# ======================================================================
# PICKLE001 -- unpicklable plan payloads
# ======================================================================
#: Constructors whose arguments travel to ProcessPoolExecutor workers.
#: Matched on the trailing components of the resolved call name, so both
#: ``SweepPoint.make(...)`` and ``runner.SweepPoint(...)`` are covered.
_BOUNDARY_CONSTRUCTORS: Tuple[Tuple[str, ...], ...] = (
    ("SweepPoint",),
    ("SweepPoint", "make"),
    ("ReplicationPlan",),
)


@register_rule
class ProcessBoundaryPickleRule(Rule):
    code = "PICKLE001"
    name = "unpicklable-plan-payload"
    rationale = (
        "SweepPoint/ReplicationPlan payloads cross the "
        "ProcessPoolExecutor boundary in repro/experiments/runner.py and "
        "must pickle: lambdas and functions or classes defined inside "
        "another function cannot. The failure only surfaces at jobs>1 -- "
        "the jobs=1 in-process path happily executes the unpicklable "
        "plan, so the bug hides until a parallel run. Point functions "
        "must be module-level (SweepPoint's own docstring contract)."
    )
    interests = (ast.Call,)

    def check(self, node: ast.AST, context: "FileContext") -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = context.resolved_name(node.func)
        if resolved is None or not self._is_boundary(resolved):
            return
        values = list(node.args) + [keyword.value for keyword in node.keywords]
        for value in values:
            if isinstance(value, ast.Lambda):
                yield self.finding(
                    context,
                    value,
                    "lambda in a plan payload cannot be pickled to worker "
                    "processes; use a module-level function",
                )
            elif isinstance(value, ast.Name) and context.is_locally_defined(
                value.id
            ):
                yield self.finding(
                    context,
                    value,
                    f"{value.id!r} is defined inside a function and cannot "
                    "be pickled to worker processes; move it to module "
                    "level",
                )

    @staticmethod
    def _is_boundary(resolved: str) -> bool:
        parts = tuple(resolved.split("."))
        return any(
            parts[-len(suffix):] == suffix for suffix in _BOUNDARY_CONSTRUCTORS
        )


# ======================================================================
# MUT001 -- mutable dataclass field defaults
# ======================================================================
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}
)


def _mutable_default(value: ast.AST) -> str | None:
    """Describe ``value`` if it is a shared-mutable default expression."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return "mutable literal"
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in _MUTABLE_CONSTRUCTORS
    ):
        return f"{value.func.id}() call"
    return None


@register_rule
class MutableDataclassDefaultRule(Rule):
    code = "MUT001"
    name = "mutable-dataclass-default"
    rationale = (
        "A mutable default on a dataclass field is shared by every "
        "instance: one replication mutating it leaks state into all "
        "others, the classic cross-replication contamination bug. "
        "dataclasses rejects bare list/dict/set defaults at class "
        "creation, but only for those exact types and not inside "
        "field(default=...); this rule catches the whole class at lint "
        "time (complementing ruff B006, which only covers function "
        "arguments). Use field(default_factory=...)."
    )
    interests = (ast.ClassDef,)

    def check(self, node: ast.AST, context: "FileContext") -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        if not self._is_dataclass(node, context):
            return
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign) or statement.value is None:
                continue
            if "ClassVar" in ast.dump(statement.annotation):
                continue
            yield from self._check_default(statement.value, context)

    def _check_default(
        self, value: ast.AST, context: "FileContext"
    ) -> Iterator[Finding]:
        description = _mutable_default(value)
        if description is not None:
            yield self.finding(
                context,
                value,
                f"dataclass field default is a shared {description}; use "
                "field(default_factory=...)",
            )
            return
        # field(default=<mutable>) slips past the dataclasses runtime
        # check for subclasses and non-builtin containers; inspect it too.
        if isinstance(value, ast.Call):
            resolved = context.resolved_name(value.func)
            if resolved is not None and resolved.split(".")[-1] == "field":
                for keyword in value.keywords:
                    if keyword.arg == "default" and keyword.value is not None:
                        yield from self._check_default(keyword.value, context)

    @staticmethod
    def _is_dataclass(node: ast.ClassDef, context: "FileContext") -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            resolved = context.resolved_name(target)
            if resolved is not None and resolved.split(".")[-1] == "dataclass":
                return True
        return False
