"""Scheduled events.

An :class:`Event` couples a firing time with a callback.  Events are
orderable so that the scheduler can keep them in a heap: ordering is by
time, then priority, then a monotonically increasing sequence number which
guarantees deterministic FIFO tie-breaking for events scheduled at the same
instant.
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class EventState(enum.Enum):
    """Lifecycle of a scheduled event."""

    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


class Event:
    """A callback scheduled at a point in simulated time.

    Instances are created by :meth:`repro.des.simulator.Simulator.schedule`
    and friends; user code normally only holds on to an event in order to
    :meth:`cancel` it.

    Parameters
    ----------
    time:
        Absolute simulation time at which the event fires.
    priority:
        Events scheduled at the same time fire in increasing priority order
        (lower value means earlier).  The default priority is ``0``.
    seq:
        Monotonic sequence number used as the final tie-breaker; assigned by
        the simulator.
    callback:
        Callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "state", "on_cancel")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = float(time)
        self.priority = int(priority)
        self.seq = int(seq)
        self.callback = callback
        self.args = args
        self.state = EventState.PENDING
        #: Optional observer invoked exactly once when the event is
        #: cancelled; the owning simulator uses it to keep its live-event
        #: counter accurate even for events cancelled directly via
        #: ``event.cancel()``.
        self.on_cancel: Callable[["Event"], None] | None = None

    @property
    def pending(self) -> bool:
        """``True`` while the event has neither fired nor been cancelled."""
        return self.state is EventState.PENDING

    @property
    def cancelled(self) -> bool:
        """``True`` once :meth:`cancel` has been called."""
        return self.state is EventState.CANCELLED

    @property
    def fired(self) -> bool:
        """``True`` once the callback has been invoked."""
        return self.state is EventState.FIRED

    def cancel(self) -> bool:
        """Cancel the event if it is still pending.

        Returns
        -------
        bool
            ``True`` if the event was pending and is now cancelled,
            ``False`` if it had already fired or been cancelled.
        """
        if self.state is EventState.PENDING:
            self.state = EventState.CANCELLED
            if self.on_cancel is not None:
                self.on_cancel(self)
            return True
        return False

    def _sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "Event") -> bool:
        return self._sort_key() <= other._sort_key()

    def __repr__(self) -> str:
        name = getattr(self.callback, "__name__", repr(self.callback))
        return (
            f"Event(time={self.time!r}, priority={self.priority}, "
            f"seq={self.seq}, callback={name}, state={self.state.value})"
        )
