"""The discrete-event simulation loop.

The :class:`Simulator` owns a virtual clock and a priority queue of
:class:`~repro.des.event.Event` objects.  Time only advances when the next
event is dequeued; callbacks run instantaneously in virtual time and may
schedule further events.

Calendar representation
-----------------------
The heap holds ``(time, priority, seq, event)`` tuples rather than bare
:class:`Event` objects: tuple comparison happens entirely in C, so the
``heappush``/``heappop`` traffic of the hot loop never calls back into
``Event.__lt__``.  The ordering is identical (time, then priority, then the
monotonically increasing sequence number).  Cancellation stays O(1): a
cancelled event is only marked, and its heap entry is discarded lazily when
it reaches the front of the queue.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.des.event import Event, EventState
from repro.des.random import RandomStreams


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation kernel (e.g. scheduling in the past)."""


class Simulator:
    """Event-driven simulator with a floating-point virtual clock.

    Parameters
    ----------
    seed:
        Master seed for the simulator's :class:`~repro.des.random.RandomStreams`.
        Two simulators constructed with the same seed and fed the same
        sequence of scheduling calls produce identical trajectories.
    time_unit:
        Purely informational label for the unit of the clock (the repository
        uses milliseconds throughout, matching the paper's figures).
    """

    def __init__(self, seed: Optional[int] = None, time_unit: str = "ms") -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._live_events = 0
        self.time_unit = time_unit
        self.random = RandomStreams(seed)
        self._trace_hooks: list[Callable[[Event], None]] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been executed."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled and not yet cancelled.

        Maintained as a live counter updated on schedule/cancel/fire, so
        reading it is O(1) instead of a scan of the queue (hot paths poll
        it after every stepped run).
        """
        return self._live_events

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        event = Event(time, priority, self._seq, callback, args)
        event.on_cancel = self._note_cancelled
        self._seq += 1
        heapq.heappush(
            self._queue, (event.time, event.priority, event.seq, event)
        )
        self._live_events += 1
        return event

    def call_now(
        self, callback: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, callback, *args, priority=priority)

    def cancel(self, event: Event) -> bool:
        """Cancel a previously scheduled event.  Returns ``True`` on success."""
        return event.cancel()

    def add_trace_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook called with every event just before it fires."""
        self._trace_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        self._discard_cancelled()
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> bool:
        """Execute the next pending event.

        Returns
        -------
        bool
            ``True`` if an event was executed, ``False`` if the queue was
            empty.
        """
        self._discard_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)[3]
        self._now = event.time
        event.state = EventState.FIRED
        self._live_events -= 1
        self._events_processed += 1
        for hook in self._trace_hooks:
            hook(event)
        event.callback(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would advance beyond this time.  The clock is
            left at ``until`` (or at the time of the last executed event if the
            queue drains earlier).
        max_events:
            Safety valve: stop after this many events have been executed in
            this call.

        Returns
        -------
        float
            The simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        # The loop below is `while peek(): step()` flattened into one body:
        # local aliases and direct tuple access keep the per-event overhead
        # down to a heappop and the callback itself.
        queue = self._queue
        hooks = self._trace_hooks
        heappop = heapq.heappop
        pending = EventState.PENDING
        fired = EventState.FIRED
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                while queue and queue[0][3].state is not pending:
                    heappop(queue)
                if not queue:
                    break
                if until is not None and queue[0][0] > until:
                    self._now = until
                    break
                event = heappop(queue)[3]
                self._now = event.time
                event.state = fired
                self._live_events -= 1
                self._events_processed += 1
                if hooks:
                    for hook in hooks:
                        hook(event)
                event.callback(*event.args)
                executed += 1
            if until is not None and not self._stopped and self.peek() is None:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero.

        Resets every piece of per-run state: the event queue, the clock,
        the sequence counter used for same-time FIFO tie-breaking (so a
        reset simulator orders simultaneous events exactly like a fresh
        one), and the registered trace hooks (so a reused simulator does
        not keep firing a previous run's observers).

        The random streams are *not* reset; create a new simulator for a
        statistically independent replication.
        """
        for _time, _priority, _seq, event in self._queue:
            # Mark the discarded events cancelled directly (bypassing
            # Event.cancel and its on_cancel hook) so a stale handle
            # cancelled later cannot corrupt the live-event counter.
            event.state = EventState.CANCELLED
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._stopped = False
        self._events_processed = 0
        self._live_events = 0
        self._trace_hooks.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _note_cancelled(self, _event: Event) -> None:
        self._live_events -= 1

    def _discard_cancelled(self) -> None:
        queue = self._queue
        while queue and queue[0][3].state is not EventState.PENDING:
            heapq.heappop(queue)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now!r}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
