"""Discrete-event simulation kernel.

This package provides the low-level machinery shared by every simulator in
the repository:

* :class:`~repro.des.simulator.Simulator` -- the event loop, simulation
  clock and scheduling primitives.
* :class:`~repro.des.event.Event` -- a scheduled callback with cancellation
  support and deterministic tie-breaking.
* :class:`~repro.des.resource.Resource` -- a FIFO server with a fixed
  capacity, used to model CPUs and the shared network medium.
* :class:`~repro.des.random.RandomStreams` -- named, reproducible random
  number streams derived from a single master seed.
* :class:`~repro.des.process.SimProcess` -- a small convenience base class
  for entities that live inside a simulation.

The kernel is deliberately callback based rather than coroutine based: both
the SAN executor (:mod:`repro.san`) and the cluster testbed simulator
(:mod:`repro.cluster`) are specified naturally as state machines reacting to
events, and callbacks keep the kernel easy to test and reason about.
"""

from repro.des.event import Event, EventState
from repro.des.process import SimProcess
from repro.des.random import RandomStreams
from repro.des.resource import Request, Resource, ResourceStats
from repro.des.simulator import Simulator, SimulationError

__all__ = [
    "Event",
    "EventState",
    "Request",
    "Resource",
    "ResourceStats",
    "RandomStreams",
    "SimProcess",
    "SimulationError",
    "Simulator",
]
