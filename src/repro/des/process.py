"""Convenience base class for simulated entities.

A :class:`SimProcess` is anything that owns state, reacts to events and
schedules further events: a host, a protocol layer, a failure detector, a
SAN activity executor.  The base class only provides a reference to the
simulator, a name, and small helpers for timers, but having a common type
makes traces and tests uniform.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.des.event import Event
from repro.des.simulator import Simulator


class SimProcess:
    """Base class for entities living inside a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Human-readable name used in traces.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._timers: dict[str, Event] = {}

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(
        self,
        key: str,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> Event:
        """(Re)arm a named timer.

        If a timer with the same key is already pending it is cancelled
        first -- this matches the heartbeat failure detector's behaviour of
        resetting its timeout whenever a message arrives.
        """
        self.cancel_timer(key)
        event = self.sim.schedule(delay, self._fire_timer, key, callback, args)
        self._timers[key] = event
        return event

    def cancel_timer(self, key: str) -> bool:
        """Cancel the named timer if pending.  Returns ``True`` on success."""
        event = self._timers.pop(key, None)
        if event is not None and event.pending:
            event.cancel()
            return True
        return False

    def timer_pending(self, key: str) -> bool:
        """``True`` if the named timer is armed and has not fired."""
        event = self._timers.get(key)
        return event is not None and event.pending

    def cancel_all_timers(self) -> int:
        """Cancel every pending timer; returns the number cancelled."""
        cancelled = 0
        for key in list(self._timers):
            if self.cancel_timer(key):
                cancelled += 1
        return cancelled

    def _fire_timer(
        self, key: str, callback: Callable[..., Any], args: tuple[Any, ...]
    ) -> None:
        # Only forget the timer if it has not been re-armed meanwhile.
        event = self._timers.get(key)
        if event is not None and event.fired:
            del self._timers[key]
        callback(*args)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (shortcut for ``self.sim.now``)."""
        return self.sim.now

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
