"""Reproducible named random streams.

Every stochastic component of a simulation draws from its own named stream
so that adding a new component (or reordering draws inside one component)
does not perturb the random numbers seen by the others.  Streams are
derived from a single master seed through :class:`numpy.random.SeedSequence`
spawning, which guarantees statistical independence between streams.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterator, Optional

import numpy as np


class RandomStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed.  ``None`` draws a fresh nondeterministic seed from the
        operating system, which is convenient interactively but should be
        avoided in tests and benchmarks.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> rng = streams.stream("network.delay")
    >>> rng2 = RandomStreams(42).stream("network.delay")
    >>> float(rng.random()) == float(rng2.random())
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._master = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @classmethod
    def _from_sequence(
        cls, master: np.random.SeedSequence, seed: Optional[int]
    ) -> "RandomStreams":
        """Build an instance rooted at an existing seed sequence (spawn)."""
        instance = cls.__new__(cls)
        instance._seed = seed
        instance._master = master
        instance._streams = {}
        return instance

    @property
    def seed(self) -> Optional[int]:
        """The master seed this instance was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same generator object, so
        successive calls share state (as desired: a stream is a sequence).
        """
        stream = self._streams.get(name)
        if stream is None:
            child = np.random.SeedSequence(
                entropy=self._master.entropy,
                spawn_key=tuple(self._master.spawn_key) + (_stable_hash(name),),
            )
            stream = self._streams[name] = np.random.default_rng(child)
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child :class:`RandomStreams` rooted at ``name``.

        Used to give each replication of an experiment its own family of
        streams while remaining a pure function of the master seed.  The
        child's master is derived by extending this instance's
        :class:`~numpy.random.SeedSequence` spawn key (the tagged hash keeps
        ``spawn(x).stream(y)`` disjoint from ``stream(x)`` even when the
        names collide), so children of different masters never alias and
        non-integer entropy (e.g. OS-drawn entropy tuples) is preserved
        rather than discarded.
        """
        child = np.random.SeedSequence(
            entropy=self._master.entropy,
            spawn_key=tuple(self._master.spawn_key)
            + (_stable_hash(f"spawn:{name}"),),
        )
        return RandomStreams._from_sequence(child, seed=self._seed)


@lru_cache(maxsize=None)
def _stable_hash(name: str) -> int:
    """A deterministic (process-independent) 63-bit hash of ``name``.

    Python's built-in ``hash`` of strings is salted per process, which would
    destroy reproducibility across runs, so we use a small FNV-1a variant.
    Stream names recur on every replication (one simulator per replication,
    same activity names), so the hash is memoised process-wide.
    """
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) % (2**64)
    return value % (2**63)
