"""FIFO resources with deterministic service order.

The paper's network model (§3.3) decomposes the end-to-end delay of a
message into the use of three resources: the sender's CPU, the shared
network medium and the receiver's CPU.  :class:`Resource` models exactly
that kind of single-queue, fixed-capacity server: requests are served in
arrival order, each holding one unit of capacity for a caller-specified
service time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Optional

from repro.des.simulator import Simulator


@dataclass
class ResourceStats:
    """Aggregate utilisation statistics for a :class:`Resource`."""

    requests: int = 0
    completed: int = 0
    busy_time: float = 0.0
    total_wait: float = 0.0
    max_queue_length: int = 0

    def mean_wait(self) -> float:
        """Mean time a request spent queued before service began."""
        if self.completed == 0:
            return 0.0
        return self.total_wait / self.completed

    def utilization(self, elapsed: float, capacity: int = 1) -> float:
        """Fraction of ``elapsed`` time the resource spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * capacity))


@dataclass
class Request:
    """A single pending or in-service request on a :class:`Resource`."""

    service_time: float
    callback: Callable[..., Any]
    args: tuple[Any, ...]
    submitted_at: float
    started_at: Optional[float] = None
    label: str = ""
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Cancel the request if it has not started service yet.

        Cancelling an in-service request has no effect (the service completes
        normally); cancelling a queued request removes it from the queue the
        next time the resource looks for work.
        """
        if self.started_at is None:
            self.cancelled = True


class Resource:
    """A fixed-capacity FIFO server.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Human-readable name used in traces and error messages.
    capacity:
        Number of requests that may be in service simultaneously.
    """

    def __init__(self, sim: Simulator, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._queue: Deque[Request] = deque()
        self._in_service = 0
        self.stats = ResourceStats()

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """``True`` while at least one request is in service."""
        return self._in_service > 0

    @property
    def queue_length(self) -> int:
        """Number of requests waiting (not yet in service)."""
        return sum(1 for request in self._queue if not request.cancelled)

    @property
    def in_service(self) -> int:
        """Number of requests currently being served."""
        return self._in_service

    # ------------------------------------------------------------------
    def request(
        self,
        service_time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Request:
        """Queue a request for ``service_time`` units of this resource.

        ``callback(*args)`` is invoked when the service completes.  The
        request starts immediately if capacity is available, otherwise it
        waits in FIFO order.
        """
        if service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {service_time}")
        request = Request(
            service_time=float(service_time),
            callback=callback,
            args=args,
            submitted_at=self.sim.now,
            label=label,
        )
        self.stats.requests += 1
        self._queue.append(request)
        self.stats.max_queue_length = max(self.stats.max_queue_length, len(self._queue))
        self._dispatch()
        return request

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        while self._in_service < self.capacity and self._queue:
            request = self._queue.popleft()
            if request.cancelled:
                continue
            request.started_at = self.sim.now
            self.stats.total_wait += request.started_at - request.submitted_at
            self._in_service += 1
            self.sim.schedule(request.service_time, self._complete, request)

    def _complete(self, request: Request) -> None:
        self._in_service -= 1
        self.stats.completed += 1
        self.stats.busy_time += request.service_time
        request.callback(*request.args)
        self._dispatch()

    def __repr__(self) -> str:
        return (
            f"Resource(name={self.name!r}, capacity={self.capacity}, "
            f"in_service={self._in_service}, queued={self.queue_length})"
        )
