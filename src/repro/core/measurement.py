"""Measurements on the simulated cluster.

A :class:`MeasurementRunner` reproduces the paper's measurement methodology
(§4): many sequential consensus executions, separated by a fixed gap so that
they do not interfere, all processes proposing at the same nominal time
(their clocks being NTP-synchronised within tens of microseconds), and --
for class-3 runs -- the heartbeat failure detector running for the whole
experiment with its history recorded for QoS estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.cluster.message import BROADCAST, Message
from repro.cluster.neko import ProtocolLayer
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.core.latency import LatencyRecorder
from repro.core.scenarios import Scenario
from repro.failure_detectors.heartbeat import HeartbeatFailureDetector
from repro.failure_detectors.history import FailureDetectorHistory
from repro.failure_detectors.qos import QoSEstimate, estimate_qos
from repro.failure_detectors.static import StaticFailureDetector
from repro.faults.injector import FaultStats
from repro.faults.spec import FaultLoad
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import SampleSummary, summarize
from repro.traces.events import EventLog, TraceCollector


@dataclass(frozen=True)
class MeasurementConfig:
    """Configuration of one measurement experiment.

    Attributes
    ----------
    cluster:
        The cluster configuration (process count, network and scheduler
        parameters, seed).
    scenario:
        The failure/suspicion scenario (class 1, 2 or 3).
    executions:
        Number of sequential consensus executions (the paper uses 5000 for
        class 1 and 20 x 1000 for class 3; smaller values keep the harness
        fast while preserving the shapes).
    separation_ms:
        Gap between the starts of consecutive executions (10 ms in §4,
        increased when latencies exceed the gap).
    start_offset_ms:
        Nominal start time of the first execution (must exceed the largest
        clock offset so that no propose is scheduled in the global past).
    extra_time_ms:
        How long to keep simulating after the last scheduled start, to let
        slow executions finish.
    sequential:
        If ``True``, execution ``k + 1`` starts ``separation_ms`` after the
        first decision of execution ``k`` instead of at a fixed multiple of
        the separation.  This is the measurement discipline the paper had to
        adopt "in the few experiments with extremely bad failure detection"
        (§4, footnote 2): it guarantees that consecutive executions never
        interfere, whatever the latency.
    max_instance_time_ms:
        In sequential mode, give up on an execution that has not decided
        after this long and start the next one (the execution is counted as
        undecided).  ``None`` waits indefinitely.
    fault_load:
        Optional composable fault load (:mod:`repro.faults`) injected into
        the cluster's transport, hub and hosts for the whole experiment.
    collect_traces:
        Collect a normalized per-replication event log
        (:class:`~repro.traces.events.EventLog`: every transport
        send/receive/drop, every crash/recovery, every failure-detector
        transition) on :attr:`MeasurementResult.event_log`.  Opt-in and
        purely observational -- no random stream is consumed, so results
        are bit-identical with tracing on or off.
    """

    cluster: ClusterConfig
    scenario: Scenario
    executions: int = 100
    separation_ms: float = 10.0
    start_offset_ms: float = 1.0
    extra_time_ms: float = 1_000.0
    sequential: bool = False
    max_instance_time_ms: Optional[float] = None
    fault_load: Optional[FaultLoad] = None
    collect_traces: bool = False

    def __post_init__(self) -> None:
        if self.executions < 1:
            raise ValueError("executions must be >= 1")
        if self.separation_ms <= 0:
            raise ValueError("separation_ms must be > 0")
        if self.start_offset_ms <= self.cluster.clock_sync_precision_ms:
            raise ValueError(
                "start_offset_ms must exceed the clock synchronisation precision"
            )
        if self.max_instance_time_ms is not None and self.max_instance_time_ms <= 0:
            raise ValueError("max_instance_time_ms must be > 0 when given")


@dataclass
class MeasurementResult:
    """Everything measured in one experiment."""

    config: MeasurementConfig
    latencies_ms: List[float]
    undecided: int
    summary: Optional[SampleSummary]
    recorder: LatencyRecorder
    fd_history: FailureDetectorHistory
    qos: Optional[QoSEstimate]
    experiment_duration_ms: float
    messages_delivered: int
    heartbeats_sent: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0
    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    messages_duplicated: int = 0
    fault_stats: Optional[FaultStats] = None
    event_log: Optional[EventLog] = None

    @property
    def mean_latency_ms(self) -> float:
        """Mean latency over the decided executions."""
        if not self.latencies_ms:
            return math.nan
        return sum(self.latencies_ms) / len(self.latencies_ms)

    def cdf(self) -> EmpiricalCDF:
        """Empirical CDF of the measured latencies."""
        return EmpiricalCDF(self.latencies_ms)


class MeasurementRunner:
    """Runs one measurement experiment on the simulated cluster."""

    def __init__(self, config: MeasurementConfig) -> None:
        self.config = config
        self.fd_history = FailureDetectorHistory()
        self.recorder = LatencyRecorder()
        self.collector: Optional[TraceCollector] = (
            TraceCollector() if config.collect_traces else None
        )
        self.cluster = Cluster(
            config.cluster, fault_load=config.fault_load, collector=self.collector
        )
        self._consensus_layers: List[ChandraTouegConsensus] = []
        self._fd_layers: List[ProtocolLayer] = []
        self._build_processes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_processes(self) -> None:
        config = self.config

        def stack_factory(sim, process_id: int) -> Sequence[ProtocolLayer]:
            consensus = ChandraTouegConsensus(
                sim,
                message_size_bytes=config.cluster.message_size_bytes,
                name=f"consensus.p{process_id}",
            )
            consensus.add_decision_callback(self.recorder.decision_callback)
            fd = self._make_failure_detector(sim, process_id)
            self._consensus_layers.append(consensus)
            self._fd_layers.append(fd)
            return [consensus, fd]

        self.cluster.create_processes(stack_factory)
        for crashed in self.config.scenario.crashed:
            self.cluster.crash_process(crashed)

    def _make_failure_detector(self, sim, process_id: int) -> ProtocolLayer:
        scenario = self.config.scenario
        if scenario.uses_heartbeat_fd:
            return HeartbeatFailureDetector(
                sim,
                timeout_ms=scenario.fd_timeout_ms,
                heartbeat_period_ms=scenario.heartbeat_period_ms,
                history=self.fd_history,
                heartbeat_size_bytes=self.config.cluster.heartbeat_size_bytes,
                name=f"hb-fd.p{process_id}",
            )
        return StaticFailureDetector(
            sim, crashed=scenario.crashed, name=f"static-fd.p{process_id}"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> MeasurementResult:
        """Run the experiment and return its results."""
        config = self.config
        self.cluster.start_all()
        if config.sequential:
            self._register_sequential_hooks()
            self._start_execution(0, config.start_offset_ms)
            deadline = self._sequential_deadline()
            self._run_until_sequential_done(deadline)
        else:
            self._schedule_executions()
            nominal_end = (
                config.start_offset_ms + config.executions * config.separation_ms
            )
            self.cluster.run(until=nominal_end)
            self._run_until_all_decided(nominal_end, config.extra_time_ms)
        return self._collect_results()

    # ------------------------------------------------------------------
    # Fixed-schedule mode (class 1 / class 2, the paper's 10 ms separation)
    # ------------------------------------------------------------------
    def _schedule_executions(self) -> None:
        config = self.config
        for execution in range(config.executions):
            nominal_start = config.start_offset_ms + execution * config.separation_ms
            self._start_execution(execution, nominal_start)

    def _start_execution(self, execution: int, nominal_start: float) -> None:
        self.recorder.register_start(execution, nominal_start)
        for process in self.cluster.processes:
            if process.crashed:
                continue
            consensus = process.layer(ChandraTouegConsensus)
            # Every process proposes when its *local* clock reads the
            # nominal start time, as in the NTP-triggered measurements.
            global_start = process.host.clock.global_time(nominal_start)
            self.cluster.sim.schedule_at(
                max(self.cluster.sim.now, global_start),
                consensus.propose,
                execution,
                f"v{process.process_id}",
            )

    def _run_until_all_decided(self, nominal_end: float, extra_time_ms: float) -> None:
        deadline = nominal_end + extra_time_ms
        step = max(10.0, self.config.separation_ms)
        now = nominal_end
        while now < deadline and self.recorder.undecided_instances():
            now = min(deadline, now + step)
            self.cluster.run(until=now)

    # ------------------------------------------------------------------
    # Sequential mode (class 3 with very bad failure detection)
    # ------------------------------------------------------------------
    def _register_sequential_hooks(self) -> None:
        self._next_execution = 1
        self._chained = set()
        for layer in self._consensus_layers:
            layer.add_decision_callback(self._on_sequential_decision)

    def _sequential_deadline(self) -> float:
        config = self.config
        per_instance = config.max_instance_time_ms or config.extra_time_ms
        return (
            config.start_offset_ms
            + config.executions * (config.separation_ms + per_instance)
            + config.extra_time_ms
        )

    def _on_sequential_decision(
        self, process_id: int, instance: int, value, local_time: float, global_time: float
    ) -> None:
        self._chain_next_execution(instance)

    def _chain_next_execution(self, finished_instance: int) -> None:
        if finished_instance in self._chained:
            return
        self._chained.add(finished_instance)
        if self._next_execution >= self.config.executions:
            return
        execution = self._next_execution
        self._next_execution += 1
        nominal_start = self.cluster.sim.now + self.config.separation_ms
        self.cluster.sim.schedule(
            self.config.separation_ms * 0.5, self._start_execution, execution, nominal_start
        )

    def _watchdog(self, execution: int) -> None:
        if not self.recorder.instances[execution].decided:
            self._chain_next_execution(execution)

    def _run_until_sequential_done(self, deadline: float) -> None:
        config = self.config
        step = max(10.0, config.separation_ms)
        watchdog_at: Dict[int, float] = {}
        while self.cluster.sim.now < deadline:
            started = self._next_execution
            instances = self.recorder.instances
            all_started = started >= config.executions
            undecided = self.recorder.undecided_instances()
            if all_started and not undecided:
                break
            # Arm watchdogs for instances that exceeded the per-instance cap.
            if config.max_instance_time_ms is not None:
                for entry in instances:
                    if entry.decided or entry.instance in self._chained:
                        continue
                    limit = watchdog_at.setdefault(
                        entry.instance, entry.start_nominal + config.max_instance_time_ms
                    )
                    if self.cluster.sim.now >= limit:
                        self._chain_next_execution(entry.instance)
            if all_started and undecided and config.max_instance_time_ms is not None:
                last_limit = max(
                    watchdog_at.get(i, self.cluster.sim.now) for i in undecided
                )
                if self.cluster.sim.now >= last_limit:
                    break
            self.cluster.run(until=self.cluster.sim.now + step)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _collect_results(self) -> MeasurementResult:
        config = self.config
        latencies = self.recorder.latencies(use_local_clock=True)
        undecided = len(self.recorder.undecided_instances())
        duration = self.cluster.sim.now
        qos: Optional[QoSEstimate] = None
        if config.scenario.uses_heartbeat_fd:
            # The paper's class-2 crashes happen before the run starts, so
            # every crash instant is t=0; passing an explicit mapping keeps
            # T_D measured from the real crash time if a scenario ever
            # crashes processes mid-run.
            qos = estimate_qos(
                self.fd_history,
                n_processes=config.cluster.n_processes,
                experiment_duration=duration,
                crashed={process: 0.0 for process in config.scenario.crashed},
            )
        heartbeats = sum(
            layer.heartbeats_sent
            for layer in self._fd_layers
            if isinstance(layer, HeartbeatFailureDetector)
        )
        event_log: Optional[EventLog] = None
        if self.collector is not None:
            if self.cluster.fault_injector is not None:
                self.collector.add_fault_events(self.cluster.fault_injector.events)
            self.collector.add_fd_transitions(self.fd_history.transitions)
            event_log = self.collector.log
        return MeasurementResult(
            config=config,
            latencies_ms=latencies,
            undecided=undecided,
            summary=summarize(latencies) if latencies else None,
            recorder=self.recorder,
            fd_history=self.fd_history,
            qos=qos,
            experiment_duration_ms=duration,
            messages_delivered=self.cluster.transport.messages_delivered,
            heartbeats_sent=heartbeats,
            messages_sent=self.cluster.transport.messages_sent,
            messages_dropped=self.cluster.transport.messages_dropped,
            drops_by_cause=dict(self.cluster.transport.drops_by_cause),
            messages_duplicated=self.cluster.transport.messages_duplicated,
            fault_stats=(
                self.cluster.fault_injector.stats
                if self.cluster.fault_injector is not None
                else None
            ),
            event_log=event_log,
        )


# ----------------------------------------------------------------------
# End-to-end delay micro-benchmark (Figure 6)
# ----------------------------------------------------------------------
class _PingLayer(ProtocolLayer):
    """Application layer of the end-to-end delay micro-benchmark.

    Process 0 periodically sends a unicast message to a chosen destination
    or a broadcast to everybody; the receivers simply absorb the messages.
    The end-to-end delays are read from the cluster's message trace.
    """

    def __init__(self, sim, name: str, size_bytes: int) -> None:
        super().__init__(sim, name)
        self.size_bytes = size_bytes

    def send_probe(self, destination: int, msg_type: str) -> None:
        """Send one probe message."""
        if self.process is None or self.process.crashed:
            return
        message = Message(
            sender=self.process_id,
            destination=destination,
            msg_type=msg_type,
            size_bytes=self.size_bytes,
        )
        self.send_down(message)

    def on_deliver(self, message: Message) -> None:  # probes are absorbed
        return


@dataclass
class EndToEndDelayResult:
    """End-to-end delays measured by the micro-benchmark."""

    unicast_delays: List[float] = field(default_factory=list)
    broadcast_delays: List[float] = field(default_factory=list)

    def unicast_cdf(self) -> EmpiricalCDF:
        """CDF of the unicast end-to-end delays."""
        return EmpiricalCDF(self.unicast_delays)

    def broadcast_cdf(self) -> EmpiricalCDF:
        """CDF of the broadcast end-to-end delays (averaged per broadcast)."""
        return EmpiricalCDF(self.broadcast_delays)


def measure_end_to_end_delays(
    cluster_config: ClusterConfig,
    probes: int = 1000,
    gap_ms: float = 1.0,
) -> EndToEndDelayResult:
    """Measure unicast and broadcast end-to-end delays (Figure 6 workload).

    Process 0 sends ``probes`` unicast messages (round-robin over the other
    processes) and ``probes`` broadcast messages, each pair separated by
    ``gap_ms`` so that the probes do not contend with each other.
    """
    cluster = Cluster(cluster_config)

    def stack_factory(sim, process_id: int) -> Sequence[ProtocolLayer]:
        return [
            _PingLayer(
                sim, f"ping.p{process_id}", cluster_config.message_size_bytes
            )
        ]

    cluster.create_processes(stack_factory)
    cluster.start_all()
    sender = cluster.process(0).layer(_PingLayer)
    n = cluster_config.n_processes
    time = 0.5
    for probe in range(probes):
        destination = 1 + probe % max(1, n - 1)
        cluster.sim.schedule_at(time, sender.send_probe, destination, "unicast-probe")
        time += gap_ms
        cluster.sim.schedule_at(time, sender.send_probe, BROADCAST, "broadcast-probe")
        time += gap_ms
    cluster.run(until=time + 10.0)

    result = EndToEndDelayResult()
    result.unicast_delays = cluster.trace.unicast_delays(msg_type="unicast-probe")
    result.broadcast_delays = cluster.trace.broadcast_delays_averaged(
        msg_type="broadcast-probe"
    )
    return result
