"""The classes of runs analyzed by the paper (§2.4).

A :class:`Scenario` fixes the failure pattern and the failure-detector
behaviour of an experiment:

* **Class 1** -- all processes correct, failure detectors accurate (no
  suspicions at all).
* **Class 2** -- one process crashed from the beginning; detectors complete
  and accurate (the crashed process is suspected forever, correct processes
  never).  Two sub-cases: the first coordinator crashed, or a participant
  crashed.
* **Class 3** -- all processes correct, but the heartbeat failure detector
  (timeout ``T``, period ``Th = 0.7 T`` by default) produces wrong
  suspicions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class RunClass(enum.Enum):
    """The three classes of runs of §2.4."""

    NO_FAILURES = 1
    CRASH = 2
    WRONG_SUSPICIONS = 3


@dataclass(frozen=True)
class Scenario:
    """A fully specified failure/suspicion scenario.

    Attributes
    ----------
    run_class:
        Which of the paper's three classes this scenario belongs to.
    crashed:
        Processes crashed before the start of the run (class 2 only).
    fd_timeout_ms:
        The heartbeat failure-detector timeout ``T`` (class 3 only).
    fd_heartbeat_period_ms:
        The heartbeat period ``Th``; defaults to ``0.7 * T`` as in §5.4.
    description:
        Human-readable label used in reports.
    """

    run_class: RunClass
    crashed: Tuple[int, ...] = ()
    fd_timeout_ms: Optional[float] = None
    fd_heartbeat_period_ms: Optional[float] = None
    description: str = field(default="")

    def __post_init__(self) -> None:
        if self.run_class is RunClass.CRASH and not self.crashed:
            raise ValueError("a CRASH scenario needs at least one crashed process")
        if self.run_class is not RunClass.CRASH and self.crashed:
            raise ValueError("only CRASH scenarios may declare crashed processes")
        if self.run_class is RunClass.WRONG_SUSPICIONS and self.fd_timeout_ms is None:
            raise ValueError("a WRONG_SUSPICIONS scenario needs fd_timeout_ms")
        if self.fd_timeout_ms is not None and self.fd_timeout_ms <= 0:
            raise ValueError("fd_timeout_ms must be > 0")

    # ------------------------------------------------------------------
    # Factories for the paper's scenarios
    # ------------------------------------------------------------------
    @staticmethod
    def no_failures() -> "Scenario":
        """Class 1: no crashes, no suspicions (§2.4 item 1, §5.2)."""
        return Scenario(
            run_class=RunClass.NO_FAILURES,
            description="no failures, no suspicions",
        )

    @staticmethod
    def coordinator_crash() -> "Scenario":
        """Class 2(i): the first coordinator (process 0) is initially crashed."""
        return Scenario(
            run_class=RunClass.CRASH,
            crashed=(0,),
            description="first coordinator initially crashed",
        )

    @staticmethod
    def participant_crash(process_id: int = 1) -> "Scenario":
        """Class 2(ii): a participant of the first round is initially crashed.

        The paper crashes process 2 (1-based), i.e. process id 1 here.
        """
        if process_id == 0:
            raise ValueError("process 0 is the first coordinator, not a participant")
        return Scenario(
            run_class=RunClass.CRASH,
            crashed=(process_id,),
            description=f"participant p{process_id + 1} initially crashed",
        )

    @staticmethod
    def wrong_suspicions(
        timeout_ms: float, heartbeat_period_ms: Optional[float] = None
    ) -> "Scenario":
        """Class 3: correct processes, wrong suspicions from the heartbeat FD."""
        return Scenario(
            run_class=RunClass.WRONG_SUSPICIONS,
            fd_timeout_ms=timeout_ms,
            fd_heartbeat_period_ms=heartbeat_period_ms,
            description=f"wrong suspicions, T={timeout_ms} ms",
        )

    # ------------------------------------------------------------------
    @property
    def heartbeat_period_ms(self) -> Optional[float]:
        """The effective heartbeat period (``0.7 T`` unless overridden)."""
        if self.fd_timeout_ms is None:
            return None
        if self.fd_heartbeat_period_ms is not None:
            return self.fd_heartbeat_period_ms
        return 0.7 * self.fd_timeout_ms

    @property
    def uses_heartbeat_fd(self) -> bool:
        """``True`` if this scenario runs the real heartbeat failure detector."""
        return self.run_class is RunClass.WRONG_SUSPICIONS

    def label(self) -> str:
        """A short label for tables and figures."""
        if self.description:
            return self.description
        return self.run_class.name.lower()
