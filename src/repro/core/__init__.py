"""The paper's combined measurement + simulation methodology.

This package is the primary contribution of the reproduction: it ties the
testbed simulator (:mod:`repro.cluster`), the consensus implementation
(:mod:`repro.consensus`), the failure detectors
(:mod:`repro.failure_detectors`) and the SAN models
(:mod:`repro.sanmodels`) into the workflow of the paper:

1. define a *scenario* -- one of the three classes of runs of §2.4
   (:mod:`repro.core.scenarios`);
2. run *measurements* of the consensus latency on the (simulated) cluster
   (:mod:`repro.core.measurement`);
3. *calibrate* the SAN model's network parameters from measured end-to-end
   delays (:mod:`repro.core.calibration`, §5.1);
4. run the *SAN simulation* of the same scenario
   (:mod:`repro.core.simulation`);
5. *validate* the model by comparing the two sets of results
   (:mod:`repro.core.validation`, §5.2-§5.4).
"""

from repro.core.calibration import (
    CalibrationResult,
    calibrate_t_send,
    fit_bimodal_uniform,
)
from repro.core.latency import InstanceLatency, LatencyRecorder
from repro.core.measurement import (
    MeasurementConfig,
    MeasurementResult,
    MeasurementRunner,
    measure_end_to_end_delays,
)
from repro.core.scenarios import RunClass, Scenario
from repro.core.simulation import SimulationConfig, SimulationResult, SimulationRunner
from repro.core.validation import ValidationReport, compare_results

__all__ = [
    "CalibrationResult",
    "InstanceLatency",
    "LatencyRecorder",
    "MeasurementConfig",
    "MeasurementResult",
    "MeasurementRunner",
    "RunClass",
    "Scenario",
    "SimulationConfig",
    "SimulationResult",
    "SimulationRunner",
    "ValidationReport",
    "calibrate_t_send",
    "compare_results",
    "fit_bimodal_uniform",
    "measure_end_to_end_delays",
]
