"""Calibration of the SAN model's network parameters (§5.1-§5.2).

The paper sets the network parameters of its SAN model in two steps:

1. the *end-to-end* delay distributions of unicast and broadcast messages
   are measured on the cluster and fitted with bi-modal uniform
   distributions (Figure 6, §5.1);
2. the split of the end-to-end delay between ``t_send`` (= ``t_receive``)
   and ``t_net`` is calibrated by simulating the no-failure scenario for a
   range of ``t_send`` values and picking the one whose latency distribution
   best matches the measured one (Figure 7b, §5.2) -- the paper settles on
   ``t_send = 0.025`` ms.

This module implements both steps against *our* measured data (the cluster
simulator's trace), using the Kolmogorov-Smirnov distance between latency
CDFs as the goodness-of-fit criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.scenarios import Scenario
from repro.sanmodels.consensus_model import ConsensusSANExperiment
from repro.sanmodels.parameters import SANParameters
from repro.stats.cdf import EmpiricalCDF
from repro.stats.distributions import BimodalUniform
from repro.stats.fitting import fit_bimodal_uniform

__all__ = [
    "CalibrationCandidate",
    "CalibrationResult",
    "calibrate_t_send",
    "fit_bimodal_uniform",
    "score_t_send_candidates",
]


@dataclass(frozen=True)
class CalibrationCandidate:
    """One candidate ``t_send`` value and its goodness of fit."""

    t_send_ms: float
    ks_distance: float
    mean_latency_ms: float


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the ``t_send`` calibration sweep (Figure 7b)."""

    best_t_send_ms: float
    candidates: tuple[CalibrationCandidate, ...]
    measured_mean_ms: float

    def candidate_for(self, t_send_ms: float) -> Optional[CalibrationCandidate]:
        """The candidate entry for a specific ``t_send`` value, if present."""
        for candidate in self.candidates:
            if abs(candidate.t_send_ms - t_send_ms) < 1e-12:
                return candidate
        return None


def fit_end_to_end_distribution(delays: Sequence[float]) -> BimodalUniform:
    """Fit the bi-modal uniform end-to-end delay distribution (§5.1)."""
    return fit_bimodal_uniform(delays)


def score_t_send_candidates(
    measured_latencies: Sequence[float],
    simulated_latencies_by_t_send: Sequence[tuple[float, Sequence[float]]],
) -> CalibrationResult:
    """Score simulated candidate latencies against the measured CDF.

    The common second half of the calibration: given the measured latencies
    and, per candidate ``t_send``, the simulated latencies (however they
    were produced -- serially here, or by the sweep runner in
    :func:`repro.experiments.figure7.run_figure7b`), compute each
    candidate's Kolmogorov-Smirnov distance and pick the best.
    """
    if not measured_latencies:
        raise ValueError("measured_latencies must not be empty")
    measured_cdf = EmpiricalCDF(measured_latencies)
    candidates = []
    for t_send, latencies in simulated_latencies_by_t_send:
        if latencies:
            distance = measured_cdf.ks_distance(EmpiricalCDF(latencies))
            mean = sum(latencies) / len(latencies)
        else:
            distance = float("inf")
            mean = float("nan")
        candidates.append(
            CalibrationCandidate(
                t_send_ms=float(t_send), ks_distance=distance, mean_latency_ms=mean
            )
        )
    best = min(candidates, key=lambda candidate: candidate.ks_distance)
    return CalibrationResult(
        best_t_send_ms=best.t_send_ms,
        candidates=tuple(candidates),
        measured_mean_ms=measured_cdf.mean(),
    )


def calibrate_t_send(
    measured_latencies: Sequence[float],
    base_parameters: SANParameters,
    n_processes: int = 5,
    candidate_t_send_ms: Sequence[float] = (0.005, 0.01, 0.015, 0.02, 0.025, 0.035),
    replications: int = 200,
    seed: int = 0,
) -> CalibrationResult:
    """Calibrate ``t_send`` by matching simulated and measured latency CDFs.

    For each candidate value the no-failure scenario is simulated with the
    same end-to-end delay (``t_net`` adjusted so that ``2 t_send + t_net``
    keeps the measured fit, exactly as in the paper) and the candidate with
    the smallest Kolmogorov-Smirnov distance to the measured latency CDF
    wins.

    Parameters
    ----------
    measured_latencies:
        Latencies measured on the cluster for the same ``n_processes``.
    base_parameters:
        Parameters holding the end-to-end delay fits.
    n_processes:
        Number of processes of the calibration scenario (the paper uses 5).
    candidate_t_send_ms:
        The ``t_send`` values to sweep (the paper's Fig. 7b values by
        default).
    replications:
        Replications per candidate.
    seed:
        Master seed.
    """
    simulated = []
    for t_send in candidate_t_send_ms:
        experiment = ConsensusSANExperiment(
            n_processes=n_processes,
            parameters=base_parameters.with_t_send(t_send),
            seed=seed,
        )
        simulated.append((float(t_send), experiment.run(replications=replications).latencies_ms))
    return score_t_send_candidates(measured_latencies, simulated)


def simulated_latency_cdfs_by_t_send(
    base_parameters: SANParameters,
    n_processes: int = 5,
    candidate_t_send_ms: Sequence[float] = (0.005, 0.01, 0.015, 0.02, 0.025, 0.035),
    replications: int = 200,
    seed: int = 0,
) -> Dict[float, EmpiricalCDF]:
    """Simulated latency CDFs for each candidate ``t_send`` (Figure 7b series)."""
    cdfs: Dict[float, EmpiricalCDF] = {}
    for t_send in candidate_t_send_ms:
        experiment = ConsensusSANExperiment(
            n_processes=n_processes,
            parameters=base_parameters.with_t_send(t_send),
            seed=seed,
        )
        result = experiment.run(replications=replications)
        if result.latencies_ms:
            cdfs[float(t_send)] = EmpiricalCDF(result.latencies_ms)
    return cdfs


def default_scenario() -> Scenario:
    """The scenario used for calibration: class 1, no failures."""
    return Scenario.no_failures()
