"""Validation of the SAN model against measurements (§5.2-§5.4).

The paper validates "the adequacy and the usability of the SAN model by
comparing experimental results with those obtained from the model".  This
module quantifies that comparison: relative error of the mean latencies,
overlap of confidence intervals, and Kolmogorov-Smirnov distance between the
latency distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import ConfidenceInterval, confidence_interval


@dataclass(frozen=True)
class ValidationReport:
    """Comparison of one measured and one simulated latency sample."""

    measured_mean_ms: float
    simulated_mean_ms: float
    relative_error: float
    measured_interval: ConfidenceInterval
    simulated_interval: ConfidenceInterval
    intervals_overlap: bool
    ks_distance: float
    label: str = ""

    @property
    def within(self) -> float:
        """Alias of :attr:`relative_error` (kept for readable assertions)."""
        return self.relative_error

    def agrees_within(self, tolerance: float) -> bool:
        """``True`` if the relative error of the means is below ``tolerance``."""
        return self.relative_error <= tolerance

    def __str__(self) -> str:
        return (
            f"{self.label or 'validation'}: measured {self.measured_mean_ms:.3f} ms, "
            f"simulated {self.simulated_mean_ms:.3f} ms "
            f"({self.relative_error:.1%} relative error, "
            f"KS={self.ks_distance:.3f}, "
            f"CI overlap={'yes' if self.intervals_overlap else 'no'})"
        )


def compare_results(
    measured_latencies: Sequence[float],
    simulated_latencies: Sequence[float],
    confidence: float = 0.90,
    label: str = "",
) -> ValidationReport:
    """Compare a measured and a simulated latency sample.

    Parameters
    ----------
    measured_latencies, simulated_latencies:
        The two latency samples (milliseconds).
    confidence:
        Confidence level for the reported intervals.
    label:
        Optional label identifying the scenario in reports.
    """
    if not measured_latencies or not simulated_latencies:
        raise ValueError("both samples must be non-empty")
    measured_interval = confidence_interval(measured_latencies, confidence)
    simulated_interval = confidence_interval(simulated_latencies, confidence)
    measured_mean = measured_interval.mean
    simulated_mean = simulated_interval.mean
    if measured_mean == 0:
        relative_error = math.inf if simulated_mean != 0 else 0.0
    else:
        relative_error = abs(simulated_mean - measured_mean) / abs(measured_mean)
    ks = EmpiricalCDF(measured_latencies).ks_distance(EmpiricalCDF(simulated_latencies))
    return ValidationReport(
        measured_mean_ms=measured_mean,
        simulated_mean_ms=simulated_mean,
        relative_error=relative_error,
        measured_interval=measured_interval,
        simulated_interval=simulated_interval,
        intervals_overlap=measured_interval.overlaps(simulated_interval),
        ks_distance=ks,
        label=label,
    )


def ordering_holds(values: Sequence[float], decreasing: bool = False) -> bool:
    """``True`` if ``values`` is monotone (used for shape checks in tests).

    The paper's headline *shapes* are orderings -- latency grows with n,
    coordinator crash is slower than no crash, latency falls as the FD
    timeout grows -- and this helper expresses them uniformly.
    """
    pairs = zip(values, list(values)[1:], strict=False)
    if decreasing:
        return all(a >= b for a, b in pairs)
    return all(a <= b for a, b in pairs)


def crossover_point(
    xs: Sequence[float], ys: Sequence[float], threshold: float
) -> Optional[float]:
    """The first x at which y drops below ``threshold`` (for Fig. 9 shape checks)."""
    for x, y in zip(xs, ys, strict=True):
        if y <= threshold:
            return x
    return None
