"""Latency recording.

The paper's performance measure is the consensus latency: all processes
propose at the same time ``t0`` and ``t1`` is the time at which the *first*
process decides; the latency is ``t1 - t0`` (§2.3).  The measurements read
the hosts' local (NTP-synchronised) clocks, so the measured latency includes
a small clock-synchronisation error -- the recorder reproduces that by
keeping both the local-clock and the global (simulator) timestamps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import SampleSummary, summarize


@dataclass
class _DecisionRecord:
    process_id: int
    local_time: float
    global_time: float
    value: object


@dataclass
class InstanceLatency:
    """Latency of one consensus execution (one instance)."""

    instance: int
    start_nominal: float
    first_decision_local: Optional[float] = None
    first_decision_global: Optional[float] = None
    first_decider: Optional[int] = None
    deciders: int = 0

    @property
    def decided(self) -> bool:
        """``True`` if at least one process decided this instance."""
        return self.first_decision_local is not None

    @property
    def latency(self) -> float:
        """Measured latency (local clock of the first decider minus t0)."""
        if self.first_decision_local is None:
            return math.nan
        return self.first_decision_local - self.start_nominal

    @property
    def latency_global(self) -> float:
        """Latency measured on the global simulation clock (no clock error)."""
        if self.first_decision_global is None:
            return math.nan
        return self.first_decision_global - self.start_nominal


class LatencyRecorder:
    """Collects decisions from every process and derives per-instance latencies.

    Use :meth:`register_start` when an instance is scheduled (with its
    nominal start time ``t0``) and :meth:`decision_callback` as the decision
    callback of every process's consensus layer.
    """

    def __init__(self) -> None:
        self._instances: Dict[int, InstanceLatency] = {}
        self._decisions: Dict[int, List[_DecisionRecord]] = {}

    # ------------------------------------------------------------------
    def register_start(self, instance: int, start_nominal: float) -> None:
        """Declare that ``instance`` starts (nominally) at ``start_nominal``."""
        if instance not in self._instances:
            self._instances[instance] = InstanceLatency(
                instance=instance, start_nominal=start_nominal
            )
        else:
            self._instances[instance].start_nominal = start_nominal

    def decision_callback(
        self,
        process_id: int,
        instance: int,
        value: object,
        local_time: float,
        global_time: float,
    ) -> None:
        """Record one process's decision (signature matches the consensus layer)."""
        record = _DecisionRecord(
            process_id=process_id,
            local_time=local_time,
            global_time=global_time,
            value=value,
        )
        self._decisions.setdefault(instance, []).append(record)
        entry = self._instances.get(instance)
        if entry is None:
            entry = InstanceLatency(instance=instance, start_nominal=0.0)
            self._instances[instance] = entry
        entry.deciders += 1
        if (
            entry.first_decision_local is None
            or local_time < entry.first_decision_local
        ):
            entry.first_decision_local = local_time
            entry.first_decision_global = global_time
            entry.first_decider = process_id

    # ------------------------------------------------------------------
    @property
    def instances(self) -> List[InstanceLatency]:
        """Per-instance latency records, ordered by instance number."""
        return [self._instances[key] for key in sorted(self._instances)]

    def decisions(self, instance: int) -> List[_DecisionRecord]:
        """All decision records of one instance."""
        return list(self._decisions.get(instance, []))

    def decided_instances(self) -> List[InstanceLatency]:
        """Only the instances for which at least one process decided."""
        return [entry for entry in self.instances if entry.decided]

    def undecided_instances(self) -> List[int]:
        """Instance numbers that never reached a decision."""
        return [entry.instance for entry in self.instances if not entry.decided]

    # ------------------------------------------------------------------
    def latencies(self, use_local_clock: bool = True) -> List[float]:
        """The list of per-instance latencies (decided instances only)."""
        if use_local_clock:
            return [entry.latency for entry in self.decided_instances()]
        return [entry.latency_global for entry in self.decided_instances()]

    def cdf(self, use_local_clock: bool = True) -> EmpiricalCDF:
        """Empirical CDF of the latencies."""
        return EmpiricalCDF(self.latencies(use_local_clock))

    def summary(
        self, confidence: float = 0.90, use_local_clock: bool = True
    ) -> SampleSummary:
        """Summary statistics of the latencies."""
        return summarize(self.latencies(use_local_clock), confidence)

    def check_agreement(self) -> bool:
        """Verify the consensus *agreement* property on every instance.

        Returns ``True`` if, for every instance, all deciding processes
        decided the same value.  (Used by integration tests: a violation
        would indicate a bug in the algorithm implementation.)
        """
        for records in self._decisions.values():
            values = {repr(record.value) for record in records}
            if len(values) > 1:
                return False
        return True
