"""SAN simulations of the paper's scenarios.

This is the simulation half of the combined methodology: given a
:class:`~repro.core.scenarios.Scenario` and the calibrated
:class:`~repro.sanmodels.parameters.SANParameters`, run the SAN model with
the simulative solver and report the same latency statistics the
measurement half reports, so that the two can be compared directly
(§5.2-§5.4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.scenarios import RunClass, Scenario
from repro.failure_detectors.qos import QoSEstimate
from repro.sanmodels.consensus_model import ConsensusSANExperiment, SANLatencyResult
from repro.sanmodels.fd_model import FDModelSettings, TransitionKind
from repro.sanmodels.parameters import SANParameters
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import SampleSummary, summarize


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one SAN simulation experiment.

    Attributes
    ----------
    n_processes:
        Number of processes.
    scenario:
        The failure/suspicion scenario (shared with the measurement side).
    parameters:
        Calibrated network parameters of the SAN model.
    fd_qos:
        Measured failure-detector QoS feeding the abstract FD model
        (required for class-3 scenarios).
    fd_kind:
        Sojourn-time distribution of the FD model: ``"deterministic"`` or
        ``"exponential"`` (both are evaluated in Fig. 9b).
    replications:
        Number of independent replications (each simulates one consensus
        execution, ending at the first decision).
    seed:
        Master seed of the replication streams.
    max_time_ms:
        Per-replication safety horizon.
    """

    n_processes: int
    scenario: Scenario
    parameters: SANParameters = field(default_factory=SANParameters)
    fd_qos: Optional[QoSEstimate] = None
    fd_kind: TransitionKind = "exponential"
    replications: int = 200
    seed: int = 0
    max_time_ms: float = 10_000.0

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        if self.scenario.run_class is RunClass.WRONG_SUSPICIONS and self.fd_qos is None:
            raise ValueError(
                "a WRONG_SUSPICIONS simulation needs measured FD QoS metrics"
            )


@dataclass
class SimulationResult:
    """Latency statistics of one SAN simulation experiment."""

    config: SimulationConfig
    latencies_ms: List[float]
    undecided: int
    summary: Optional[SampleSummary]
    san_result: SANLatencyResult

    @property
    def mean_latency_ms(self) -> float:
        """Mean simulated latency."""
        return self.san_result.mean_ms

    def cdf(self) -> EmpiricalCDF:
        """Empirical CDF of the simulated latencies."""
        return EmpiricalCDF(self.latencies_ms)


class SimulationRunner:
    """Runs one SAN simulation experiment."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def _fd_settings(self) -> Optional[FDModelSettings]:
        config = self.config
        if config.scenario.run_class is not RunClass.WRONG_SUSPICIONS:
            return None
        qos = config.fd_qos
        assert qos is not None  # guaranteed by SimulationConfig validation
        # A detector that never erred during the measurement has an infinite
        # recurrence time; model it as accurate (no FD activities at all).
        if not qos.pairs or qos.mistake_recurrence_time == float("inf"):
            return None
        mistake_duration = max(qos.mistake_duration, 1e-6)
        recurrence = max(qos.mistake_recurrence_time, mistake_duration * 1.001)
        return FDModelSettings(
            mistake_recurrence_time=recurrence,
            mistake_duration=mistake_duration,
            kind=config.fd_kind,
        )

    def experiment(self) -> ConsensusSANExperiment:
        """The underlying :class:`ConsensusSANExperiment`."""
        config = self.config
        return ConsensusSANExperiment(
            n_processes=config.n_processes,
            parameters=config.parameters,
            crashed=config.scenario.crashed,
            fd_settings=self._fd_settings(),
            seed=config.seed,
            max_time_ms=config.max_time_ms,
        )

    def run(self, jobs: Optional[int] = 1) -> SimulationResult:
        """Run the replications and collect the latency statistics.

        ``jobs > 1`` runs the SAN replications on a worker pool through the
        sweep engine; results are bit-identical to a serial run.
        """
        san_result = self.experiment().run(
            replications=self.config.replications, jobs=jobs
        )
        latencies = san_result.latencies_ms
        return SimulationResult(
            config=self.config,
            latencies_ms=latencies,
            undecided=san_result.undecided,
            summary=summarize(latencies) if latencies else None,
            san_result=san_result,
        )
