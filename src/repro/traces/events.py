"""The normalized per-replication event model and its collectors.

Three existing trace surfaces feed one :class:`EventLog`:

* the **transport pipeline** reports every unicast copy it sends,
  delivers or drops through the optional collector hook threaded into
  :class:`~repro.cluster.transport.Transport` (``on_send`` /
  ``on_deliver`` / ``on_drop``);
* the **fault injector**'s time-stamped :class:`~repro.faults.injector.FaultEvent`
  trace contributes crash / recovery events (:meth:`TraceCollector.add_fault_events`);
* the **failure-detector history**'s trust/suspect
  :class:`~repro.failure_detectors.history.Transition` records become
  ``timer`` events (:meth:`TraceCollector.add_fd_transitions`).

Every event carries its process and -- for message events -- the message
identity (``msg_id`` / ``parent_id`` / type / endpoints), so the
happens-before layer (:mod:`repro.traces.hb`) can reconstruct Lamport
causality without re-running the simulation.

Collection never draws from any random stream and is attached only when
explicitly requested, so enabling it cannot perturb simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.cluster.message import Message
    from repro.failure_detectors.history import Transition
    from repro.faults.injector import FaultEvent

#: The normalized event kinds.
SEND = "send"
RECEIVE = "receive"
DROP = "drop"
CRASH = "crash"
RECOVER = "recover"
TIMER = "timer"

#: All kinds, in a stable report order.
KINDS = (SEND, RECEIVE, DROP, CRASH, RECOVER, TIMER)


@dataclass(frozen=True)
class TraceEvent:
    """One normalized event of a replication's event log.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    time_ms:
        Simulation time of the event.
    process:
        The process at which the event occurs: the sender for ``send``
        (and send-stage drops), the destination for ``receive`` (and
        wire/receive-stage drops), the crashed/recovered process for
        ``crash``/``recover``, the *monitor* for ``timer``.
    msg_id / parent_id / msg_type / sender / destination:
        Message identity for ``send``/``receive``/``drop`` events
        (``parent_id`` links a unicast copy back to its broadcast).
    peer:
        For ``timer`` events: the monitored process whose liveness the
        transition is about.
    detail:
        Free-form qualifier: ``"stage:cause"`` for drops,
        ``"suspect"``/``"trust"`` for timer transitions.
    """

    kind: str
    time_ms: float
    process: int
    msg_id: Optional[int] = None
    parent_id: Optional[int] = None
    msg_type: Optional[str] = None
    sender: Optional[int] = None
    destination: Optional[int] = None
    peer: Optional[int] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (``None`` fields omitted)."""
        record: Dict[str, Any] = {
            "kind": self.kind,
            "time_ms": self.time_ms,
            "process": self.process,
        }
        for name in ("msg_id", "parent_id", "msg_type", "sender", "destination", "peer"):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        if self.detail:
            record["detail"] = self.detail
        return record


@dataclass
class EventLog:
    """An append-only, time-sortable log of :class:`TraceEvent` entries.

    Transport events are appended in simulation order; fault and
    failure-detector events are merged in afterwards.  :meth:`events`
    returns the merged view sorted stably by time, so equal-time events
    keep their append order (transport before crash before timer).
    """

    entries: List[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        """Append one event (any time order; sorting happens on read)."""
        self.entries.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append many events."""
        self.entries.extend(events)

    def events(self) -> List[TraceEvent]:
        """All events sorted stably by time."""
        return sorted(self.entries, key=lambda event: event.time_ms)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """The events of one kind, in time order."""
        return [event for event in self.events() if event.kind == kind]

    def for_process(self, process: int) -> List[TraceEvent]:
        """The events at one process, in time order."""
        return [event for event in self.events() if event.process == process]

    def counts_by_kind(self) -> Dict[str, int]:
        """How many events of each kind the log holds (all kinds present)."""
        counts = {kind: 0 for kind in KINDS}
        for event in self.entries:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_records(self) -> List[Dict[str, Any]]:
        """JSON-ready representation of the sorted log."""
        return [event.to_dict() for event in self.events()]

    def __len__(self) -> int:
        return len(self.entries)


def _drop_process(message: "Message", stage: str) -> int:
    """The process a drop is charged to: sender at the send stage,
    destination once the copy has left the sending host."""
    return message.sender if stage == "send" else message.destination


class TraceCollector:
    """Adapts the cluster's trace hook points into one :class:`EventLog`.

    An instance is handed to :class:`~repro.cluster.cluster.Cluster`
    (``collector=``), which threads it into the transport; after the run,
    :meth:`add_fault_events` and :meth:`add_fd_transitions` merge the
    post-hoc traces.  The collector holds no simulator reference -- the
    transport passes the current time into every hook.
    """

    def __init__(self) -> None:
        self.log = EventLog()

    # -- transport hook points (called during the simulation) ----------
    def on_send(self, message: "Message", now: float) -> None:
        """One unicast copy entering the sending host's CPU queue."""
        self.log.append(
            TraceEvent(
                kind=SEND,
                time_ms=now,
                process=message.sender,
                msg_id=message.msg_id,
                parent_id=message.parent_id,
                msg_type=message.msg_type,
                sender=message.sender,
                destination=message.destination,
            )
        )

    def on_deliver(self, message: "Message", now: float) -> None:
        """One unicast copy delivered to its destination process."""
        self.log.append(
            TraceEvent(
                kind=RECEIVE,
                time_ms=now,
                process=message.destination,
                msg_id=message.msg_id,
                parent_id=message.parent_id,
                msg_type=message.msg_type,
                sender=message.sender,
                destination=message.destination,
            )
        )

    def on_drop(self, message: "Message", stage: str, cause: str, now: float) -> None:
        """One unicast copy dropped at ``stage`` for ``cause``."""
        self.log.append(
            TraceEvent(
                kind=DROP,
                time_ms=now,
                process=_drop_process(message, stage),
                msg_id=message.msg_id,
                parent_id=message.parent_id,
                msg_type=message.msg_type,
                sender=message.sender,
                destination=message.destination,
                detail=f"{stage}:{cause}",
            )
        )

    # -- post-hoc merges ------------------------------------------------
    def add_fault_events(self, events: Iterable["FaultEvent"]) -> None:
        """Merge the injector's crash/recovery trace entries.

        Loss, partition and duplication injections already surface as
        transport ``drop``/``send`` events; only the liveness transitions
        (``crash`` / ``recovery``) carry information the transport cannot
        see, so only those are normalized.
        """
        for event in events:
            if event.kind == "crash":
                kind = CRASH
            elif event.kind == "recovery":
                kind = RECOVER
            else:
                continue
            if event.process is None:
                continue
            self.log.append(
                TraceEvent(
                    kind=kind,
                    time_ms=event.time_ms,
                    process=event.process,
                    detail=event.detail,
                )
            )

    def add_fd_transitions(self, transitions: Iterable["Transition"]) -> None:
        """Merge trust/suspect transitions as ``timer`` events.

        The event sits at the *monitor* (whose timeout fired); ``peer``
        names the monitored process the verdict is about.
        """
        for transition in transitions:
            self.log.append(
                TraceEvent(
                    kind=TIMER,
                    time_ms=transition.time,
                    process=transition.monitor,
                    peer=transition.monitored,
                    detail="suspect" if transition.suspected else "trust",
                )
            )
