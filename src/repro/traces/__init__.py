"""Trace intelligence: normalized event logs and their analyses.

The DES core and the cluster transport have always *produced* traces
(message deliveries, fault injections, failure-detector transitions);
this package is the layer that *consumes* them:

* :mod:`repro.traces.events` -- the normalized per-replication event
  model (send / receive / drop / crash / recover / timer) and the
  :class:`~repro.traces.events.TraceCollector` adapting the existing
  hook points into one :class:`~repro.traces.events.EventLog`;
* :mod:`repro.traces.hb` -- the happens-before DAG (program order +
  send->receive edges, vector clocks) and causal slices backward from a
  QoS violation;
* :mod:`repro.traces.cluster` -- featurization of replication outcomes
  and dependency-free density clustering (DBSCAN) surfacing distinct
  failure modes with a ranked exemplar per cluster;
* :mod:`repro.traces.diff` -- diffing an anomalous replication's event
  log against a nominal exemplar into a minimal ordered explanation.

Collection is strictly opt-in: with no collector attached the hot paths
are unchanged and rewards/latencies stay bit-identical.
"""

from repro.traces.events import (
    CRASH,
    DROP,
    RECEIVE,
    RECOVER,
    SEND,
    TIMER,
    EventLog,
    TraceCollector,
    TraceEvent,
)
from repro.traces.hb import HappensBeforeGraph, build_hb_graph
from repro.traces.cluster import (
    ClusterInfo,
    ClusterResult,
    cluster_features,
    feature_matrix,
    featurize_measurement,
)
from repro.traces.diff import TraceDiff, diff_logs

__all__ = [
    "CRASH",
    "DROP",
    "RECEIVE",
    "RECOVER",
    "SEND",
    "TIMER",
    "ClusterInfo",
    "ClusterResult",
    "EventLog",
    "HappensBeforeGraph",
    "TraceCollector",
    "TraceDiff",
    "TraceEvent",
    "build_hb_graph",
    "cluster_features",
    "diff_logs",
    "feature_matrix",
    "featurize_measurement",
]
