"""Happens-before reconstruction over normalized event logs.

Given an :class:`~repro.traces.events.EventLog`, :func:`build_hb_graph`
reconstructs the Lamport happens-before partial order:

* **program order** -- consecutive events at the same process;
* **message order** -- each ``send`` precedes the ``receive`` (or the
  post-send ``drop``) of the same ``msg_id``;
* **liveness order** -- a ``crash``/``recover`` of process *p* precedes
  every later ``timer`` verdict *about* *p* (the failure detector's
  transition is a delayed observation of that liveness change; pure
  message causality cannot represent the *absence* of heartbeats, so
  this explicit state edge is what lets a causal slice reach the
  injected fault behind a detection-time outlier).

Each node is annotated with a vector clock (one component per process),
and :meth:`HappensBeforeGraph.causal_past` computes the backward causal
slice from any anchor event -- e.g. the first wrong suspicion or a
latency outlier's deciding receive.

Duplicated copies injected by the fault layer carry fresh ``msg_id``\\ s
with no matching ``send``; they receive no message edge (their
``parent_id`` still names the original message for reporting).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.traces.events import (
    CRASH,
    DROP,
    RECEIVE,
    RECOVER,
    SEND,
    TIMER,
    EventLog,
    TraceEvent,
)


@dataclass
class HappensBeforeGraph:
    """The happens-before DAG of one replication's event log.

    Attributes
    ----------
    events:
        The log's events sorted stably by time; node *i* is ``events[i]``
        and every edge points from a lower to a higher index.
    predecessors / successors:
        Adjacency lists of the direct happens-before edges.
    vector_clocks:
        One clock per node: component *p* counts the events at process
        *p* in the node's causal past (inclusive).
    n_processes:
        Number of vector-clock components.
    """

    events: List[TraceEvent]
    predecessors: List[List[int]]
    successors: List[List[int]]
    vector_clocks: List[Tuple[int, ...]]
    n_processes: int

    # ------------------------------------------------------------------
    def causal_past(self, anchor: int) -> List[int]:
        """The backward causal slice from ``anchor`` (anchor included).

        Returns the indices of every event that happens-before the
        anchor, sorted ascending -- the minimal prefix of the execution
        that can have influenced the anchored observation.
        """
        if not 0 <= anchor < len(self.events):
            raise IndexError(f"anchor {anchor} out of range (log has {len(self.events)})")
        seen: Set[int] = {anchor}
        stack = [anchor]
        while stack:
            node = stack.pop()
            for pred in self.predecessors[node]:
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return sorted(seen)

    def happens_before(self, first: int, second: int) -> bool:
        """``True`` iff node ``first`` happens-before node ``second``."""
        if first == second:
            return False
        a, b = self.vector_clocks[first], self.vector_clocks[second]
        return all(x <= y for x, y in zip(a, b, strict=True)) and a != b

    def concurrent(self, first: int, second: int) -> bool:
        """``True`` iff neither node happens-before the other."""
        return (
            first != second
            and not self.happens_before(first, second)
            and not self.happens_before(second, first)
        )

    def find_last(
        self,
        kind: Optional[str] = None,
        process: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> Optional[int]:
        """The index of the last event matching the given filters."""
        for index in range(len(self.events) - 1, -1, -1):
            event = self.events[index]
            if kind is not None and event.kind != kind:
                continue
            if process is not None and event.process != process:
                continue
            if detail is not None and event.detail != detail:
                continue
            return index
        return None

    def find_first(
        self,
        kind: Optional[str] = None,
        process: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> Optional[int]:
        """The index of the first event matching the given filters."""
        for index, event in enumerate(self.events):
            if kind is not None and event.kind != kind:
                continue
            if process is not None and event.process != process:
                continue
            if detail is not None and event.detail != detail:
                continue
            return index
        return None


def _infer_n_processes(events: Sequence[TraceEvent]) -> int:
    highest = 0
    for event in events:
        highest = max(highest, event.process)
        if event.peer is not None:
            highest = max(highest, event.peer)
        if event.sender is not None:
            highest = max(highest, event.sender)
        if event.destination is not None:
            highest = max(highest, event.destination)
    return highest + 1


def build_hb_graph(log: EventLog, n_processes: Optional[int] = None) -> HappensBeforeGraph:
    """Build the happens-before DAG (with vector clocks) of ``log``.

    ``n_processes`` sizes the vector clocks; when omitted it is inferred
    from the highest process id appearing in the log.
    """
    events = log.events()
    n = len(events)
    if n_processes is None:
        n_processes = _infer_n_processes(events) if events else 1
    predecessors: List[List[int]] = [[] for _ in range(n)]
    successors: List[List[int]] = [[] for _ in range(n)]

    def add_edge(source: int, target: int) -> None:
        if source >= target:  # defensive: edges always point forward in time
            return
        if source not in predecessors[target]:
            predecessors[target].append(source)
            successors[source].append(target)

    # Program order + indices for the message and liveness edges.
    last_at_process: Dict[int, int] = {}
    send_by_msg_id: Dict[int, int] = {}
    liveness: Dict[int, List[Tuple[float, int]]] = {}
    for index, event in enumerate(events):
        previous = last_at_process.get(event.process)
        if previous is not None:
            add_edge(previous, index)
        last_at_process[event.process] = index
        if event.kind == SEND and event.msg_id is not None:
            send_by_msg_id[event.msg_id] = index
        if event.kind in (CRASH, RECOVER):
            liveness.setdefault(event.process, []).append((event.time_ms, index))

    for index, event in enumerate(events):
        # Message order: send -> receive (and send -> post-send drop).
        if event.kind in (RECEIVE, DROP) and event.msg_id is not None:
            source = send_by_msg_id.get(event.msg_id)
            if source is not None and source != index:
                add_edge(source, index)
        # Liveness order: the latest crash/recover of the monitored
        # process precedes the timer verdict about it.
        if event.kind == TIMER and event.peer is not None:
            history = liveness.get(event.peer)
            if history:
                position = bisect_right(history, (event.time_ms, index)) - 1
                if position >= 0:
                    add_edge(history[position][1], index)

    # Vector clocks, in index order (every edge points forward).
    zero = (0,) * n_processes
    vector_clocks: List[Tuple[int, ...]] = []
    for index, event in enumerate(events):
        clock = list(zero)
        for pred in predecessors[index]:
            for component, value in enumerate(vector_clocks[pred]):
                if value > clock[component]:
                    clock[component] = value
        if 0 <= event.process < n_processes:
            clock[event.process] += 1
        vector_clocks.append(tuple(clock))

    return HappensBeforeGraph(
        events=events,
        predecessors=predecessors,
        successors=successors,
        vector_clocks=vector_clocks,
        n_processes=n_processes,
    )
