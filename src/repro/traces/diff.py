"""Trace diffing: reduce an anomaly to a minimal ordered explanation.

Given the event log of an anomalous replication and a nominal exemplar
(typically the medoids of two clusters from :mod:`repro.traces.cluster`),
:func:`diff_logs` abstracts both logs into event *signatures* -- the
event stripped of its volatile identity (time, ``msg_id``) -- counts
each signature on both sides, and reports only the signatures whose
counts differ, ordered by first occurrence.  The result reads as the
minimal story of how the anomalous run diverged: "3 crash events at p0
(nominal: 0), 41 send:sender-crashed drops (nominal: 0), ...".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.traces.events import EventLog, TraceEvent

#: A signature: the event with its volatile identity removed.
Signature = Tuple[str, str, int, int, int, str]


def event_signature(event: TraceEvent) -> Signature:
    """The stable identity of an event class (no time, no ``msg_id``)."""
    return (
        event.kind,
        event.msg_type or "",
        event.sender if event.sender is not None else event.process,
        event.destination if event.destination is not None else -1,
        event.peer if event.peer is not None else -1,
        event.detail,
    )


def describe_signature(signature: Signature) -> str:
    """A human-readable one-liner for a signature."""
    kind, msg_type, sender, destination, peer, detail = signature
    parts = [kind]
    if msg_type:
        parts.append(msg_type)
    if destination >= 0:
        parts.append(f"p{sender}->p{destination}")
    elif peer >= 0:
        parts.append(f"p{sender} about p{peer}")
    else:
        parts.append(f"p{sender}")
    if detail:
        parts.append(f"[{detail}]")
    return " ".join(parts)


@dataclass(frozen=True)
class DiffStep:
    """One line of the explanation: a signature whose counts differ."""

    description: str
    anomalous_count: int
    nominal_count: int
    first_time_ms: float

    @property
    def delta(self) -> int:
        """Count difference (positive = surplus in the anomalous run)."""
        return self.anomalous_count - self.nominal_count


@dataclass
class TraceDiff:
    """The minimal ordered explanation of an anomalous replication."""

    steps: List[DiffStep]

    def render_text(self, limit: int = 12) -> str:
        """The explanation as indented text (at most ``limit`` steps)."""
        if not self.steps:
            return "  (no event-class differences)"
        lines = []
        for step in self.steps[:limit]:
            lines.append(
                f"  t={step.first_time_ms:9.3f} ms  {step.description}: "
                f"{step.anomalous_count} vs {step.nominal_count} nominal "
                f"({step.delta:+d})"
            )
        if len(self.steps) > limit:
            lines.append(f"  ... and {len(self.steps) - limit} more differences")
        return "\n".join(lines)


def diff_logs(
    anomalous: EventLog, nominal: EventLog, max_steps: int = 50
) -> TraceDiff:
    """Diff two event logs into a minimal ordered explanation.

    Signatures present only in the nominal log (events the anomalous run
    *lacked*) are ordered by their nominal first-occurrence time, after
    the surplus steps of the same instant; ``max_steps`` bounds the
    explanation, keeping the largest absolute count differences when
    truncating (the ordering stays chronological).
    """
    counts_anomalous: Dict[Signature, int] = {}
    first_anomalous: Dict[Signature, float] = {}
    for event in anomalous.events():
        signature = event_signature(event)
        counts_anomalous[signature] = counts_anomalous.get(signature, 0) + 1
        first_anomalous.setdefault(signature, event.time_ms)
    counts_nominal: Dict[Signature, int] = {}
    first_nominal: Dict[Signature, float] = {}
    for event in nominal.events():
        signature = event_signature(event)
        counts_nominal[signature] = counts_nominal.get(signature, 0) + 1
        first_nominal.setdefault(signature, event.time_ms)

    steps: List[DiffStep] = []
    for signature in sorted(set(counts_anomalous) | set(counts_nominal)):
        in_anomalous = counts_anomalous.get(signature, 0)
        in_nominal = counts_nominal.get(signature, 0)
        if in_anomalous == in_nominal:
            continue
        first = first_anomalous.get(signature, first_nominal.get(signature, 0.0))
        steps.append(
            DiffStep(
                description=describe_signature(signature),
                anomalous_count=in_anomalous,
                nominal_count=in_nominal,
                first_time_ms=first,
            )
        )
    if len(steps) > max_steps:
        steps.sort(key=lambda step: -abs(step.delta))
        steps = steps[:max_steps]
    steps.sort(key=lambda step: (step.first_time_ms, step.description))
    return TraceDiff(steps=steps)
