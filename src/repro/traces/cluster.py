"""Replication-outcome featurization and density clustering.

A fault sweep's replications are summarised into fixed-length feature
vectors (drop counts by cause, crash timing, failure-detector
transitions, QoS metrics) and clustered with a dependency-free DBSCAN
over standardized features, surfacing the distinct failure modes of a
sweep point.  Clusters are ranked by how far their centroid sits from
the global mean (the most anomalous mode first) and each cluster names a
*medoid* exemplar -- the member replication most representative of its
mode, the natural subject for happens-before slicing and trace diffing.

Everything here is deterministic: features are assembled over sorted key
unions, DBSCAN visits points in index order, and no randomness is drawn
anywhere, so the same outcomes always produce the same clusters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.traces.events import CRASH, EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.measurement import MeasurementResult

#: DBSCAN defaults in *standardized* feature space: two replications
#: within 2.0 pooled standard deviations are density-reachable, and a
#: mode needs at least two members to be a cluster (singletons rank as
#: noise, which a sweep's exemplar ranking reports separately).
DEFAULT_EPS = 2.0
DEFAULT_MIN_SAMPLES = 2


@dataclass(frozen=True)
class FeatureMatrix:
    """A fixed-order feature matrix over a sweep's replications."""

    names: Tuple[str, ...]
    rows: Tuple[Tuple[float, ...], ...]

    @property
    def n_rows(self) -> int:
        """Number of replications."""
        return len(self.rows)


@dataclass(frozen=True)
class ClusterInfo:
    """One discovered failure mode."""

    label: int
    members: Tuple[int, ...]
    exemplar: int
    score: float


@dataclass
class ClusterResult:
    """The clustering of one sweep point's replications.

    ``labels[i]`` is the cluster label of replication *i* (``-1`` =
    noise); ``clusters`` is ranked most-anomalous-first (largest centroid
    norm in standardized feature space).
    """

    labels: List[int]
    clusters: List[ClusterInfo] = field(default_factory=list)
    noise: Tuple[int, ...] = ()

    def cluster_of(self, index: int) -> int:
        """The cluster label of one replication (``-1`` = noise)."""
        return self.labels[index]


def featurize_measurement(
    result: "MeasurementResult", log: EventLog | None = None
) -> Dict[str, float]:
    """The feature dictionary of one measurement replication.

    Covers the outcome axes that distinguish failure modes: latency and
    undecided counts (QoS), per-cause drop counters, duplication, crash
    counts and (from the event log, when given) first-crash timing, and
    failure-detector transition counts.  Non-finite values (e.g. the
    mean latency of an all-undecided run) become ``0.0`` -- the
    ``undecided`` feature carries that signal instead.
    """
    features: Dict[str, float] = {
        "mean_latency_ms": result.mean_latency_ms,
        "max_latency_ms": max(result.latencies_ms) if result.latencies_ms else 0.0,
        "undecided": float(result.undecided),
        "messages_dropped": float(result.messages_dropped),
        "messages_duplicated": float(result.messages_duplicated),
        "fd_transitions": float(len(result.fd_history)),
    }
    for cause, count in result.drops_by_cause.items():
        features[f"drops:{cause}"] = float(count)
    if result.fault_stats is not None:
        features["crashes"] = float(result.fault_stats.crashes)
        features["recoveries"] = float(result.fault_stats.recoveries)
    log = log if log is not None else getattr(result, "event_log", None)
    if log is not None:
        crashes = log.of_kind(CRASH)
        features["first_crash_ms"] = crashes[0].time_ms if crashes else 0.0
    return {
        name: (value if math.isfinite(value) else 0.0)
        for name, value in features.items()
    }


def feature_matrix(rows: Sequence[Dict[str, float]]) -> FeatureMatrix:
    """Assemble per-replication feature dicts into a fixed-order matrix.

    Columns are the sorted union of every dict's keys; missing entries
    are ``0.0`` (a replication without e.g. crash drops genuinely had
    zero of them).
    """
    names = tuple(sorted({name for row in rows for name in row}))
    matrix = tuple(
        tuple(float(row.get(name, 0.0)) for name in names) for row in rows
    )
    return FeatureMatrix(names=names, rows=matrix)


def _standardize(matrix: FeatureMatrix) -> np.ndarray:
    data = np.asarray(matrix.rows, dtype=np.float64)
    if data.size == 0:
        return data
    mean = data.mean(axis=0)
    std = data.std(axis=0)
    std[std == 0.0] = 1.0  # constant columns carry no distance
    return (data - mean) / std


def _dbscan(points: np.ndarray, eps: float, min_samples: int) -> List[int]:
    """Classic DBSCAN over a small point set (index-ordered, deterministic)."""
    n = len(points)
    if n == 0:
        return []
    deltas = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((deltas**2).sum(axis=2))
    neighborhoods = [np.flatnonzero(distances[i] <= eps).tolist() for i in range(n)]
    labels = [-1] * n
    visited = [False] * n
    cluster = 0
    for i in range(n):
        if visited[i]:
            continue
        visited[i] = True
        if len(neighborhoods[i]) < min_samples:
            continue  # not a core point (may later join a cluster as border)
        labels[i] = cluster
        frontier = list(neighborhoods[i])
        position = 0
        while position < len(frontier):
            j = frontier[position]
            position += 1
            if labels[j] == -1:
                labels[j] = cluster
            if visited[j]:
                continue
            visited[j] = True
            if len(neighborhoods[j]) >= min_samples:
                frontier.extend(neighborhoods[j])
        cluster += 1
    return labels


def cluster_features(
    matrix: FeatureMatrix,
    eps: float = DEFAULT_EPS,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> ClusterResult:
    """Cluster a sweep's replications into distinct failure modes.

    Features are standardized column-wise (z-scores over the whole
    point), DBSCAN runs with ``eps``/``min_samples`` in that space, and
    the resulting clusters are ranked by descending centroid norm --
    the cluster whose mode deviates most from the sweep-point average
    first.  Each cluster's ``exemplar`` is its medoid.
    """
    standardized = _standardize(matrix)
    labels = _dbscan(standardized, eps=eps, min_samples=min_samples)
    by_label: Dict[int, List[int]] = {}
    for index, label in enumerate(labels):
        if label >= 0:
            by_label.setdefault(label, []).append(index)
    clusters: List[ClusterInfo] = []
    for label in sorted(by_label):
        members = by_label[label]
        block = standardized[members]
        centroid = block.mean(axis=0)
        score = float(np.sqrt((centroid**2).sum()))
        deltas = block[:, None, :] - block[None, :, :]
        costs = np.sqrt((deltas**2).sum(axis=2)).sum(axis=1)
        exemplar = members[int(np.argmin(costs))]
        clusters.append(
            ClusterInfo(
                label=label,
                members=tuple(members),
                exemplar=exemplar,
                score=score,
            )
        )
    clusters.sort(key=lambda info: (-info.score, info.label))
    noise = tuple(index for index, label in enumerate(labels) if label < 0)
    return ClusterResult(labels=labels, clusters=clusters, noise=noise)
