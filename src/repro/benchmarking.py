"""Benchmark helpers and the committed performance-baseline scheme.

The repository's benchmarks (``benchmarks/``) run under pytest-benchmark;
this module adds the machinery that turns their one-off timings into a
*recorded perf trajectory*:

* :func:`run_once` -- the shared harness used by every benchmark body
  (timed via ``benchmark.pedantic``; ``REPRO_BENCH_ROUNDS`` raises the
  round count when noise matters, e.g. in CI).  It also stamps the
  machine's :func:`calibration_seconds` into the benchmark's
  ``extra_info`` so the emitted JSON is self-normalising.
* :func:`record_baseline` -- condenses a ``pytest-benchmark
  --benchmark-json`` result file into a small committed baseline
  (``benchmarks/baseline/BENCH_<tag>.json``).
* :func:`compare_to_baseline` -- compares a fresh result file against the
  committed baseline and fails on regressions beyond a tolerance.

Cross-machine normalisation
---------------------------
Absolute wall-clock times do not transfer between a laptop and a CI
runner, so the gate compares *calibration-normalised* means: each
benchmark's mean is divided by the time the same machine needs for a
fixed pure-Python workload (:func:`calibration_seconds`).  The ratio is a
dimensionless "how many calibration units does this benchmark cost"
figure that is stable across machines of similar architecture; the
tolerance (default 30%) absorbs the rest.

Command line
------------
``python -m repro.benchmarking record <results.json> <baseline.json>``
    Write/update the committed baseline from a fresh result file.

``python -m repro.benchmarking compare <results.json> <baseline.json>``
    Exit non-zero if any benchmark regressed by more than the tolerance.
    ``--allow-regression`` (or the documented CI override label, which
    sets it) reports but does not fail -- for PRs that intentionally
    trade speed for something else, alongside a baseline re-record.

``python -m repro.benchmarking report <results.json> <trajectory.json> --label L``
    Append (or refresh) one labeled entry of the *cumulative perf
    trajectory* (``BENCH_trajectory.json``): per benchmark, the mean,
    its calibration-normalised cost and -- for benchmarks that declare a
    replication count via ``run_once(..., replications=N)`` -- the
    replications-per-second throughput.  One entry per PR turns the
    committed baselines' before/after pairs into a readable history of
    how fast the solvers have become.
"""

from __future__ import annotations

import argparse
import json
import os
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: Version of the committed baseline file format.
BASELINE_SCHEMA = 1

#: Default relative regression tolerance of the CI gate.
DEFAULT_TOLERANCE = 0.30

_calibration_cache: Optional[float] = None


class BaselineError(RuntimeError):
    """Raised on malformed baseline/result files."""


def _calibration_workload() -> int:
    """A fixed, allocation-light pure-Python workload (~tens of ms)."""
    total = 0
    for i in range(150_000):
        total = (total + i * i) & 0xFFFFFFFF
    values = [(i * 2654435761) & 0xFFFFFF for i in range(40_000)]
    values.sort()
    return total ^ values[0] ^ values[-1]


def calibration_seconds(rounds: int = 3) -> float:
    """Best-of-``rounds`` wall-clock time of the calibration workload.

    Cached per process: every benchmark of a session shares one
    measurement (the workload is deterministic, the best-of damps
    scheduler noise).
    """
    global _calibration_cache
    if _calibration_cache is None:
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            _calibration_workload()
            best = min(best, time.perf_counter() - started)
        _calibration_cache = best
    return _calibration_cache


def run_once(benchmark, function, *args, replications=None, **kwargs):
    """Run ``function`` under pytest-benchmark timing.

    The default is a single round (the benchmark bodies regenerate whole
    paper figures, so even one round is substantial); ``REPRO_BENCH_ROUNDS``
    raises it when a tighter mean matters, e.g. for the CI baseline gate.
    The machine's calibration time is stamped into ``extra_info`` so the
    ``--benchmark-json`` output can be normalised by
    :func:`compare_to_baseline` without re-running anything.

    ``replications`` (consumed here, never passed to ``function``)
    declares how many simulation replications one timed call performs;
    it is stamped into ``extra_info`` so the trajectory report can turn
    the mean into a replications-per-second throughput.
    """
    rounds = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "1")))
    benchmark.extra_info["calibration_s"] = calibration_seconds()
    if replications is not None:
        benchmark.extra_info["replications"] = int(replications)
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=rounds, iterations=1)


# ----------------------------------------------------------------------
# Result/baseline files
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchmarkResult:
    """One benchmark extracted from a pytest-benchmark JSON file."""

    name: str
    mean_s: float
    calibration_s: float
    replications: Optional[int] = None

    @property
    def normalized(self) -> float:
        """Mean in calibration units (dimensionless, machine-portable)."""
        return self.mean_s / self.calibration_s

    @property
    def reps_per_s(self) -> Optional[float]:
        """Replications per second, for benchmarks that declare a count."""
        if not self.replications or self.mean_s <= 0:
            return None
        return self.replications / self.mean_s


def load_results(path: str) -> List[BenchmarkResult]:
    """Parse a ``pytest-benchmark --benchmark-json`` result file."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise BaselineError(f"{path}: no benchmarks in result file")
    results = []
    for entry in benchmarks:
        name = entry.get("fullname") or entry.get("name")
        stats = entry.get("stats") or {}
        mean = stats.get("mean")
        calibration = (entry.get("extra_info") or {}).get("calibration_s")
        if name is None or mean is None:
            raise BaselineError(f"{path}: malformed benchmark entry {entry!r}")
        if not calibration:
            # Benchmarks not run through run_once: fall back to measuring
            # calibration here.  Only sound when this process runs on the
            # same machine class as the run that wrote the file, so say so
            # loudly instead of silently skewing cross-machine comparisons.
            warnings.warn(
                f"benchmark {name!r} has no recorded calibration_s (not run "
                "through repro.benchmarking.run_once); normalising with "
                "THIS machine's calibration, which is only valid when "
                "comparing on the machine that produced the results",
                stacklevel=2,
            )
            calibration = calibration_seconds()
        replications = (entry.get("extra_info") or {}).get("replications")
        results.append(
            BenchmarkResult(
                name=str(name),
                mean_s=float(mean),
                calibration_s=float(calibration),
                replications=int(replications) if replications else None,
            )
        )
    return results


def record_baseline(results_path: str, baseline_path: str) -> Dict[str, object]:
    """Condense a result file into the committed baseline format."""
    results = load_results(results_path)
    baseline = {
        "schema": BASELINE_SCHEMA,
        "tolerance": DEFAULT_TOLERANCE,
        "recorded_calibration_s": results[0].calibration_s,
        "benchmarks": {
            result.name: {
                "mean_s": result.mean_s,
                "normalized": result.normalized,
            }
            for result in results
        },
    }
    os.makedirs(os.path.dirname(baseline_path) or ".", exist_ok=True)
    with open(baseline_path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


def load_baseline(path: str) -> Dict[str, object]:
    """Load and sanity-check a committed baseline file."""
    with open(path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path}: unsupported baseline schema {baseline.get('schema')!r}"
        )
    if not isinstance(baseline.get("benchmarks"), dict):
        raise BaselineError(f"{path}: missing 'benchmarks' table")
    return baseline


@dataclass(frozen=True)
class Comparison:
    """Comparison of one benchmark against its committed baseline entry."""

    name: str
    baseline_normalized: float
    current_normalized: float

    @property
    def ratio(self) -> float:
        """Current cost over baseline cost (1.0 = unchanged, 2.0 = 2x slower)."""
        if self.baseline_normalized <= 0:
            return float("inf")
        return self.current_normalized / self.baseline_normalized


@dataclass
class ComparisonReport:
    """Outcome of a baseline comparison."""

    compared: List[Comparison]
    regressions: List[Comparison]
    new_benchmarks: List[str]
    missing_benchmarks: List[str]
    tolerance: float

    @property
    def ok(self) -> bool:
        """``True`` when the gate holds.

        Requires no regression beyond the tolerance AND at least one
        benchmark actually compared: a run whose names all drifted away
        from the committed baseline (different rootdir, renamed tests)
        gates nothing, and reporting that as success would let real
        regressions ship behind a green check.
        """
        return bool(self.compared) and not self.regressions

    def render(self) -> str:
        """Human-readable table of the comparison."""
        lines = [
            f"benchmark baseline comparison (tolerance {self.tolerance:.0%}):"
        ]
        for comparison in sorted(self.compared, key=lambda c: -c.ratio):
            verdict = "REGRESSION" if comparison in self.regressions else "ok"
            lines.append(
                f"  {verdict:>10}  {comparison.ratio:6.2f}x  {comparison.name}"
                f"  (baseline {comparison.baseline_normalized:.3f} ->"
                f" current {comparison.current_normalized:.3f} calib units)"
            )
        for name in self.new_benchmarks:
            lines.append(f"       new   (not gated)  {name}")
        for name in self.missing_benchmarks:
            lines.append(f"   missing   (in baseline, not in run)  {name}")
        return "\n".join(lines)


def compare_to_baseline(
    results_path: str,
    baseline_path: str,
    tolerance: Optional[float] = None,
) -> ComparisonReport:
    """Compare a fresh result file against the committed baseline.

    A benchmark regresses when its calibration-normalised mean exceeds the
    baseline's by more than ``tolerance`` (the baseline file's own
    tolerance when not given).  Benchmarks present on only one side are
    reported but never gate.
    """
    results = {result.name: result for result in load_results(results_path)}
    baseline = load_baseline(baseline_path)
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    table: Dict[str, Dict[str, float]] = baseline["benchmarks"]  # type: ignore[assignment]

    compared: List[Comparison] = []
    regressions: List[Comparison] = []
    for name, entry in sorted(table.items()):
        result = results.get(name)
        if result is None:
            continue
        comparison = Comparison(
            name=name,
            baseline_normalized=float(entry["normalized"]),
            current_normalized=result.normalized,
        )
        compared.append(comparison)
        if comparison.ratio > 1.0 + tolerance:
            regressions.append(comparison)
    new = sorted(set(results) - set(table))
    missing = sorted(set(table) - set(results))
    return ComparisonReport(
        compared=compared,
        regressions=regressions,
        new_benchmarks=new,
        missing_benchmarks=missing,
        tolerance=tolerance,
    )


# ----------------------------------------------------------------------
# Cumulative perf trajectory
# ----------------------------------------------------------------------
#: Version of the committed trajectory file format.
TRAJECTORY_SCHEMA = 1


def load_trajectory(path: str) -> Dict[str, object]:
    """Load a trajectory file, or a fresh empty one when absent."""
    if not os.path.exists(path):
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    with open(path, encoding="utf-8") as handle:
        trajectory = json.load(handle)
    if trajectory.get("schema") != TRAJECTORY_SCHEMA:
        raise BaselineError(
            f"{path}: unsupported trajectory schema {trajectory.get('schema')!r}"
        )
    if not isinstance(trajectory.get("entries"), list):
        raise BaselineError(f"{path}: missing 'entries' list")
    return trajectory


def report_trajectory(
    results_path: str, trajectory_path: str, label: str
) -> Dict[str, object]:
    """Add one labeled entry to the cumulative perf trajectory.

    Entries stay in chronological (append) order, one per PR/label;
    reporting an existing label refreshes that entry in place, so a
    re-run CI job never duplicates history.  Benchmarks that declared a
    replication count (``run_once(..., replications=N)``) additionally
    carry ``reps_per_s`` -- the headline throughput figure of the solver
    benchmarks.
    """
    benchmarks: Dict[str, Dict[str, float]] = {}
    for result in load_results(results_path):
        entry: Dict[str, float] = {
            "mean_s": result.mean_s,
            "normalized": result.normalized,
        }
        if result.reps_per_s is not None:
            entry["replications"] = result.replications  # type: ignore[assignment]
            entry["reps_per_s"] = result.reps_per_s
        benchmarks[result.name] = entry
    trajectory = load_trajectory(trajectory_path)
    entries: List[Dict[str, object]] = trajectory["entries"]  # type: ignore[assignment]
    new_entry: Dict[str, object] = {"label": label, "benchmarks": benchmarks}
    for index, existing in enumerate(entries):
        if existing.get("label") == label:
            entries[index] = new_entry
            break
    else:
        entries.append(new_entry)
    os.makedirs(os.path.dirname(trajectory_path) or ".", exist_ok=True)
    with open(trajectory_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return trajectory


def render_trajectory(trajectory: Dict[str, object]) -> str:
    """Human-readable throughput history, one line per (entry, benchmark)."""
    lines = ["perf trajectory (reps/s where declared):"]
    entries: List[Dict[str, object]] = trajectory["entries"]  # type: ignore[assignment]
    for entry in entries:
        label = entry.get("label", "?")
        table: Dict[str, Dict[str, float]] = entry.get("benchmarks", {})  # type: ignore[assignment]
        for name, values in sorted(table.items()):
            reps = values.get("reps_per_s")
            throughput = f"{reps:8.0f} reps/s" if reps else f"{'-':>8} reps/s"
            lines.append(
                f"  {label:>8}  {throughput}  mean {values['mean_s']:.4f} s  {name}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.benchmarking``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmarking",
        description="Record or gate on committed pytest-benchmark baselines.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    record = subparsers.add_parser("record", help="write a baseline file")
    record.add_argument("results", help="pytest-benchmark --benchmark-json file")
    record.add_argument("baseline", help="baseline JSON to (over)write")

    compare = subparsers.add_parser(
        "compare", help="compare results against a committed baseline"
    )
    compare.add_argument("results", help="pytest-benchmark --benchmark-json file")
    compare.add_argument("baseline", help="committed baseline JSON")
    compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative regression tolerance (default: the baseline file's)",
    )
    compare.add_argument(
        "--allow-regression",
        action="store_true",
        help="report regressions but exit 0 (intentional perf changes)",
    )

    report_parser = subparsers.add_parser(
        "report", help="append a labeled entry to the cumulative perf trajectory"
    )
    report_parser.add_argument(
        "results", help="pytest-benchmark --benchmark-json file"
    )
    report_parser.add_argument(
        "trajectory", help="cumulative trajectory JSON to create or extend"
    )
    report_parser.add_argument(
        "--label",
        required=True,
        help="entry label, e.g. the PR number; an existing label is refreshed",
    )

    arguments = parser.parse_args(argv)
    if arguments.command == "record":
        baseline = record_baseline(arguments.results, arguments.baseline)
        print(
            f"recorded {len(baseline['benchmarks'])} benchmarks"  # type: ignore[arg-type]
            f" to {arguments.baseline}"
        )
        return 0

    if arguments.command == "report":
        trajectory = report_trajectory(
            arguments.results, arguments.trajectory, arguments.label
        )
        print(render_trajectory(trajectory))
        print(f"trajectory written to {arguments.trajectory}")
        return 0

    report = compare_to_baseline(
        arguments.results, arguments.baseline, tolerance=arguments.tolerance
    )
    print(report.render())
    if report.ok:
        print("baseline gate: OK")
        return 0
    if not report.compared:
        # Not overridable: nothing was gated, so "allow regression" would
        # bless a comparison that never happened.  Names usually drift when
        # pytest runs from a different rootdir or benchmarks were renamed;
        # re-record the baseline instead.
        print(
            "baseline gate: FAILED -- no benchmark in the run matches the "
            "committed baseline (renamed benchmarks or a different pytest "
            "rootdir?); re-record with 'python -m repro.benchmarking record'"
        )
        return 1
    if arguments.allow_regression or os.environ.get("REPRO_BENCH_ALLOW_REGRESSION"):
        print("baseline gate: regressions ALLOWED (override active)")
        return 0
    print(
        "baseline gate: FAILED -- rerun with --allow-regression (CI: apply the"
        " 'perf-baseline-override' label) for intentional perf changes, and"
        " re-record the baseline with 'python -m repro.benchmarking record'"
    )
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
