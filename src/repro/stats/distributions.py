"""Parametric distributions used by the simulators.

Both the SAN activities (:mod:`repro.san`) and the cluster testbed
(:mod:`repro.cluster`) need random durations drawn from a variety of
distributions.  UltraSAN -- the tool the paper used -- supports
exponential, deterministic, uniform and Weibull activities among others
(§3.1); the paper additionally fits a *bi-modal uniform* distribution to the
measured end-to-end delay (§5.1): ``U[0.1, 0.13]`` with probability 0.8 and
``U[0.145, 0.35]`` with probability 0.2 (milliseconds).

Every distribution exposes ``sample(rng)`` (one draw from a numpy
``Generator``) plus analytic ``mean()`` and ``variance()`` where they exist,
so tests can check the sampler against the analytic moments.

Distributions whose draws are a single vectorisable numpy call additionally
expose ``sample_batch(rng, size)``.  numpy's ``Generator`` methods fill
arrays from the same bit stream that scalar calls consume, so a batch of
``size`` values is *bit-identical* to ``size`` successive ``sample`` calls
(and leaves the generator in the same state) -- which is what lets both the
scalar SAN executor's pre-draw cache and the lock-step batched executor
(:mod:`repro.san.batched`) amortise the per-call numpy overhead over a
whole batch without perturbing fixed-seed results.  The contract is pinned
by example in ``test_stats_distributions`` and property-tested (bit
identity plus generator-state equality, over nested ``Shifted`` chains) in
``test_stats_properties``.  Mixtures interleave two draws per sample --
component selection, then the component's own draw -- and batch only when
every component is a :class:`Uniform`: both draws are then exactly one
``rng.random()`` double each, so the batch path can consume the same bit
stream (``2 * size`` doubles) via an inverse-CDF gather and stay
bit-identical, including the paper's :class:`BimodalUniform` delay fits.
Mixtures with any non-Uniform component keep the scalar-only path
(ziggurat-backed draws consume a variable number of doubles, which no
fixed-stride batch can replay); :func:`supports_batch` is the single gate
callers use to decide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np


@runtime_checkable
class Distribution(Protocol):
    """Protocol implemented by every duration distribution."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""
        ...

    def mean(self) -> float:
        """Analytic mean."""
        ...

    def variance(self) -> float:
        """Analytic variance."""
        ...


@dataclass(frozen=True)
class Constant:
    """A degenerate (deterministic) distribution.

    Used for ``t_send`` and ``t_receive``, which the paper assumes constant
    (§3.3), and for the deterministic failure-detector transitions of §3.4.
    """

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"Constant value must be >= 0, got {self.value}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` draws at once (constants consume no randomness)."""
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0


@dataclass(frozen=True)
class Uniform:
    """Continuous uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"Uniform requires low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` draws at once, bit-identical to repeated :meth:`sample`."""
        return rng.uniform(self.low, self.high, size)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0


@dataclass(frozen=True)
class Exponential:
    """Exponential distribution parameterised by its *mean* (not rate)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError(f"Exponential mean must be > 0, got {self.mean_value}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_value))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` draws at once, bit-identical to repeated :meth:`sample`."""
        return rng.exponential(self.mean_value, size)

    def mean(self) -> float:
        return self.mean_value

    def variance(self) -> float:
        return self.mean_value**2

    @property
    def rate(self) -> float:
        """The rate parameter lambda = 1/mean."""
        return 1.0 / self.mean_value


@dataclass(frozen=True)
class Weibull:
    """Weibull distribution with ``shape`` k and ``scale`` lambda."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("Weibull shape and scale must be > 0")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` draws at once, bit-identical to repeated :meth:`sample`."""
        return self.scale * rng.weibull(self.shape, size)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)


@dataclass(frozen=True)
class Normal:
    """Normal distribution truncated at zero (durations cannot be negative)."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"Normal sigma must be >= 0, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return max(0.0, float(rng.normal(self.mu, self.sigma)))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` draws at once, bit-identical to repeated :meth:`sample`."""
        return np.maximum(0.0, rng.normal(self.mu, self.sigma, size))

    def mean(self) -> float:
        # Approximation ignoring the (small) truncation mass below zero.
        return max(0.0, self.mu)

    def variance(self) -> float:
        return self.sigma**2


@dataclass(frozen=True)
class LogNormal:
    """Log-normal distribution parameterised by the underlying normal."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"LogNormal sigma must be >= 0, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` draws at once, bit-identical to repeated :meth:`sample`."""
        return rng.lognormal(self.mu, self.sigma, size)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def variance(self) -> float:
        return (math.exp(self.sigma**2) - 1.0) * math.exp(2 * self.mu + self.sigma**2)


class Mixture:
    """A finite mixture of component distributions.

    Parameters
    ----------
    components:
        Sequence of ``(weight, distribution)`` pairs.  Weights must be
        positive; they are normalised to sum to one.
    """

    def __init__(self, components: Sequence[tuple[float, Distribution]]) -> None:
        if not components:
            raise ValueError("Mixture requires at least one component")
        weights = np.asarray([w for w, _ in components], dtype=float)
        if np.any(weights <= 0):
            raise ValueError("Mixture weights must be > 0")
        self._weights = weights / weights.sum()
        self._dists = [d for _, d in components]
        # Inverse-CDF selection table.  numpy's Generator.choice draws one
        # random() double and searches the normalised cumulative weights, so
        # sampling through this table is bit-identical to rng.choice while
        # skipping its per-call argument validation (~10x on the scalar
        # path) and vectorising on the batch path.
        self._cdf = self._weights.cumsum()
        self._cdf /= self._cdf[-1]
        self._all_uniform = all(
            isinstance(dist, Uniform) for dist in self._dists
        )
        if self._all_uniform:
            self._lows = np.asarray([d.low for d in self._dists])
            self._spans = np.asarray([d.high - d.low for d in self._dists])

    @property
    def weights(self) -> np.ndarray:
        """Normalised component weights."""
        return self._weights.copy()

    @property
    def components(self) -> list[Distribution]:
        """The component distributions."""
        return list(self._dists)

    def sample(self, rng: np.random.Generator) -> float:
        index = int(np.searchsorted(self._cdf, rng.random(), side="right"))
        return self._dists[index].sample(rng)

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` draws at once, bit-identical to repeated :meth:`sample`.

        Only mixtures of :class:`Uniform` components batch: a scalar draw
        is then exactly two ``rng.random()`` doubles (selector, position),
        so drawing ``2 * size`` doubles and de-interleaving replays the
        scalar bit stream -- selectors at even offsets through the
        inverse-CDF table, positions at odd offsets through the affine
        ``low + span * u`` form numpy's ``uniform`` uses internally.
        """
        if not self._all_uniform:
            raise TypeError(
                f"{self!r} has a non-Uniform component; only all-Uniform "
                "mixtures offer a bit-identical batch path"
            )
        draws = rng.random(2 * size)
        indices = np.searchsorted(self._cdf, draws[0::2], side="right")
        return self._lows[indices] + self._spans[indices] * draws[1::2]

    def mean(self) -> float:
        return float(sum(w * d.mean() for w, d in zip(self._weights, self._dists, strict=True)))

    def variance(self) -> float:
        mean = self.mean()
        second_moment = float(
            sum(
                w * (d.variance() + d.mean() ** 2)
                for w, d in zip(self._weights, self._dists, strict=True)
            )
        )
        return second_moment - mean**2

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:.3g}*{d!r}" for w, d in zip(self._weights, self._dists, strict=True)
        )
        return f"Mixture({parts})"


class BimodalUniform(Mixture):
    """The paper's bi-modal uniform fit of the end-to-end delay (§5.1).

    With the default parameters this is exactly the unicast fit reported in
    the paper: ``U[0.1, 0.13]`` with probability 0.8 and ``U[0.145, 0.35]``
    with probability 0.2, in milliseconds.
    """

    def __init__(
        self,
        low1: float = 0.1,
        high1: float = 0.13,
        low2: float = 0.145,
        high2: float = 0.35,
        p1: float = 0.8,
    ) -> None:
        if not 0.0 < p1 < 1.0:
            raise ValueError(f"p1 must be in (0, 1), got {p1}")
        super().__init__(
            [(p1, Uniform(low1, high1)), (1.0 - p1, Uniform(low2, high2))]
        )
        self.low1, self.high1 = low1, high1
        self.low2, self.high2 = low2, high2
        self.p1 = p1

    def __repr__(self) -> str:
        return (
            f"BimodalUniform(U[{self.low1}, {self.high1}] w.p. {self.p1}, "
            f"U[{self.low2}, {self.high2}] w.p. {1 - self.p1:.3g})"
        )


@dataclass(frozen=True)
class Shifted:
    """A distribution shifted right by a constant offset."""

    offset: float
    base: Distribution

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"Shifted offset must be >= 0, got {self.offset}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.offset + self.base.sample(rng)

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` draws at once (delegates to the base distribution)."""
        if not hasattr(self.base, "sample_batch"):
            raise TypeError(
                f"base distribution {self.base!r} has no batch sampler"
            )
        return self.offset + self.base.sample_batch(rng, size)

    def mean(self) -> float:
        return self.offset + self.base.mean()

    def variance(self) -> float:
        return self.base.variance()


def distribution_from_spec(spec: Mapping[str, object]) -> Distribution:
    """Build a distribution from a plain-dict specification.

    This is the configuration-file entry point: experiment configurations
    (and the benchmark harness) describe distributions as dictionaries such
    as ``{"kind": "exponential", "mean": 2.5}``.

    Supported kinds: ``constant``, ``uniform``, ``exponential``, ``weibull``,
    ``normal``, ``lognormal``, ``bimodal_uniform``.
    """
    kind = str(spec.get("kind", "")).lower()
    if kind == "constant":
        return Constant(float(spec["value"]))
    if kind == "uniform":
        return Uniform(float(spec["low"]), float(spec["high"]))
    if kind == "exponential":
        return Exponential(float(spec["mean"]))
    if kind == "weibull":
        return Weibull(float(spec["shape"]), float(spec["scale"]))
    if kind == "normal":
        return Normal(float(spec["mu"]), float(spec["sigma"]))
    if kind == "lognormal":
        return LogNormal(float(spec["mu"]), float(spec["sigma"]))
    if kind == "bimodal_uniform":
        return BimodalUniform(
            low1=float(spec.get("low1", 0.1)),
            high1=float(spec.get("high1", 0.13)),
            low2=float(spec.get("low2", 0.145)),
            high2=float(spec.get("high2", 0.35)),
            p1=float(spec.get("p1", 0.8)),
        )
    raise ValueError(f"unknown distribution kind: {kind!r}")


def supports_batch(dist: object) -> bool:
    """``True`` if ``dist.sample_batch`` is usable for bit-identical batches.

    Duck-typed on the ``sample_batch`` attribute, with two refinements: a
    :class:`Shifted` distribution only batches when its base does, and a
    :class:`Mixture` only batches when every component is a
    :class:`Uniform` (their ``sample_batch`` raises ``TypeError``
    otherwise).
    """
    if not hasattr(dist, "sample_batch"):
        return False
    if isinstance(dist, Shifted):
        return supports_batch(dist.base)
    if isinstance(dist, Mixture):
        return dist._all_uniform
    return True
