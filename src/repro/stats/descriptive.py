"""Descriptive statistics and confidence intervals.

The paper reports mean latencies with 90% Student-t confidence intervals
computed from run means (§5.2: "The 90% confidence intervals for the
measured means have a half-width smaller than 0.02 ms";  §5.4: "We computed
the mean values and their 90% confidence intervals from the mean values
measured in each of the runs").  This module provides exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def lower(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """``True`` if ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """``True`` if the two intervals intersect."""
        return self.lower <= other.upper and other.lower <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {self.half_width:.3g} "
            f"({self.confidence:.0%} CI, n={self.n})"
        )


@dataclass(frozen=True)
class SampleSummary:
    """Five-number-style summary of a sample, plus mean and CI."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p90: float
    p99: float
    ci: ConfidenceInterval

    def as_dict(self) -> dict[str, float]:
        """Flatten the summary into a plain dictionary (for reports)."""
        return {
            "n": float(self.n),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "ci_half_width": self.ci.half_width,
        }


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.90
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``.

    Parameters
    ----------
    samples:
        The observations.  At least one is required; with a single
        observation the half-width is reported as ``inf``.
    confidence:
        Coverage probability, e.g. ``0.90`` for the paper's 90% intervals.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot compute a confidence interval of an empty sample")
    mean = float(np.mean(data))
    if data.size == 1:
        return ConfidenceInterval(mean=mean, half_width=math.inf,
                                  confidence=confidence, n=1)
    std_err = float(np.std(data, ddof=1)) / math.sqrt(data.size)
    t_value = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    return ConfidenceInterval(
        mean=mean,
        half_width=t_value * std_err,
        confidence=confidence,
        n=int(data.size),
    )


def summarize(samples: Sequence[float], confidence: float = 0.90) -> SampleSummary:
    """Compute a :class:`SampleSummary` of ``samples``."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample")
    ci = confidence_interval(data, confidence)
    return SampleSummary(
        n=int(data.size),
        mean=float(np.mean(data)),
        std=float(np.std(data, ddof=1)) if data.size > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        median=float(np.median(data)),
        p90=float(np.percentile(data, 90)),
        p99=float(np.percentile(data, 99)),
        ci=ci,
    )


def batch_means(samples: Sequence[float], batches: int) -> list[float]:
    """Split ``samples`` into ``batches`` contiguous batches and return their means.

    The paper's class-3 experiments average 20 runs of 1000 consensus
    executions each; batch means let a single long simulation be analysed
    the same way.
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    data = np.asarray(list(samples), dtype=float)
    if data.size < batches:
        raise ValueError(
            f"cannot form {batches} batches from {data.size} samples"
        )
    splits = np.array_split(data, batches)
    return [float(np.mean(chunk)) for chunk in splits]
