"""Empirical cumulative distribution functions.

Figures 6 and 7 of the paper plot cumulative distributions of end-to-end
delays and consensus latencies.  :class:`EmpiricalCDF` stores a sample,
evaluates the step CDF, extracts quantiles and produces the (x, p) series
needed to re-plot those figures.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class EmpiricalCDF:
    """The empirical CDF of a one-dimensional sample.

    Parameters
    ----------
    samples:
        Observations.  They are copied and sorted on construction.
    """

    def __init__(self, samples: Iterable[float]) -> None:
        data = np.asarray(sorted(float(x) for x in samples), dtype=float)
        if data.size == 0:
            raise ValueError("EmpiricalCDF requires at least one sample")
        self._data = data

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of samples."""
        return int(self._data.size)

    @property
    def samples(self) -> np.ndarray:
        """The sorted samples (read-only view)."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    @property
    def min(self) -> float:
        """Smallest observation."""
        return float(self._data[0])

    @property
    def max(self) -> float:
        """Largest observation."""
        return float(self._data[-1])

    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self._data))

    # ------------------------------------------------------------------
    def evaluate(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        return float(np.searchsorted(self._data, x, side="right")) / self.n

    def __call__(self, x: float) -> float:
        return self.evaluate(x)

    def quantile(self, p: float) -> float:
        """The smallest x such that ``evaluate(x) >= p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {p}")
        if p == 0.0:
            return self.min
        index = int(np.ceil(p * self.n)) - 1
        index = min(max(index, 0), self.n - 1)
        return float(self._data[index])

    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    # ------------------------------------------------------------------
    def series(self, points: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The (x, p) step series of the CDF, optionally subsampled.

        Returns arrays suitable for plotting or for tabulating the curves in
        the paper's Figures 6, 7 and 9.
        """
        xs = self._data
        ps = np.arange(1, self.n + 1, dtype=float) / self.n
        if points is not None and points < self.n:
            idx = np.linspace(0, self.n - 1, points).round().astype(int)
            xs = xs[idx]
            ps = ps[idx]
        return xs.copy(), ps.copy()

    def table(self, probabilities: Sequence[float]) -> list[tuple[float, float]]:
        """Quantiles at the given probabilities, as ``(p, x)`` rows."""
        return [(float(p), self.quantile(float(p))) for p in probabilities]

    # ------------------------------------------------------------------
    def ks_distance(self, other: "EmpiricalCDF") -> float:
        """Two-sample Kolmogorov-Smirnov statistic against another CDF.

        Used by the calibration step (Figure 7b) to quantify how well a
        simulated latency distribution matches the measured one.
        """
        grid = np.union1d(self._data, other._data)
        mine = np.searchsorted(self._data, grid, side="right") / self.n
        theirs = np.searchsorted(other._data, grid, side="right") / other.n
        return float(np.max(np.abs(mine - theirs)))

    def __repr__(self) -> str:
        return (
            f"EmpiricalCDF(n={self.n}, min={self.min:.4g}, "
            f"median={self.median():.4g}, max={self.max:.4g})"
        )
