"""Fitting parametric distributions to measured samples.

§5.1 of the paper approximates the measured end-to-end delay distributions
"by using uniform distributions in a bi-modal fashion": a uniform body
holding most of the probability mass and a uniform tail holding the rest
(``U[0.1, 0.13]`` with probability 0.8 and ``U[0.145, 0.35]`` with
probability 0.2 for unicast messages).  :func:`fit_bimodal_uniform`
reproduces that fit from raw samples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.stats.distributions import BimodalUniform


def fit_bimodal_uniform(
    samples: Sequence[float],
    body_probability: float = 0.8,
    lower_quantile: float = 0.01,
    upper_quantile: float = 0.99,
) -> BimodalUniform:
    """Fit a bi-modal uniform distribution to ``samples``.

    The samples are split at the ``body_probability`` quantile: the lower
    part is fitted with a uniform between its (clipped) extremes, the upper
    part likewise.  Clipping at the ``lower_quantile`` / ``upper_quantile``
    sample quantiles discards the few extreme outliers, as a fit done by eye
    on a CDF plot (which is what the paper did) effectively does.

    Parameters
    ----------
    samples:
        The measured delays.
    body_probability:
        Probability mass assigned to the first (fast) mode; the paper uses
        0.8.
    lower_quantile, upper_quantile:
        Outlier-clipping quantiles.

    Returns
    -------
    BimodalUniform
        The fitted distribution.
    """
    data = np.asarray(sorted(float(x) for x in samples), dtype=float)
    if data.size < 10:
        raise ValueError(
            f"need at least 10 samples to fit a bi-modal uniform, got {data.size}"
        )
    if not 0.0 < body_probability < 1.0:
        raise ValueError("body_probability must be in (0, 1)")
    low_clip = float(np.quantile(data, lower_quantile))
    high_clip = float(np.quantile(data, upper_quantile))
    split = float(np.quantile(data, body_probability))
    body = data[(data >= low_clip) & (data <= split)]
    tail = data[(data > split) & (data <= high_clip)]
    if body.size == 0 or tail.size == 0:
        # Degenerate split (e.g. heavily discrete data): fall back to a
        # symmetric split around the median.
        split = float(np.median(data))
        body = data[data <= split]
        tail = data[data > split]
    low1, high1 = float(body.min()), float(body.max())
    low2, high2 = float(tail.min()), float(tail.max())
    if high1 <= low1:
        high1 = low1 + 1e-9
    if high2 <= low2:
        high2 = low2 + 1e-9
    if low2 < high1:
        low2 = high1
        if high2 <= low2:
            high2 = low2 + 1e-9
    return BimodalUniform(
        low1=low1, high1=high1, low2=low2, high2=high2, p1=body_probability
    )
