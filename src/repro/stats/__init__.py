"""Statistics toolkit.

Provides the statistical machinery the paper's evaluation relies on:

* empirical cumulative distribution functions (Figures 6, 7),
* means with Student-t confidence intervals (§5.2, Table 1, Figures 8, 9),
* the parametric distributions used to drive the simulations, including the
  bi-modal uniform fit of the measured end-to-end delay (§5.1).
"""

from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import (
    ConfidenceInterval,
    SampleSummary,
    confidence_interval,
    summarize,
)
from repro.stats.distributions import (
    BimodalUniform,
    Constant,
    Distribution,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    Shifted,
    Uniform,
    Weibull,
    distribution_from_spec,
)

__all__ = [
    "BimodalUniform",
    "ConfidenceInterval",
    "Constant",
    "Distribution",
    "EmpiricalCDF",
    "Exponential",
    "LogNormal",
    "Mixture",
    "Normal",
    "SampleSummary",
    "Shifted",
    "Uniform",
    "Weibull",
    "confidence_interval",
    "distribution_from_spec",
    "summarize",
]
