"""Composable fault-load specifications.

The paper validates its SAN consensus models against measurements under
*crash* fault-loads only (§2.4 classes 1-3).  This module widens the
scenario space of the testbed simulator with the fault-load vocabulary of
the dependability-benchmarking literature: message loss, message
duplication, reordering delay-spikes, network partitions, crash-recovery
and CPU load bursts.  A :class:`FaultLoad` is an immutable, picklable
composition of individual fault specs; the runtime injection is done by
:class:`~repro.faults.injector.FaultInjector`, which the cluster threads
through its transport, Ethernet hub and hosts.

All specs are frozen dataclasses so that fault loads can be embedded in
experiment configurations, hashed into sweep-cache keys and shipped to
worker processes unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple, Union


def validate_partition_groups(groups: Sequence[Sequence[int]]) -> None:
    """Raise if any host appears in more than one partition group."""
    seen: set[int] = set()
    for group in groups:
        for host in group:
            if host in seen:
                raise ValueError(f"host {host} appears in more than one group")
            seen.add(host)


def partition_group_index(groups: Sequence[Sequence[int]], host: int) -> int:
    """Index of ``host``'s group, or ``-1`` for the implicit group.

    Hosts named in no group share one implicit group of their own.  This is
    the single definition of partition membership, used both by the testbed
    injector (:class:`NetworkPartition`) and by the SAN model
    (:meth:`repro.sanmodels.parameters.SANParameters.connected`), keeping
    the two sides' connectivity semantics identical by construction.
    """
    for index, group in enumerate(groups):
        if host in group:
            return index
    return -1


@dataclass(frozen=True)
class MessageLoss:
    """Drop each unicast message copy with probability ``rate``.

    Attributes
    ----------
    rate:
        Per-copy drop probability at the wire stage (a broadcast expanded
        into ``n - 1`` unicast copies draws once per copy, matching the
        transport's per-copy pipeline).
    msg_types:
        Restrict the loss to these message types (``None`` = all types).
    """

    rate: float
    msg_types: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {self.rate}")

    def applies_to(self, msg_type: str) -> bool:
        """``True`` if this fault may drop messages of ``msg_type``."""
        return self.msg_types is None or msg_type in self.msg_types


@dataclass(frozen=True)
class MessageDuplication:
    """Inject ``copies`` extra deliveries of a message with probability ``rate``."""

    rate: float
    copies: int = 1
    msg_types: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"duplication rate must be in [0, 1], got {self.rate}")
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1, got {self.copies}")

    def applies_to(self, msg_type: str) -> bool:
        """``True`` if this fault may duplicate messages of ``msg_type``."""
        return self.msg_types is None or msg_type in self.msg_types


@dataclass(frozen=True)
class DelaySpike:
    """Add a uniform extra delay to a message with probability ``rate``.

    ``where="stack"`` delays the message in the receiving protocol stack,
    *after* it left the shared medium -- delayed messages can be overtaken
    by later ones, i.e. this produces genuine reordering.  ``where="medium"``
    lengthens the frame's occupancy of the shared Ethernet medium instead,
    delaying everything queued behind it (congestion bursts).
    """

    rate: float
    extra_low_ms: float = 0.5
    extra_high_ms: float = 5.0
    where: str = "stack"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"delay-spike rate must be in [0, 1], got {self.rate}")
        if self.extra_low_ms < 0 or self.extra_high_ms < self.extra_low_ms:
            raise ValueError(
                "delay-spike bounds must satisfy 0 <= extra_low_ms <= extra_high_ms"
            )
        if self.where not in ("stack", "medium"):
            raise ValueError(f"where must be 'stack' or 'medium', got {self.where!r}")


@dataclass(frozen=True)
class NetworkPartition:
    """Split the hosts into isolated groups during a time window.

    Attributes
    ----------
    groups:
        Host-id groups; two hosts can communicate during the window only if
        they are in the same group.  Hosts named in no group form one
        implicit group of their own.
    start_ms / end_ms:
        Window of global simulation time during which the partition holds
        (``end_ms=inf`` = the partition never heals).
    """

    groups: Tuple[Tuple[int, ...], ...]
    start_ms: float = 0.0
    end_ms: float = math.inf

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a NetworkPartition needs at least one group")
        validate_partition_groups(self.groups)
        if self.end_ms < self.start_ms:
            raise ValueError("end_ms must be >= start_ms")

    def active(self, now_ms: float) -> bool:
        """``True`` if the partition is in force at ``now_ms``."""
        return self.start_ms <= now_ms < self.end_ms

    def separates(self, a: int, b: int) -> bool:
        """``True`` if hosts ``a`` and ``b`` are in different groups."""
        return partition_group_index(self.groups, a) != partition_group_index(
            self.groups, b
        )


@dataclass(frozen=True)
class CrashRecovery:
    """Crash a process at ``crash_at_ms``; optionally recover it later.

    On recovery the host accepts messages again and the process restarts
    its protocol layers (re-arming heartbeat timers etc.), so traffic
    addressed to it is delivered again -- the transport only ever drops
    copies that reach a *currently* crashed host.
    """

    process_id: int
    crash_at_ms: float
    recover_at_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.process_id < 0:
            raise ValueError("process_id must be >= 0")
        if self.crash_at_ms < 0:
            raise ValueError("crash_at_ms must be >= 0")
        if self.recover_at_ms is not None and self.recover_at_ms <= self.crash_at_ms:
            raise ValueError("recover_at_ms must be > crash_at_ms")


@dataclass(frozen=True)
class CpuLoadBurst:
    """Multiply CPU occupancy on some hosts during a time window.

    Models a co-located background load burst: every message send/receive
    processed by an affected host takes ``slowdown`` times longer while the
    burst is active (the paper's cluster was unloaded; §5.4 speculates on
    scheduler interference, which this fault makes explorable).
    """

    start_ms: float
    end_ms: float
    slowdown: float = 2.0
    hosts: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ValueError("end_ms must be > start_ms")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    def active(self, now_ms: float, host: int) -> bool:
        """``True`` if the burst slows ``host`` down at ``now_ms``."""
        if not self.start_ms <= now_ms < self.end_ms:
            return False
        return self.hosts is None or host in self.hosts


#: Any single fault specification.
FaultSpec = Union[
    MessageLoss,
    MessageDuplication,
    DelaySpike,
    NetworkPartition,
    CrashRecovery,
    CpuLoadBurst,
]


@dataclass(frozen=True)
class FaultLoad:
    """An immutable composition of fault specs applied to one run."""

    faults: Tuple[FaultSpec, ...] = ()
    name: str = field(default="")

    @staticmethod
    def of(*faults: FaultSpec, name: str = "") -> "FaultLoad":
        """Build a load from individual specs."""
        return FaultLoad(faults=tuple(faults), name=name)

    @staticmethod
    def none(name: str = "fault-free") -> "FaultLoad":
        """The empty fault load."""
        return FaultLoad(faults=(), name=name)

    # ------------------------------------------------------------------
    def with_fault(self, fault: FaultSpec) -> "FaultLoad":
        """A copy of this load with one more fault spec."""
        return FaultLoad(faults=self.faults + (fault,), name=self.name)

    def select(self, kind: type) -> Tuple[FaultSpec, ...]:
        """All specs of the given type, in declaration order."""
        return tuple(fault for fault in self.faults if isinstance(fault, kind))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __iter__(self) -> Iterable[FaultSpec]:
        return iter(self.faults)

    # ------------------------------------------------------------------
    # SAN-side mapping (apples-to-apples model parameters)
    # ------------------------------------------------------------------
    def total_loss_rate(self) -> float:
        """Combined per-copy loss probability of the untyped loss specs.

        Independent loss faults compose as ``1 - prod(1 - rate_i)``; typed
        specs are excluded because the SAN model has no per-type loss.
        """
        survive = 1.0
        for fault in self.select(MessageLoss):
            if fault.msg_types is None:
                survive *= 1.0 - fault.rate
        return 1.0 - survive

    def static_partition_groups(self) -> Tuple[Tuple[int, ...], ...]:
        """Partition groups of a whole-run partition (for the SAN model).

        Only a partition active from t=0 and never healing maps cleanly
        onto the SAN model's static connectivity; windowed partitions
        return ``()`` (no SAN analogue).
        """
        for fault in self.select(NetworkPartition):
            if fault.start_ms <= 0.0 and math.isinf(fault.end_ms):
                return fault.groups
        return ()

    def label(self) -> str:
        """A short human-readable label for tables and logs."""
        if self.name:
            return self.name
        if not self.faults:
            return "fault-free"
        return "+".join(type(fault).__name__ for fault in self.faults)
