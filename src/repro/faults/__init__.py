"""Composable fault-load models and their runtime injection.

See :mod:`repro.faults.spec` for the declarative fault vocabulary and
:mod:`repro.faults.injector` for the runtime hooks the cluster threads
through its transport, Ethernet hub and hosts.
"""

from repro.faults.injector import (
    CAUSE_LOSS,
    CAUSE_PARTITION,
    FaultEvent,
    FaultInjector,
    FaultStats,
    UnicastDecision,
)
from repro.faults.spec import (
    CpuLoadBurst,
    CrashRecovery,
    DelaySpike,
    FaultLoad,
    FaultSpec,
    MessageDuplication,
    MessageLoss,
    NetworkPartition,
)

__all__ = [
    "CAUSE_LOSS",
    "CAUSE_PARTITION",
    "CpuLoadBurst",
    "CrashRecovery",
    "DelaySpike",
    "FaultEvent",
    "FaultInjector",
    "FaultLoad",
    "FaultSpec",
    "FaultStats",
    "MessageDuplication",
    "MessageLoss",
    "NetworkPartition",
    "UnicastDecision",
]
