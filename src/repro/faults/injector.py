"""Runtime fault injection for the simulated cluster.

A :class:`FaultInjector` turns a declarative
:class:`~repro.faults.spec.FaultLoad` into runtime behaviour through three
hook points the cluster threads through its components:

* the **transport** consults :meth:`FaultInjector.decide_unicast` once per
  unicast copy entering the wire (loss, duplication, partitions) and
  :meth:`FaultInjector.stack_extra_delay` in the receiving protocol stack
  (reordering delay-spikes);
* the **Ethernet hub** adds :meth:`FaultInjector.medium_extra_delay` to a
  frame's occupancy of the shared medium (congestion-style delay spikes);
* each **host** scales its CPU occupancy by the per-host closure from
  :meth:`FaultInjector.cpu_load_model` (CPU load bursts), and
  crash-recovery faults are driven by simulator events scheduled at
  :meth:`FaultInjector.install` time.

Every random decision draws from its own named stream of the simulator's
:class:`~repro.des.random.RandomStreams` (``faults.loss``, ``faults.dup``,
``faults.delay``), so composing fault types never perturbs the draws of
another type and runs are reproducible under a fixed seed.  Every injected
fault is counted in :attr:`FaultInjector.stats` and recorded as a
:class:`FaultEvent` trace entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.des.simulator import Simulator
from repro.faults.spec import (
    CpuLoadBurst,
    CrashRecovery,
    DelaySpike,
    FaultLoad,
    MessageDuplication,
    MessageLoss,
    NetworkPartition,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.message import Message

#: Drop cause attributed to probabilistic message loss.
CAUSE_LOSS = "loss"
#: Drop cause attributed to an active network partition.
CAUSE_PARTITION = "partition"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence (the fault trace).

    ``process`` carries the structured target identity for liveness
    faults (``crash`` / ``recovery``); message-level injections keep it
    ``None`` and describe the affected copy in ``detail``.
    """

    time_ms: float
    kind: str
    detail: str
    process: Optional[int] = None


@dataclass
class FaultStats:
    """Counters of injected faults, by kind."""

    messages_lost: int = 0
    partition_drops: int = 0
    duplicates_injected: int = 0
    delay_spikes: int = 0
    crashes: int = 0
    recoveries: int = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a flat dictionary (for reports)."""
        return {
            "messages_lost": self.messages_lost,
            "partition_drops": self.partition_drops,
            "duplicates_injected": self.duplicates_injected,
            "delay_spikes": self.delay_spikes,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
        }


@dataclass(frozen=True)
class UnicastDecision:
    """The injector's verdict for one unicast copy entering the wire."""

    drop_cause: Optional[str] = None
    duplicates: int = 0


#: The verdict letting a message through untouched.
PASS = UnicastDecision()


class FaultInjector:
    """Applies a :class:`FaultLoad` to one simulated cluster run.

    Parameters
    ----------
    sim:
        The owning simulator (supplies virtual time and random streams).
    load:
        The declarative fault load to apply.
    trace:
        Record a :class:`FaultEvent` per injection when ``True``.  The
        trace is unbounded, so long soak runs may want it off.
    """

    def __init__(self, sim: Simulator, load: FaultLoad, trace: bool = True) -> None:
        self.sim = sim
        self.load = load
        self.stats = FaultStats()
        self.events: List[FaultEvent] = []
        self._trace = trace
        self._loss = load.select(MessageLoss)
        self._duplication = load.select(MessageDuplication)
        self._stack_spikes = tuple(
            f for f in load.select(DelaySpike) if f.where == "stack"
        )
        self._medium_spikes = tuple(
            f for f in load.select(DelaySpike) if f.where == "medium"
        )
        self._partitions = load.select(NetworkPartition)
        self._crash_recovery = load.select(CrashRecovery)
        self._cpu_bursts = load.select(CpuLoadBurst)
        self._loss_rng = sim.random.stream("faults.loss") if self._loss else None
        self._dup_rng = sim.random.stream("faults.dup") if self._duplication else None
        self._delay_rng = (
            sim.random.stream("faults.delay")
            if (self._stack_spikes or self._medium_spikes)
            else None
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, cluster: "Cluster") -> None:
        """Schedule the time-driven faults (crash-recovery) on ``cluster``.

        Validates fault targets against the cluster size up front, so a
        misconfigured load fails at construction time instead of raising
        (or silently no-opping) mid-simulation.
        """
        for fault in self._crash_recovery:
            if fault.process_id >= len(cluster.hosts):
                raise ValueError(
                    f"CrashRecovery targets process {fault.process_id}, but the "
                    f"cluster has only {len(cluster.hosts)} processes"
                )
            self.sim.schedule_at(
                fault.crash_at_ms, self._do_crash, cluster, fault.process_id
            )
            if fault.recover_at_ms is not None:
                self.sim.schedule_at(
                    fault.recover_at_ms, self._do_recover, cluster, fault.process_id
                )

    def cpu_load_model(self, host_index: int) -> Optional[Callable[[float], float]]:
        """The CPU slowdown model for one host, or ``None`` if unaffected."""
        bursts = tuple(
            burst
            for burst in self._cpu_bursts
            if burst.hosts is None or host_index in burst.hosts
        )
        if not bursts:
            return None

        def factor(now_ms: float) -> float:
            slowdown = 1.0
            for burst in bursts:
                if burst.active(now_ms, host_index):
                    slowdown *= burst.slowdown
            return slowdown

        return factor

    # ------------------------------------------------------------------
    # Hook points
    # ------------------------------------------------------------------
    def decide_unicast(self, message: "Message", now_ms: float) -> UnicastDecision:
        """Loss / partition / duplication verdict for one unicast copy."""
        for partition in self._partitions:
            if partition.active(now_ms) and partition.separates(
                message.sender, message.destination
            ):
                self.stats.partition_drops += 1
                self._record(
                    "partition-drop",
                    f"{message.msg_type} p{message.sender}->p{message.destination}",
                )
                return UnicastDecision(drop_cause=CAUSE_PARTITION)
        if self._loss_rng is not None:
            for fault in self._loss:
                if not fault.applies_to(message.msg_type):
                    continue
                if fault.rate > 0.0 and self._loss_rng.random() < fault.rate:
                    self.stats.messages_lost += 1
                    self._record(
                        "loss",
                        f"{message.msg_type} p{message.sender}->p{message.destination}",
                    )
                    return UnicastDecision(drop_cause=CAUSE_LOSS)
        duplicates = 0
        if self._dup_rng is not None:
            for fault in self._duplication:
                if not fault.applies_to(message.msg_type):
                    continue
                if fault.rate > 0.0 and self._dup_rng.random() < fault.rate:
                    duplicates += fault.copies
            if duplicates:
                self.stats.duplicates_injected += duplicates
                self._record(
                    "duplicate",
                    f"{message.msg_type} p{message.sender}->p{message.destination} "
                    f"x{duplicates}",
                )
        if duplicates:
            return UnicastDecision(duplicates=duplicates)
        return PASS

    def stack_extra_delay(self, message: "Message", now_ms: float) -> float:
        """Extra protocol-stack latency for one message (reordering spikes)."""
        return self._spike_delay(self._stack_spikes, message, "stack-delay")

    def medium_extra_delay(self, message: "Message", now_ms: float) -> float:
        """Extra shared-medium occupancy for one frame (congestion spikes)."""
        return self._spike_delay(self._medium_spikes, message, "medium-delay")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _spike_delay(self, spikes, message: "Message", kind: str) -> float:
        if self._delay_rng is None or not spikes:
            return 0.0
        extra = 0.0
        for fault in spikes:
            if fault.rate > 0.0 and self._delay_rng.random() < fault.rate:
                extra += float(
                    self._delay_rng.uniform(fault.extra_low_ms, fault.extra_high_ms)
                )
        if extra > 0.0:
            self.stats.delay_spikes += 1
            self._record(
                kind,
                f"{message.msg_type} p{message.sender}->p{message.destination} "
                f"+{extra:.3f}ms",
            )
        return extra

    def _do_crash(self, cluster: "Cluster", process_id: int) -> None:
        self.stats.crashes += 1
        self._record("crash", f"p{process_id}", process=process_id)
        cluster.crash_process(process_id)

    def _do_recover(self, cluster: "Cluster", process_id: int) -> None:
        self.stats.recoveries += 1
        self._record("recovery", f"p{process_id}", process=process_id)
        cluster.recover_process(process_id)

    def _record(self, kind: str, detail: str, process: Optional[int] = None) -> None:
        if self._trace:
            self.events.append(FaultEvent(self.sim.now, kind, detail, process=process))

    def __repr__(self) -> str:
        return f"FaultInjector(load={self.load.label()!r}, stats={self.stats})"
