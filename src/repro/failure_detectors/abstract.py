"""The abstract, QoS-driven failure detector of §3.4.

Instead of modeling the heartbeat mechanism and its messages, the paper's
SAN model represents each failure-detector module (q monitoring p) as a
two-state process alternating between "q trusts p" and "q suspects p".
The sojourn times are chosen so that the model exhibits the same *mean*
mistake duration ``T_M`` and mistake recurrence time ``T_MR`` as the real
detector; the paper uses either deterministic or exponential sojourn-time
distributions to bracket the variance (§3.4), and draws the *initial* state
with the steady-state probabilities.

The same abstraction is useful on the testbed simulator (it lets class-3
latencies be simulated without heartbeat traffic), so it is provided here as
a protocol layer; the SAN version is built in
:mod:`repro.sanmodels.fd_model`.
"""

from __future__ import annotations

from typing import Literal, Optional

from repro.des.simulator import Simulator
from repro.failure_detectors.base import FailureDetectorLayer
from repro.failure_detectors.history import FailureDetectorHistory
from repro.stats.distributions import Constant, Distribution, Exponential

TransitionKind = Literal["deterministic", "exponential"]


def _sojourn_distribution(kind: TransitionKind, mean: float) -> Distribution:
    if kind == "deterministic":
        return Constant(mean)
    if kind == "exponential":
        return Exponential(mean)
    raise ValueError(f"unknown transition distribution kind: {kind!r}")


class QoSDrivenFailureDetector(FailureDetectorLayer):
    """A two-state failure detector driven by mean ``T_M`` and ``T_MR``.

    For every monitored process the module alternates between *trust*
    (mean sojourn ``T_MR - T_M``, so that mistakes recur every ``T_MR``)
    and *suspect* (mean sojourn ``T_M``).  Modules are mutually independent,
    which is exactly the simplifying assumption the paper makes -- and later
    identifies as the main limitation of its model (§5.4).

    Parameters
    ----------
    sim:
        The owning simulator.
    mistake_recurrence_time:
        Mean time between the starts of two consecutive wrong suspicions.
    mistake_duration:
        Mean duration of a wrong suspicion.  Must be smaller than the
        recurrence time.
    kind:
        ``"deterministic"`` (zero variance) or ``"exponential"`` (high
        variance) sojourn times, the two cases studied in the paper.
    crashed:
        Processes that are actually crashed: they are suspected permanently
        from the start (completeness), and no mistake process is run for
        them.
    history:
        Optional history receiving the generated transitions.
    """

    def __init__(
        self,
        sim: Simulator,
        mistake_recurrence_time: float,
        mistake_duration: float,
        kind: TransitionKind = "exponential",
        crashed: Optional[set[int]] = None,
        history: Optional[FailureDetectorHistory] = None,
        name: str = "qos-fd",
    ) -> None:
        super().__init__(sim, name)
        if mistake_duration < 0:
            raise ValueError("mistake_duration must be >= 0")
        if mistake_recurrence_time <= mistake_duration:
            raise ValueError(
                "mistake_recurrence_time must exceed mistake_duration "
                f"({mistake_recurrence_time} <= {mistake_duration})"
            )
        self.mistake_recurrence_time = float(mistake_recurrence_time)
        self.mistake_duration = float(mistake_duration)
        self.kind = kind
        self.crashed = set(crashed or ())
        self.history = history
        trust_mean = self.mistake_recurrence_time - self.mistake_duration
        self._trust_sojourn = _sojourn_distribution(kind, trust_mean)
        self._suspect_sojourn = (
            _sojourn_distribution(kind, self.mistake_duration)
            if self.mistake_duration > 0
            else None
        )
        self._rng = sim.random.stream(f"{name}.sojourns")

    # ------------------------------------------------------------------
    @property
    def suspicion_probability(self) -> float:
        """Steady-state probability of being in the *suspect* state."""
        return self.mistake_duration / self.mistake_recurrence_time

    def start(self) -> None:
        """Install permanent suspicions for crashed processes and start the
        alternation for the correct ones (initial state drawn at random)."""
        for peer in range(self.n_processes):
            if peer == self.process_id:
                continue
            if peer in self.crashed:
                self._transition(peer, suspected=True)
                continue
            if self._suspect_sojourn is None:
                self._schedule_transition(peer, to_suspected=True)
                continue
            if self._rng.random() < self.suspicion_probability:
                self._transition(peer, suspected=True)
                self._schedule_transition(peer, to_suspected=False)
            else:
                self._schedule_transition(peer, to_suspected=True)

    # ------------------------------------------------------------------
    def _schedule_transition(self, peer: int, to_suspected: bool) -> None:
        if to_suspected:
            delay = self._trust_sojourn.sample(self._rng)
        else:
            assert self._suspect_sojourn is not None
            delay = self._suspect_sojourn.sample(self._rng)
        self.set_timer(f"fd:{peer}", delay, self._fire_transition, peer, to_suspected)

    def _fire_transition(self, peer: int, to_suspected: bool) -> None:
        if self.process is not None and self.process.crashed:
            return
        self._transition(peer, suspected=to_suspected)
        if self._suspect_sojourn is None and to_suspected:
            # Mistakes of zero duration: immediately revert to trust.
            self._transition(peer, suspected=False)
            self._schedule_transition(peer, to_suspected=True)
            return
        self._schedule_transition(peer, to_suspected=not to_suspected)

    def _transition(self, peer: int, suspected: bool) -> None:
        changed = self._set_suspected(peer, suspected)
        if changed and self.history is not None:
            self.history.record(
                monitor=self.process_id,
                monitored=peer,
                time=self.sim.now,
                suspected=suspected,
            )
