"""Failure-detector histories.

The QoS parameters of a failure detector are estimated "from its history
during the experiment, i.e., from the state transitions trust-to-suspect and
suspect-to-trust, and the time when these transitions occur" (§4).  A
:class:`FailureDetectorHistory` records exactly those transitions for every
(monitor, monitored) pair, over the full duration of the experiment
(which spans many consensus executions, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Transition:
    """One trust/suspect transition of a failure-detector module."""

    monitor: int
    monitored: int
    time: float
    suspected: bool  # True = trust->suspect, False = suspect->trust


class FailureDetectorHistory:
    """Trust/suspect transition log for all (monitor, monitored) pairs."""

    def __init__(self) -> None:
        self._transitions: List[Transition] = []
        self._current: Dict[Tuple[int, int], bool] = {}

    # ------------------------------------------------------------------
    def record(self, monitor: int, monitored: int, time: float, suspected: bool) -> None:
        """Record a transition (ignored if the state did not actually change)."""
        key = (monitor, monitored)
        if self._current.get(key, False) == suspected:
            return
        self._current[key] = suspected
        self._transitions.append(
            Transition(monitor=monitor, monitored=monitored, time=time, suspected=suspected)
        )

    # ------------------------------------------------------------------
    @property
    def transitions(self) -> List[Transition]:
        """All recorded transitions, in time order."""
        return list(self._transitions)

    def __len__(self) -> int:
        return len(self._transitions)

    def pairs(self) -> List[Tuple[int, int]]:
        """All (monitor, monitored) pairs that ever had a transition."""
        return sorted({(t.monitor, t.monitored) for t in self._transitions})

    def pair_transitions(self, monitor: int, monitored: int) -> List[Transition]:
        """Transitions of one specific failure-detector module."""
        return [
            t
            for t in self._transitions
            if t.monitor == monitor and t.monitored == monitored
        ]

    # ------------------------------------------------------------------
    def suspicion_intervals(
        self, monitor: int, monitored: int, end_time: float
    ) -> List[Tuple[float, float]]:
        """The closed intervals during which ``monitor`` suspected ``monitored``.

        An interval still open at ``end_time`` is truncated there.
        """
        intervals: List[Tuple[float, float]] = []
        start: float | None = None
        for transition in self.pair_transitions(monitor, monitored):
            if transition.suspected and start is None:
                start = transition.time
            elif not transition.suspected and start is not None:
                intervals.append((start, transition.time))
                start = None
        if start is not None:
            intervals.append((start, end_time))
        return intervals

    def time_suspected(self, monitor: int, monitored: int, end_time: float) -> float:
        """Total time ``monitor`` spent suspecting ``monitored`` up to ``end_time``."""
        return sum(
            end - start
            for start, end in self.suspicion_intervals(monitor, monitored, end_time)
        )

    def transition_counts(self, monitor: int, monitored: int) -> Tuple[int, int]:
        """``(n_trust_to_suspect, n_suspect_to_trust)`` for one pair."""
        pair = self.pair_transitions(monitor, monitored)
        n_ts = sum(1 for t in pair if t.suspected)
        n_st = sum(1 for t in pair if not t.suspected)
        return n_ts, n_st
