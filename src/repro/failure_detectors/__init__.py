"""Failure detectors.

The consensus algorithm of the paper relies on unreliable failure detectors
of class ◇S (§2.1).  This package provides:

* :class:`~repro.failure_detectors.base.FailureDetectorLayer` -- the
  interface the consensus layer consumes (suspicion queries + listeners).
* :class:`~repro.failure_detectors.static.StaticFailureDetector` -- a
  complete and accurate detector suspecting exactly a fixed crash set; this
  is the detector implied by the paper's class-1 and class-2 runs (§2.4).
* :class:`~repro.failure_detectors.heartbeat.HeartbeatFailureDetector` --
  the push-style heartbeat detector of §2.2 (heartbeat period ``Th``,
  timeout ``T``), whose wrong suspicions drive the class-3 runs.
* :class:`~repro.failure_detectors.history.FailureDetectorHistory` -- the
  record of trust/suspect transitions from which QoS metrics are estimated.
* :mod:`~repro.failure_detectors.qos` -- the Chen-Toueg-Aguilera QoS metrics
  (detection time ``T_D``, mistake recurrence time ``T_MR``, mistake
  duration ``T_M``) estimated exactly as in §4 of the paper.
* :class:`~repro.failure_detectors.abstract.QoSDrivenFailureDetector` -- the
  abstract two-state detector driven by ``T_M``/``T_MR`` that the SAN model
  uses (§3.4), also usable directly on the simulated cluster.
"""

from repro.failure_detectors.abstract import QoSDrivenFailureDetector
from repro.failure_detectors.base import FailureDetectorLayer, SuspicionListener
from repro.failure_detectors.heartbeat import HeartbeatFailureDetector
from repro.failure_detectors.history import FailureDetectorHistory, Transition
from repro.failure_detectors.qos import PairQoS, QoSEstimate, estimate_qos
from repro.failure_detectors.static import StaticFailureDetector

__all__ = [
    "FailureDetectorHistory",
    "FailureDetectorLayer",
    "HeartbeatFailureDetector",
    "PairQoS",
    "QoSDrivenFailureDetector",
    "QoSEstimate",
    "StaticFailureDetector",
    "SuspicionListener",
    "Transition",
    "estimate_qos",
]
