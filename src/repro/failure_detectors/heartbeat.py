"""The push-style heartbeat failure detector of §2.2.

Each process periodically (every ``Th``) sends a heartbeat message to all
other processes.  Process ``p`` starts suspecting process ``q`` if it has
not received *any* message from ``q`` (heartbeat or application message)
for longer than the timeout ``T``; it stops suspecting ``q`` upon reception
of any message from ``q``, and the reception of any message from ``q``
resets the timeout timer (Figure 1 of the paper).

The detector is written as a protocol layer: it observes every message that
travels up the stack (so application messages reset the timers exactly as
in the paper), injects heartbeat messages below the consensus layer and
consumes incoming heartbeats (they are not passed further up).

Heartbeat emission is subject to the host's operating-system timer
behaviour (:class:`repro.cluster.host.OSScheduler`): a nominal period of
``Th`` is stretched by the timer granularity, wake-up jitter and occasional
preemption.  These imperfections -- together with network contention -- are
what produce *wrong* suspicions, the subject of the paper's class-3 runs.
"""

from __future__ import annotations

from typing import Optional

from repro.des.simulator import Simulator
from repro.cluster.message import BROADCAST, Message
from repro.cluster.neko import ProtocolLayer
from repro.failure_detectors.base import FailureDetectorLayer
from repro.failure_detectors.history import FailureDetectorHistory

#: Message type tag of heartbeat messages.
HEARTBEAT = "heartbeat"


class HeartbeatFailureDetector(FailureDetectorLayer):
    """Heartbeat failure detector with timeout ``T`` and period ``Th``.

    Parameters
    ----------
    sim:
        The owning simulator.
    timeout_ms:
        The suspicion timeout ``T``.
    heartbeat_period_ms:
        The heartbeat period ``Th``.  The paper fixes ``Th = 0.7 * T`` in its
        class-3 experiments (§5.4); pass ``None`` to use that default.
    history:
        Optional shared :class:`FailureDetectorHistory` receiving every
        trust/suspect transition (one history is shared by all processes of
        an experiment, as the QoS metrics are computed over all pairs).
    heartbeat_size_bytes:
        Wire size of a heartbeat message.
    """

    def __init__(
        self,
        sim: Simulator,
        timeout_ms: float,
        heartbeat_period_ms: Optional[float] = None,
        history: Optional[FailureDetectorHistory] = None,
        heartbeat_size_bytes: int = 60,
        name: str = "heartbeat-fd",
    ) -> None:
        super().__init__(sim, name)
        if timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {timeout_ms}")
        self.timeout_ms = float(timeout_ms)
        self.heartbeat_period_ms = (
            float(heartbeat_period_ms)
            if heartbeat_period_ms is not None
            else 0.7 * self.timeout_ms
        )
        if self.heartbeat_period_ms <= 0:
            raise ValueError("heartbeat_period_ms must be > 0")
        self.history = history
        self.heartbeat_size_bytes = heartbeat_size_bytes
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self._running = False
        self._emit_epoch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the heartbeat emission loop and the per-peer timeout timers.

        Starting bumps the emission epoch: a sleep scheduled by a previous
        life of this layer (e.g. before a crash, with the recovery arriving
        within one heartbeat period) carries a stale epoch and dies instead
        of resuming a second emission loop.
        """
        self._running = True
        self._emit_epoch += 1
        self._schedule_next_heartbeat()
        for peer in self._peers():
            self._arm_timeout(peer)

    def stop(self) -> None:
        """Stop emitting heartbeats and cancel all timers."""
        self._running = False
        super().stop()

    def _peers(self) -> list[int]:
        return [pid for pid in range(self.n_processes) if pid != self.process_id]

    # ------------------------------------------------------------------
    # Heartbeat emission
    # ------------------------------------------------------------------
    def _schedule_next_heartbeat(self) -> None:
        if not self._running or self.process is None or self.process.crashed:
            return
        self.process.host.sleep(
            self.heartbeat_period_ms, self._emit_heartbeat, self._emit_epoch
        )

    def _emit_heartbeat(self, epoch: int) -> None:
        if epoch != self._emit_epoch:
            return  # stale wake-up from before a stop/crash + restart
        if not self._running or self.process is None or self.process.crashed:
            return
        message = Message(
            sender=self.process_id,
            destination=BROADCAST,
            msg_type=HEARTBEAT,
            size_bytes=self.heartbeat_size_bytes,
        )
        self.heartbeats_sent += 1
        self.send_down(message)
        self._schedule_next_heartbeat()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def on_deliver(self, message: Message) -> None:
        """Reset the sender's timer; consume heartbeats, forward the rest."""
        sender = message.sender
        if sender != self.process_id:
            self._message_received_from(sender)
        if message.msg_type == HEARTBEAT:
            self.heartbeats_received += 1
            return
        self.deliver_up(message)

    def _message_received_from(self, sender: int) -> None:
        if self.is_suspected(sender):
            self._record_transition(sender, suspected=False)
            self._set_suspected(sender, False)
        self._arm_timeout(sender)

    # ------------------------------------------------------------------
    # Timeout handling
    # ------------------------------------------------------------------
    def _arm_timeout(self, peer: int) -> None:
        self.set_timer(f"timeout:{peer}", self.timeout_ms, self._timeout_expired, peer)

    def _timeout_expired(self, peer: int) -> None:
        if not self._running or (self.process is not None and self.process.crashed):
            return
        if not self.is_suspected(peer):
            self._record_transition(peer, suspected=True)
            self._set_suspected(peer, True)
        # The peer stays suspected until a message from it arrives; no new
        # timer is needed (reception re-arms it).

    # ------------------------------------------------------------------
    def _record_transition(self, peer: int, suspected: bool) -> None:
        if self.history is not None:
            self.history.record(
                monitor=self.process_id,
                monitored=peer,
                time=self.sim.now,
                suspected=suspected,
            )
