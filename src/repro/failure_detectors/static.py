"""A complete and accurate failure detector.

The paper's class-1 runs assume failure detectors that never suspect anyone,
and its class-2 runs assume detectors that suspect the initially crashed
process forever and never suspect correct processes (§2.4).  Both are
instances of this static detector, configured with the set of crashed
processes known a priori.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.des.simulator import Simulator
from repro.failure_detectors.base import FailureDetectorLayer


class StaticFailureDetector(FailureDetectorLayer):
    """Suspects exactly a fixed set of processes, forever.

    Parameters
    ----------
    sim:
        The owning simulator.
    crashed:
        Processes suspected from the start (e.g. ``{0}`` when the first
        coordinator is initially crashed).  An empty set yields the
        class-1 "accurate, never suspects" detector.
    """

    def __init__(
        self, sim: Simulator, crashed: Optional[Iterable[int]] = None, name: str = "static-fd"
    ) -> None:
        super().__init__(sim, name)
        self._initial_crashed = set(crashed or ())

    def start(self) -> None:
        """Install the initial (and permanent) suspicions."""
        for process_id in sorted(self._initial_crashed):
            self._set_suspected(process_id, True)
