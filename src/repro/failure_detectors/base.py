"""The failure-detector interface consumed by the consensus algorithm.

Each process has a local failure detector module maintaining a list of
processes currently suspected to have crashed (§2.1).  The consensus layer
needs two things from it: a synchronous query ("is the coordinator currently
suspected?") and an asynchronous notification ("the coordinator just became
suspected while I was waiting for its proposal").  Both are provided here.
"""

from __future__ import annotations

from typing import Callable, List, Set

from repro.des.simulator import Simulator
from repro.cluster.neko import ProtocolLayer

#: Callback invoked as ``listener(monitored_pid, suspected)`` whenever the
#: suspicion status of ``monitored_pid`` changes.
SuspicionListener = Callable[[int, bool], None]


class FailureDetectorLayer(ProtocolLayer):
    """Base class for failure-detector protocol layers.

    Concrete detectors update :attr:`_suspected` through
    :meth:`_set_suspected`, which notifies listeners exactly once per
    status change.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._suspected: Set[int] = set()
        self._listeners: List[SuspicionListener] = []

    # ------------------------------------------------------------------
    # Query interface (used by the consensus algorithm)
    # ------------------------------------------------------------------
    def is_suspected(self, process_id: int) -> bool:
        """``True`` if ``process_id`` is currently suspected by this module."""
        return process_id in self._suspected

    def suspected_processes(self) -> Set[int]:
        """The set of currently suspected processes (a copy)."""
        return set(self._suspected)

    def add_listener(self, listener: SuspicionListener) -> None:
        """Register a callback for suspicion-status changes (idempotent).

        Layers re-register on every ``start()`` -- including restarts after
        a crash-recovery fault -- so double registration must not double
        the callbacks.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: SuspicionListener) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # For subclasses
    # ------------------------------------------------------------------
    def _set_suspected(self, process_id: int, suspected: bool) -> bool:
        """Update the suspicion status; returns ``True`` if it changed."""
        currently = process_id in self._suspected
        if suspected == currently:
            return False
        if suspected:
            self._suspected.add(process_id)
        else:
            self._suspected.discard(process_id)
        for listener in list(self._listeners):
            listener(process_id, suspected)
        return True
