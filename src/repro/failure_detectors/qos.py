"""Quality-of-service metrics of failure detectors (Chen, Toueg, Aguilera).

The paper abstracts the failure detector in its SAN model by the QoS metrics
of [15] (§3.4):

* **Detection time** ``T_D``: time from a crash until the crashed process is
  suspected permanently.
* **Mistake recurrence time** ``T_MR``: time between two consecutive wrong
  suspicions of a correct process.
* **Mistake duration** ``T_M``: time a wrong suspicion lasts.

For runs without crashes the paper estimates the *mean* of ``T_MR`` and
``T_M`` for each ordered pair (p, q) from the FD history over the full
experiment duration ``T_exp`` using the two equations of §4::

    T_M / T_MR = T_S / T_exp          (fraction of time spent suspecting)
    T_exp      = (n_TS + n_ST) / 2 * T_MR

where ``T_S`` is the total time spent suspecting, ``n_TS`` the number of
trust->suspect transitions and ``n_ST`` the number of suspect->trust
transitions.  The overall metrics are the averages of the per-pair values.
This module implements exactly that estimator, plus a direct interval-based
estimator used for cross-checking in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.failure_detectors.history import FailureDetectorHistory

#: Crashed processes: either a bare collection (crash time taken as t=0,
#: the common "initially crashed" scenarios) or a ``{process: crash_time}``
#: mapping giving the actual crash instant of each process.
CrashSpec = Union[Iterable[int], Mapping[int, float]]


def _normalize_crashed(crashed: Optional[CrashSpec]) -> Dict[int, float]:
    """``{process: crash_time}`` from either a set/sequence or a mapping."""
    if crashed is None:
        return {}
    if isinstance(crashed, Mapping):
        return {int(process): float(time) for process, time in crashed.items()}
    return {int(process): 0.0 for process in crashed}


@dataclass(frozen=True)
class PairQoS:
    """QoS estimates for one (monitor, monitored) pair."""

    monitor: int
    monitored: int
    mistake_recurrence_time: float
    mistake_duration: float
    n_trust_to_suspect: int
    n_suspect_to_trust: int
    time_suspected: float


@dataclass(frozen=True)
class QoSEstimate:
    """QoS estimates averaged over all monitored pairs (as in the paper)."""

    mistake_recurrence_time: float
    mistake_duration: float
    detection_time: float
    pairs: Tuple[PairQoS, ...]
    experiment_duration: float

    @property
    def suspicion_fraction(self) -> float:
        """Average fraction of time spent (wrongly) suspecting: T_M / T_MR."""
        if math.isinf(self.mistake_recurrence_time):
            return 0.0
        if self.mistake_recurrence_time <= 0:
            return 1.0
        return min(1.0, self.mistake_duration / self.mistake_recurrence_time)


def estimate_pair_qos(
    history: FailureDetectorHistory,
    monitor: int,
    monitored: int,
    experiment_duration: float,
) -> PairQoS:
    """Estimate ``T_MR`` and ``T_M`` for one pair using the paper's equations.

    A pair with no recorded transitions has an infinite mistake recurrence
    time and a zero mistake duration (the detector never made a mistake).
    """
    if experiment_duration <= 0:
        raise ValueError("experiment_duration must be > 0")
    n_ts, n_st = history.transition_counts(monitor, monitored)
    time_suspected = history.time_suspected(monitor, monitored, experiment_duration)
    transitions = n_ts + n_st
    if transitions == 0:
        return PairQoS(
            monitor=monitor,
            monitored=monitored,
            mistake_recurrence_time=math.inf,
            mistake_duration=0.0,
            n_trust_to_suspect=0,
            n_suspect_to_trust=0,
            time_suspected=0.0,
        )
    # T_exp = (n_TS + n_ST) / 2 * T_MR   =>   T_MR = 2 * T_exp / (n_TS + n_ST)
    mistake_recurrence = 2.0 * experiment_duration / transitions
    # T_M / T_MR = T_S / T_exp           =>   T_M = T_MR * T_S / T_exp
    mistake_duration = mistake_recurrence * time_suspected / experiment_duration
    return PairQoS(
        monitor=monitor,
        monitored=monitored,
        mistake_recurrence_time=mistake_recurrence,
        mistake_duration=mistake_duration,
        n_trust_to_suspect=n_ts,
        n_suspect_to_trust=n_st,
        time_suspected=time_suspected,
    )


def estimate_qos(
    history: FailureDetectorHistory,
    n_processes: int,
    experiment_duration: float,
    crashed: Optional[CrashSpec] = None,
) -> QoSEstimate:
    """Estimate the overall QoS metrics of an experiment.

    Parameters
    ----------
    history:
        The shared transition history of all failure-detector modules.
    n_processes:
        Number of processes; all ordered pairs (monitor, monitored) with
        both processes correct contribute to ``T_MR``/``T_M``.
    experiment_duration:
        Total duration ``T_exp`` of the experiment (spanning every consensus
        execution, as in §4).
    crashed:
        Processes that actually crashed: a set (crash at t=0) or a
        ``{process: crash_time}`` mapping.  Pairs whose monitored process
        crashed contribute to the detection time ``T_D`` -- measured from
        the process's crash instant -- instead of to the mistake metrics.
    """
    crash_times = _normalize_crashed(crashed)
    pair_estimates: List[PairQoS] = []
    detection_times: List[float] = []
    for monitor in range(n_processes):
        if monitor in crash_times:
            continue
        for monitored in range(n_processes):
            if monitored == monitor:
                continue
            if monitored in crash_times:
                detection = _detection_time(
                    history, monitor, monitored, crash_times[monitored]
                )
                if detection is not None:
                    detection_times.append(detection)
                continue
            pair_estimates.append(
                estimate_pair_qos(history, monitor, monitored, experiment_duration)
            )

    finite_tmr = [
        p.mistake_recurrence_time
        for p in pair_estimates
        if not math.isinf(p.mistake_recurrence_time)
    ]
    mistake_recurrence = (
        sum(finite_tmr) / len(finite_tmr) if finite_tmr else math.inf
    )
    durations = [
        p.mistake_duration
        for p in pair_estimates
        if not math.isinf(p.mistake_recurrence_time)
    ]
    mistake_duration = sum(durations) / len(durations) if durations else 0.0
    detection_time = (
        sum(detection_times) / len(detection_times) if detection_times else math.nan
    )
    return QoSEstimate(
        mistake_recurrence_time=mistake_recurrence,
        mistake_duration=mistake_duration,
        detection_time=detection_time,
        pairs=tuple(pair_estimates),
        experiment_duration=experiment_duration,
    )


def estimate_qos_from_intervals(
    history: FailureDetectorHistory,
    n_processes: int,
    experiment_duration: float,
    crashed: Optional[CrashSpec] = None,
) -> Dict[str, float]:
    """Direct estimator: average gap between suspicion starts and average
    suspicion length, computed from the explicit intervals.

    This is a cross-check for :func:`estimate_qos`; the two agree when the
    experiment is long compared with the mistake recurrence time.  It
    accepts the same ``crashed`` argument: pairs involving a crashed
    process describe detection, not mistakes, so they are excluded from
    the mistake metrics exactly as :func:`estimate_qos` excludes them.
    """
    crash_times = _normalize_crashed(crashed)
    recurrence_gaps: List[float] = []
    durations: List[float] = []
    for monitor in range(n_processes):
        if monitor in crash_times:
            continue
        for monitored in range(n_processes):
            if monitor == monitored or monitored in crash_times:
                continue
            intervals = history.suspicion_intervals(
                monitor, monitored, experiment_duration
            )
            durations.extend(end - start for start, end in intervals)
            starts = [start for start, _ in intervals]
            recurrence_gaps.extend(
                later - earlier for earlier, later in zip(starts, starts[1:], strict=False)
            )
    return {
        "mistake_recurrence_time": (
            sum(recurrence_gaps) / len(recurrence_gaps) if recurrence_gaps else math.inf
        ),
        "mistake_duration": sum(durations) / len(durations) if durations else 0.0,
    }


def _detection_time(
    history: FailureDetectorHistory,
    monitor: int,
    monitored: int,
    crash_time: float = 0.0,
) -> Optional[float]:
    """Detection time ``T_D``: from the crash instant until the crashed
    process is suspected permanently.

    The permanent suspicion is the last trust->suspect transition of the
    pair; transitions strictly before the crash are wrong suspicions of a
    then-correct process and cannot constitute detection.  A monitor that
    already (wrongly) suspected the process when it crashed, and never
    trusted it again, detected the crash instantaneously (``T_D = 0``).
    """
    transitions = history.pair_transitions(monitor, monitored)
    if not transitions:
        return None
    last = transitions[-1]
    if not last.suspected:
        return None  # the monitor trusts the process again: not detected
    if last.time <= crash_time:
        # Suspected since before the crash and never trusted again.
        return 0.0
    return last.time - crash_time
