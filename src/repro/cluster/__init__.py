"""Simulated PC-cluster testbed.

The paper's "measurement" half ran on a cluster of 12 PCs (Pentium III,
128 MB RAM, 100 Base-TX Ethernet hub, Linux 2.2, Java on the Neko
framework, TCP) -- hardware we do not have.  This package substitutes a
discrete-event *testbed simulator* that reproduces the performance-relevant
behaviour of that environment:

* **Hosts** with a CPU resource that every sent and received message must
  occupy (network controller + communication-layer processing, §3.3), a
  drifting clock synchronised NTP-style to within tens of microseconds
  (§4), and operating-system scheduling effects (the 10 ms Linux scheduling
  quantum the paper blames for the peak around T = 10 ms in Fig. 9a).
* A **shared Ethernet hub**: a single transmission resource used by one
  frame at a time, so concurrent senders queue -- the contention the paper
  insists real models must capture (§1, §3.3).
* A **TCP-like transport** providing reliable, ordered, connection-oriented
  unicast with per-message protocol-stack latency.
* A **Neko-like process/protocol-layer framework** on which the consensus
  algorithm and the heartbeat failure detector run unchanged
  (:mod:`repro.cluster.neko`).
* **Message tracing** to measure end-to-end delays (Figure 6) and consensus
  latencies (Figures 7, 9; Table 1).
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig, NetworkParameters, SchedulerParameters
from repro.cluster.clock import HostClock
from repro.cluster.ethernet import EthernetHub
from repro.cluster.host import Host
from repro.cluster.message import BROADCAST, Message
from repro.cluster.neko import NekoProcess, ProtocolLayer
from repro.cluster.tracing import MessageTrace, TraceRecord
from repro.cluster.transport import Transport

__all__ = [
    "BROADCAST",
    "Cluster",
    "ClusterConfig",
    "EthernetHub",
    "Host",
    "HostClock",
    "Message",
    "MessageTrace",
    "NekoProcess",
    "NetworkParameters",
    "ProtocolLayer",
    "SchedulerParameters",
    "TraceRecord",
    "Transport",
]
