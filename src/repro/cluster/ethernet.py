"""The shared Ethernet hub.

The paper's cluster is interconnected by a *simplex 100 Base-TX Ethernet
hub* (§2.5): a repeater, not a switch, so the medium is a single collision
domain and only one frame can be in flight at a time.  The network model of
§3.3 captures this with a single shared "network" resource; the testbed
simulator does the same with a capacity-1 FIFO resource plus a per-frame
transmission time derived from the frame size and the raw bandwidth.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des.resource import Resource
from repro.des.simulator import Simulator
from repro.cluster.config import NetworkParameters
from repro.cluster.message import Message


class EthernetHub:
    """A single-collision-domain Ethernet segment.

    Parameters
    ----------
    sim:
        The owning simulator.
    params:
        Bandwidth, frame overhead and hub latency.
    wire_time_hook:
        Optional hook ``(message, now_ms) -> extra_ms`` lengthening a
        frame's occupancy of the shared medium -- the fault-injection point
        for congestion-style delay spikes, which delay everything queued
        behind the affected frame.
    """

    def __init__(
        self,
        sim: Simulator,
        params: NetworkParameters,
        wire_time_hook: Optional[Callable[[Message, float], float]] = None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.wire_time_hook = wire_time_hook
        self.medium = Resource(sim, "ethernet.medium", capacity=1)
        self.frames_transmitted = 0
        self.bytes_transmitted = 0

    # ------------------------------------------------------------------
    def transmit(self, message: Message, on_done: Callable[[Message], None]) -> None:
        """Queue ``message`` for transmission on the shared medium.

        ``on_done`` is called once the frame has fully left the wire (hub
        latency included); the receiving host's processing is *not* part of
        this stage.
        """
        wire_time = self.frame_time(message.size_bytes) + self.params.hub_latency_ms
        if self.wire_time_hook is not None:
            wire_time += max(0.0, float(self.wire_time_hook(message, self.sim.now)))
        self.medium.request(
            wire_time,
            self._transmitted,
            message,
            on_done,
            label=f"frame:{message.msg_type}:{message.msg_id}",
        )

    def frame_time(self, payload_bytes: int) -> float:
        """Time (ms) a frame with the given payload occupies the medium."""
        return self.params.frame_time_ms(payload_bytes)

    # ------------------------------------------------------------------
    @property
    def utilization_time(self) -> float:
        """Total busy time of the medium so far."""
        return self.medium.stats.busy_time

    @property
    def queue_length(self) -> int:
        """Frames currently waiting for the medium."""
        return self.medium.queue_length

    def _transmitted(self, message: Message, on_done: Callable[[Message], None]) -> None:
        self.frames_transmitted += 1
        self.bytes_transmitted += message.size_bytes
        message.transmitted_at = self.sim.now
        on_done(message)

    def __repr__(self) -> str:
        return (
            f"EthernetHub(frames={self.frames_transmitted}, "
            f"queued={self.queue_length})"
        )
