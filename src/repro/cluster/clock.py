"""Host clocks.

The paper measures sub-millisecond latencies, which required a 1 µs native
clock and NTP synchronisation of the hosts to within ±50 µs (§4).  The
simulated cluster reproduces both imperfections: each host's clock has a
constant offset drawn within the synchronisation precision, a small constant
drift, and a finite reading resolution.  Measurements performed by the
experiment harness read *local* clocks, exactly as the real measurements
did, so the same measurement error enters the results.
"""

from __future__ import annotations

import math

import numpy as np


class HostClock:
    """The local clock of one host.

    Parameters
    ----------
    offset_ms:
        Constant offset of the local clock with respect to global simulated
        time (positive means the local clock is ahead).
    drift_ppm:
        Constant relative drift in parts per million.
    resolution_ms:
        Reading granularity; local readings are rounded down to a multiple
        of this value.
    """

    def __init__(
        self,
        offset_ms: float = 0.0,
        drift_ppm: float = 0.0,
        resolution_ms: float = 0.001,
    ) -> None:
        if resolution_ms <= 0:
            raise ValueError(f"resolution_ms must be > 0, got {resolution_ms}")
        self.offset_ms = float(offset_ms)
        self.drift_ppm = float(drift_ppm)
        self.resolution_ms = float(resolution_ms)

    # ------------------------------------------------------------------
    def local_time(self, global_time: float) -> float:
        """The local clock reading at global simulated time ``global_time``."""
        drifted = global_time * (1.0 + self.drift_ppm * 1e-6)
        raw = drifted + self.offset_ms
        return math.floor(raw / self.resolution_ms) * self.resolution_ms

    def global_time(self, local_time: float) -> float:
        """Invert :meth:`local_time` (ignoring the reading resolution)."""
        return (local_time - self.offset_ms) / (1.0 + self.drift_ppm * 1e-6)

    # ------------------------------------------------------------------
    @staticmethod
    def synchronized(
        rng: np.random.Generator,
        precision_ms: float,
        drift_ppm: float,
        resolution_ms: float,
    ) -> "HostClock":
        """Draw a clock whose offset lies within ``±precision_ms``.

        This models the residual error left by the NTP daemon after
        synchronisation (§4: ±50 µs).
        """
        offset = float(rng.uniform(-precision_ms, precision_ms))
        drift = float(rng.uniform(-drift_ppm, drift_ppm))
        return HostClock(offset_ms=offset, drift_ppm=drift, resolution_ms=resolution_ms)

    def __repr__(self) -> str:
        return (
            f"HostClock(offset={self.offset_ms * 1000:.1f}us, "
            f"drift={self.drift_ppm:.1f}ppm, resolution={self.resolution_ms}ms)"
        )
