"""Message tracing.

Every message delivered by the transport is recorded here.  The trace is the
raw material of Figure 6 (end-to-end delay distributions of unicast and
broadcast messages) and is also handy when debugging protocol behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.cluster.message import Message
from repro.stats.cdf import EmpiricalCDF


@dataclass(frozen=True)
class TraceRecord:
    """One delivered message, with its timing decomposition."""

    msg_id: int
    parent_id: Optional[int]
    msg_type: str
    sender: int
    destination: int
    size_bytes: int
    submitted_at: float
    delivered_at: float
    injected_duplicate: bool = False

    @property
    def end_to_end_delay(self) -> float:
        """Delivery time minus submission time."""
        return self.delivered_at - self.submitted_at

    @property
    def from_broadcast(self) -> bool:
        """``True`` if this record is one destination of a broadcast."""
        return self.parent_id is not None


class MessageTrace:
    """Accumulates :class:`TraceRecord` entries during a run."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    # ------------------------------------------------------------------
    def record_delivery(self, message: Message) -> None:
        """Record a delivered message (called by the transport)."""
        if message.submitted_at is None or message.delivered_at is None:
            raise ValueError("cannot trace a message without timestamps")
        self._records.append(
            TraceRecord(
                msg_id=message.msg_id,
                parent_id=message.parent_id,
                msg_type=message.msg_type,
                sender=message.sender,
                destination=message.destination,
                size_bytes=message.size_bytes,
                submitted_at=message.submitted_at,
                delivered_at=message.delivered_at,
                injected_duplicate=message.injected_duplicate,
            )
        )

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    # ------------------------------------------------------------------
    @property
    def records(self) -> List[TraceRecord]:
        """All records, in delivery order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def filter(
        self,
        msg_type: Optional[str] = None,
        sender: Optional[int] = None,
        destination: Optional[int] = None,
        broadcast: Optional[bool] = None,
    ) -> List[TraceRecord]:
        """Records matching the given criteria (``None`` means "any")."""
        result = []
        for record in self._records:
            if msg_type is not None and record.msg_type != msg_type:
                continue
            if sender is not None and record.sender != sender:
                continue
            if destination is not None and record.destination != destination:
                continue
            if broadcast is not None and record.from_broadcast != broadcast:
                continue
            result.append(record)
        return result

    # ------------------------------------------------------------------
    def unicast_delays(self, msg_type: Optional[str] = None) -> List[float]:
        """End-to-end delays of messages that were sent as plain unicasts."""
        return [
            record.end_to_end_delay
            for record in self.filter(msg_type=msg_type, broadcast=False)
        ]

    def broadcast_delays_per_destination(
        self, msg_type: Optional[str] = None
    ) -> List[float]:
        """End-to-end delays of each destination copy of broadcast messages."""
        return [
            record.end_to_end_delay
            for record in self.filter(msg_type=msg_type, broadcast=True)
        ]

    def broadcast_delays_averaged(self, msg_type: Optional[str] = None) -> List[float]:
        """Per-broadcast delays averaged over the destinations.

        This is the quantity plotted in Figure 6 ("averaged over the
        destinations"): one value per broadcast message.
        """
        by_parent: Dict[int, List[float]] = {}
        for record in self.filter(msg_type=msg_type, broadcast=True):
            by_parent.setdefault(record.parent_id or -1, []).append(
                record.end_to_end_delay
            )
        return [sum(values) / len(values) for values in by_parent.values()]  # repro: ignore[DET001] keyed in trace-record order, deterministic for a fixed-seed run

    def delay_cdf(self, delays: Iterable[float]) -> EmpiricalCDF:
        """Convenience: the empirical CDF of a list of delays."""
        return EmpiricalCDF(delays)
