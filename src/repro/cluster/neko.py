"""A Neko-like process and protocol-layer framework.

The paper's algorithms were implemented in Java on top of the Neko
development framework (§2.5), in which a distributed algorithm is written
once as a stack of protocol layers and can then be run either on a real
network or in simulation.  This module provides the same abstraction for the
simulated cluster: a :class:`NekoProcess` hosts a stack of
:class:`ProtocolLayer` objects; messages travel *down* the stack when sent
and *up* the stack when delivered by the transport.

The consensus algorithm (:mod:`repro.consensus`) and the heartbeat failure
detector (:mod:`repro.failure_detectors.heartbeat`) are both written as
protocol layers, so they are oblivious to the fact that the "cluster" is
simulated -- mirroring Neko's simulation/execution duality.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.des.process import SimProcess
from repro.des.simulator import Simulator
from repro.cluster.host import Host
from repro.cluster.message import Message
from repro.cluster.transport import Transport


class ProtocolLayer(SimProcess):
    """One layer of a process's protocol stack.

    Subclasses override :meth:`on_send` (a message travelling down from the
    layer above) and :meth:`on_deliver` (a message travelling up from the
    layer below).  The default implementations forward unchanged, so a layer
    only has to intercept what it cares about.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self.process: Optional["NekoProcess"] = None
        self._upper: Optional["ProtocolLayer"] = None
        self._lower: Optional["ProtocolLayer"] = None

    # ------------------------------------------------------------------
    # Wiring (done by NekoProcess)
    # ------------------------------------------------------------------
    def attach(
        self,
        process: "NekoProcess",
        upper: Optional["ProtocolLayer"],
        lower: Optional["ProtocolLayer"],
    ) -> None:
        """Attach this layer to its process and neighbours."""
        self.process = process
        self._upper = upper
        self._lower = lower

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called once when the process starts; override to arm timers etc."""

    def stop(self) -> None:
        """Called when the process shuts down; cancels this layer's timers."""
        self.cancel_all_timers()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send_down(self, message: Message) -> None:
        """Pass ``message`` to the layer below (or to the transport)."""
        if self.process is None:
            raise RuntimeError(f"layer {self.name!r} is not attached to a process")
        if self._lower is not None:
            self._lower.on_send(message)
        else:
            self.process.transport_send(message)

    def deliver_up(self, message: Message) -> None:
        """Pass ``message`` to the layer above (if any)."""
        if self._upper is not None:
            self._upper.on_deliver(message)

    def on_send(self, message: Message) -> None:
        """Handle a message travelling down; default: forward unchanged."""
        self.send_down(message)

    def on_deliver(self, message: Message) -> None:
        """Handle a message travelling up; default: forward unchanged."""
        self.deliver_up(message)

    # ------------------------------------------------------------------
    @property
    def process_id(self) -> int:
        """The id of the owning process."""
        if self.process is None:
            raise RuntimeError(f"layer {self.name!r} is not attached to a process")
        return self.process.process_id

    @property
    def n_processes(self) -> int:
        """Total number of processes in the cluster."""
        if self.process is None:
            raise RuntimeError(f"layer {self.name!r} is not attached to a process")
        return self.process.n_processes


class NekoProcess(SimProcess):
    """A process of the distributed algorithm, running on one host.

    Parameters
    ----------
    sim:
        The owning simulator.
    process_id:
        The process id (0-based; process *i* runs on host *i*).
    host:
        The host this process runs on.
    transport:
        The cluster transport.
    layers:
        Protocol layers ordered **top to bottom** (application first).
    n_processes:
        Total number of processes in the cluster.
    """

    def __init__(
        self,
        sim: Simulator,
        process_id: int,
        host: Host,
        transport: Transport,
        layers: Sequence[ProtocolLayer],
        n_processes: int,
    ) -> None:
        super().__init__(sim, f"process{process_id}")
        if not layers:
            raise ValueError("a NekoProcess needs at least one protocol layer")
        self.process_id = process_id
        self.host = host
        self.transport = transport
        self.n_processes = n_processes
        self.layers: List[ProtocolLayer] = list(layers)
        self._started = False
        self._wire_layers()
        transport.register_receiver(process_id, self._receive_from_transport)

    # ------------------------------------------------------------------
    def _wire_layers(self) -> None:
        for index, layer in enumerate(self.layers):
            upper = self.layers[index - 1] if index > 0 else None
            lower = self.layers[index + 1] if index < len(self.layers) - 1 else None
            layer.attach(self, upper, lower)

    # ------------------------------------------------------------------
    @property
    def top_layer(self) -> ProtocolLayer:
        """The application layer (top of the stack)."""
        return self.layers[0]

    @property
    def bottom_layer(self) -> ProtocolLayer:
        """The lowest layer (closest to the transport)."""
        return self.layers[-1]

    @property
    def crashed(self) -> bool:
        """``True`` if the underlying host has crashed."""
        return self.host.crashed

    def layer(self, layer_type: type) -> ProtocolLayer:
        """The first layer of the given type (raises if absent)."""
        for candidate in self.layers:
            if isinstance(candidate, layer_type):
                return candidate
        raise KeyError(f"process {self.process_id} has no layer of type {layer_type!r}")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every layer (bottom-up).  Crashed processes do not start."""
        if self._started:
            return
        self._started = True
        if self.crashed:
            return
        for layer in reversed(self.layers):
            layer.start()

    def stop(self) -> None:
        """Stop every layer (top-down)."""
        for layer in self.layers:
            layer.stop()
        self._started = False

    def crash(self) -> None:
        """Crash the process (and its host).

        Layers are stopped, not just stripped of their named timers:
        ``stop()`` also clears layer-internal running flags, so a callback
        scheduled directly on the simulator before the crash (e.g. a
        heartbeat emission sleeping in the OS scheduler) finds its layer
        stopped and does not resume a second loop after a quick recovery.
        """
        self.host.crash()
        for layer in self.layers:
            layer.stop()

    def recover(self) -> None:
        """Recover a crashed process: restart its layers (crash-recovery).

        The layers lost all timers at crash time, so restarting them
        bottom-up re-arms heartbeats and other periodic behaviour; the
        transport delivers messages to this process again as soon as the
        host is up.
        """
        if not self.host.crashed:
            return
        self.host.recover()
        if self._started:
            for layer in reversed(self.layers):
                layer.start()

    # ------------------------------------------------------------------
    def transport_send(self, message: Message) -> None:
        """Hand a message to the cluster transport (called by the bottom layer)."""
        if self.crashed:
            return
        self.transport.send(message)

    def _receive_from_transport(self, message: Message) -> None:
        if self.crashed:
            return
        self.bottom_layer.on_deliver(message)

    # ------------------------------------------------------------------
    def local_time(self) -> float:
        """Current local clock reading of this process's host."""
        return self.host.local_time()

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else ("started" if self._started else "idle")
        return f"NekoProcess(id={self.process_id}, {state}, layers={len(self.layers)})"
