"""Messages exchanged between processes of the simulated cluster.

A message records everything the tracing and measurement machinery needs:
sender, destination, type, payload, wire size and the timestamps of its
journey through the send CPU, the hub and the receive CPU (the seven steps
of the paper's Fig. 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Destination value meaning "all other processes".  The transport expands a
#: broadcast into unicasts (as the paper's implementation does, §5.1); the
#: SAN model instead treats it as a single message -- a deliberate modeling
#: difference the paper discusses for the n=3 participant-crash case (§5.3).
BROADCAST = -1

_message_counter = itertools.count()


@dataclass(slots=True)
class Message:
    """A single application or failure-detector message.

    Slotted: the measurement experiments create one instance per unicast
    copy (plus fault-injected duplicates), so the per-instance ``__dict__``
    of a regular class is measurable allocation churn in the figure-6..9
    sweeps.

    Attributes
    ----------
    sender:
        Process id of the sender (0-based).
    destination:
        Process id of the destination, or :data:`BROADCAST`.
    msg_type:
        Short type tag, e.g. ``"estimate"``, ``"propose"``, ``"heartbeat"``.
    payload:
        Arbitrary key/value content (round numbers, proposed values, ...).
    size_bytes:
        Serialized size used to compute wire time.
    msg_id:
        Unique id assigned at construction.
    parent_id:
        For unicast copies created from a broadcast, the id of the original
        broadcast message.
    injected_duplicate:
        ``True`` for extra copies created by fault injection (message
        duplication); such copies keep the original's ``parent_id`` so the
        broadcast statistics stay untouched.
    """

    sender: int
    destination: int
    msg_type: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 100
    msg_id: int = field(default_factory=lambda: next(_message_counter))
    parent_id: Optional[int] = None
    injected_duplicate: bool = False

    # Timestamps stamped by the transport (global simulation time, ms).
    submitted_at: Optional[float] = None
    sent_at: Optional[float] = None
    transmitted_at: Optional[float] = None
    delivered_at: Optional[float] = None

    @property
    def is_broadcast(self) -> bool:
        """``True`` if this message is addressed to all processes."""
        return self.destination == BROADCAST

    def unicast_copy(self, destination: int) -> "Message":
        """A per-destination copy of a broadcast message."""
        return Message(
            sender=self.sender,
            destination=destination,
            msg_type=self.msg_type,
            payload=dict(self.payload),
            size_bytes=self.size_bytes,
            parent_id=self.msg_id,
        )

    def duplicate_copy(self) -> "Message":
        """A fault-injected duplicate: fresh id, same route and lineage."""
        return Message(
            sender=self.sender,
            destination=self.destination,
            msg_type=self.msg_type,
            payload=dict(self.payload),
            size_bytes=self.size_bytes,
            parent_id=self.parent_id,
            injected_duplicate=True,
            submitted_at=self.submitted_at,
        )

    def end_to_end_delay(self) -> Optional[float]:
        """Delivery time minus submission time, if both are known."""
        if self.submitted_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.submitted_at

    def __repr__(self) -> str:
        dest = "ALL" if self.is_broadcast else self.destination
        return (
            f"Message(#{self.msg_id} {self.msg_type} "
            f"p{self.sender}->p{dest} {self.size_bytes}B)"
        )
