"""Hosts of the simulated cluster.

A host bundles the per-machine resources the paper's network model
identifies (§3.3): one CPU resource used by every sent and received message,
a local clock, and operating-system scheduling behaviour affecting timers
(the heartbeat failure detector's sender and timeout threads).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.des.resource import Resource
from repro.des.simulator import Simulator
from repro.cluster.clock import HostClock
from repro.cluster.config import ClusterConfig, SchedulerParameters


class OSScheduler:
    """Timer behaviour of the host operating system.

    The Linux 2.2 kernel of the paper's cluster schedules threads with a
    10 ms basic time unit (§5.4).  A thread sleeping for ``d`` milliseconds
    therefore wakes up after ``d`` rounded up to the timer granularity, plus
    a small dispatch latency, plus -- occasionally, when another thread is
    running -- a further delay of a fraction of the quantum.  This is the
    mechanism behind both the wrong suspicions at small timeouts and the
    measurement artefact around T = 10 ms (Fig. 9a).
    """

    def __init__(self, params: SchedulerParameters, rng: np.random.Generator) -> None:
        self.params = params
        self._rng = rng

    def effective_sleep(self, requested_ms: float) -> float:
        """The actual duration of a nominal sleep of ``requested_ms``."""
        params = self.params
        granularity = params.timer_granularity_ms
        if granularity > 0:
            ticks = np.ceil(requested_ms / granularity)
            base = float(ticks) * granularity
        else:
            base = requested_ms
        jitter = float(self._rng.exponential(params.wakeup_jitter_ms))
        extra = 0.0
        if self._rng.random() < params.preemption_probability:
            extra = float(
                self._rng.uniform(0.0, params.preemption_max_fraction * params.quantum_ms)
            )
        return base + jitter + extra


class Host:
    """One machine of the cluster.

    Parameters
    ----------
    sim:
        The owning simulator.
    index:
        Host index (the process with the same index runs on this host).
    config:
        The cluster configuration.
    """

    def __init__(self, sim: Simulator, index: int, config: ClusterConfig) -> None:
        self.sim = sim
        self.index = index
        self.config = config
        self.name = f"host{index}"
        self.cpu = Resource(sim, f"{self.name}.cpu", capacity=1)
        clock_rng = sim.random.stream(f"{self.name}.clock")
        self.clock = HostClock.synchronized(
            clock_rng,
            precision_ms=config.clock_sync_precision_ms,
            drift_ppm=config.clock_drift_ppm,
            resolution_ms=config.clock_resolution_ms,
        )
        self.scheduler = OSScheduler(
            config.scheduler, sim.random.stream(f"{self.name}.scheduler")
        )
        self.crashed = False
        #: Optional fault-injection hook ``now_ms -> multiplier`` scaling
        #: every CPU occupancy on this host (CPU load bursts).
        self.cpu_load: Optional[Callable[[float], float]] = None

    # ------------------------------------------------------------------
    def local_time(self) -> float:
        """Current local clock reading."""
        return self.clock.local_time(self.sim.now)

    def crash(self) -> None:
        """Crash the host: it stops processing and sending anything."""
        self.crashed = True

    def recover(self) -> None:
        """Recover a crashed host: it accepts and sends messages again."""
        self.crashed = False

    def use_cpu(
        self, duration: float, callback: Callable[..., None], *args: object
    ) -> None:
        """Occupy this host's CPU for ``duration`` ms, then call ``callback``."""
        if self.cpu_load is not None:
            duration *= float(self.cpu_load(self.sim.now))
        self.cpu.request(duration, callback, *args, label=self.name)

    def sleep(
        self, requested_ms: float, callback: Callable[..., None], *args: object
    ) -> None:
        """Schedule ``callback`` after a nominal sleep subject to OS effects."""
        actual = self.scheduler.effective_sleep(requested_ms)
        self.sim.schedule(actual, callback, *args)

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"Host(index={self.index}, {state})"
