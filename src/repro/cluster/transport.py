"""The message transport: TCP over the shared Ethernet hub.

The paper transmits all messages over TCP/IP connections established at the
beginning of the test (§2.5) and decomposes the end-to-end delay of a
message into seven steps (Fig. 3): sending-host CPU, shared network medium,
receiving-host CPU, plus the queueing in front of each resource.  The
transport reproduces exactly that pipeline:

1. the message enters the sending host's CPU queue;
2. it occupies the sending CPU for ``cpu_send_ms`` (serialisation, protocol
   stack, network controller);
3. it queues for the shared Ethernet medium;
4. it occupies the medium for its frame time (plus hub latency);
5. it incurs a protocol-stack latency on the receiving side (interrupt
   handling, kernel-to-user wake-up) which does not occupy the CPU
   resource but does take wall-clock time -- this is the component whose
   bi-modal distribution dominates the measured end-to-end delay (§5.1);
6. it occupies the receiving CPU for ``cpu_receive_ms``;
7. it is delivered to the destination process.

Broadcasts are expanded into unicast copies sent back-to-back in increasing
process-id order, as the paper's implementation does (whereas the SAN model
treats them as single messages -- see §5.3's discussion of the n = 3
participant-crash anomaly).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence

from repro.des.simulator import Simulator
from repro.cluster.config import ClusterConfig
from repro.cluster.ethernet import EthernetHub
from repro.cluster.host import Host
from repro.cluster.message import Message
from repro.cluster.tracing import MessageTrace
from repro.faults.injector import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.traces.events import TraceCollector

DeliverCallback = Callable[[Message], None]

#: Drop causes attributed by the transport itself (the fault injector adds
#: its own, e.g. ``"loss"`` and ``"partition"``).
CAUSE_SENDER_CRASHED = "sender-crashed"
CAUSE_RECEIVER_CRASHED = "receiver-crashed"


class Transport:
    """Reliable, ordered, connection-oriented message transport.

    Parameters
    ----------
    sim:
        The owning simulator.
    config:
        Cluster configuration (message sizes, CPU costs, ...).
    hosts:
        The cluster's hosts, indexed by process id.
    hub:
        The shared Ethernet segment.
    trace:
        Optional message trace receiving every delivery.
    injector:
        Optional fault injector consulted once per unicast copy entering
        the wire (loss, duplication, partitions) and once per message in
        the receiving protocol stack (reordering delay-spikes).
    collector:
        Optional event collector (:class:`repro.traces.events.TraceCollector`)
        notified of every unicast copy sent, delivered or dropped.  The
        hooks consume no randomness and default to ``None``, so the hot
        path -- and every result -- is unchanged unless tracing is
        explicitly requested.

    Drop accounting is **per unicast copy** at every stage: a broadcast by
    a crashed sender counts ``n - 1`` drops, exactly like the per-copy
    drops later in the pipeline, and every drop is attributed to a
    ``stage:cause`` key in :attr:`drops_by_cause` (stages ``send`` /
    ``wire`` / ``receive``; causes ``sender-crashed`` / ``loss`` /
    ``partition`` / ``receiver-crashed``).
    """

    def __init__(
        self,
        sim: Simulator,
        config: ClusterConfig,
        hosts: Sequence[Host],
        hub: EthernetHub,
        trace: Optional[MessageTrace] = None,
        injector: Optional[FaultInjector] = None,
        collector: Optional["TraceCollector"] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.hosts = list(hosts)
        self.hub = hub
        self.trace = trace
        self.injector = injector
        self.collector = collector
        self._receivers: Dict[int, DeliverCallback] = {}
        self._stack_rng = sim.random.stream("transport.stack")
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.drops_by_cause: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_receiver(self, process_id: int, callback: DeliverCallback) -> None:
        """Register the upcall invoked when a message reaches ``process_id``."""
        self._receivers[process_id] = callback

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send ``message``; broadcasts are expanded into unicast copies."""
        sender_host = self.hosts[message.sender]
        if sender_host.crashed:
            # Count per unicast copy, like every later pipeline stage does.
            if message.is_broadcast:
                for destination in self._broadcast_destinations(message.sender):
                    self._drop(message.unicast_copy(destination), "send",
                               CAUSE_SENDER_CRASHED)
            else:
                self._drop(message, "send", CAUSE_SENDER_CRASHED)
            return
        message.submitted_at = self.sim.now
        if message.is_broadcast:
            for destination in self._broadcast_destinations(message.sender):
                copy = message.unicast_copy(destination)
                copy.submitted_at = self.sim.now
                self._send_unicast(copy)
        else:
            self._send_unicast(message)

    def _broadcast_destinations(self, sender: int) -> list[int]:
        return [pid for pid in range(len(self.hosts)) if pid != sender]

    def _send_unicast(self, message: Message) -> None:
        if not 0 <= message.destination < len(self.hosts):
            raise ValueError(
                f"message {message!r} addressed to unknown process "
                f"{message.destination}"
            )
        self.messages_sent += 1
        if self.collector is not None:
            self.collector.on_send(message, self.sim.now)
        sender_host = self.hosts[message.sender]
        sender_host.use_cpu(
            self.config.network.cpu_send_ms, self._after_send_cpu, message
        )

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _after_send_cpu(self, message: Message) -> None:
        if self.hosts[message.sender].crashed:
            self._drop(message, "send", CAUSE_SENDER_CRASHED)
            return
        if self.injector is not None:
            decision = self.injector.decide_unicast(message, self.sim.now)
            if decision.drop_cause is not None:
                self._drop(message, "wire", decision.drop_cause)
                return
            for _ in range(decision.duplicates):
                duplicate = message.duplicate_copy()
                duplicate.sent_at = self.sim.now
                self.messages_duplicated += 1
                self.hub.transmit(duplicate, self._after_wire)
        message.sent_at = self.sim.now
        self.hub.transmit(message, self._after_wire)

    def _after_wire(self, message: Message) -> None:
        stack_latency = self._sample_stack_latency()
        if self.injector is not None:
            stack_latency += self.injector.stack_extra_delay(message, self.sim.now)
        self.sim.schedule(stack_latency, self._after_stack, message)

    def _after_stack(self, message: Message) -> None:
        destination_host = self.hosts[message.destination]
        if destination_host.crashed:
            self._drop(message, "receive", CAUSE_RECEIVER_CRASHED)
            return
        destination_host.use_cpu(
            self.config.network.cpu_receive_ms, self._deliver, message
        )

    def _deliver(self, message: Message) -> None:
        destination_host = self.hosts[message.destination]
        if destination_host.crashed:
            self._drop(message, "receive", CAUSE_RECEIVER_CRASHED)
            return
        message.delivered_at = self.sim.now
        self.messages_delivered += 1
        if self.trace is not None:
            self.trace.record_delivery(message)
        if self.collector is not None:
            self.collector.on_deliver(message, self.sim.now)
        receiver = self._receivers.get(message.destination)
        if receiver is not None:
            receiver(message)

    # ------------------------------------------------------------------
    def _drop(self, message: Message, stage: str, cause: str) -> None:
        """Count one dropped unicast copy, attributed to ``stage:cause``."""
        self.messages_dropped += 1
        key = f"{stage}:{cause}"
        self.drops_by_cause[key] = self.drops_by_cause.get(key, 0) + 1
        if self.collector is not None:
            self.collector.on_drop(message, stage, cause, self.sim.now)

    # ------------------------------------------------------------------
    def _sample_stack_latency(self) -> float:
        params = self.config.network
        if self._stack_rng.random() < params.stack_slow_probability:
            return float(
                self._stack_rng.uniform(
                    params.stack_latency_slow_low_ms, params.stack_latency_slow_high_ms
                )
            )
        return float(
            self._stack_rng.uniform(
                params.stack_latency_fast_low_ms, params.stack_latency_fast_high_ms
            )
        )

    def __repr__(self) -> str:
        return (
            f"Transport(sent={self.messages_sent}, delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped})"
        )
