"""The message transport: TCP over the shared Ethernet hub.

The paper transmits all messages over TCP/IP connections established at the
beginning of the test (§2.5) and decomposes the end-to-end delay of a
message into seven steps (Fig. 3): sending-host CPU, shared network medium,
receiving-host CPU, plus the queueing in front of each resource.  The
transport reproduces exactly that pipeline:

1. the message enters the sending host's CPU queue;
2. it occupies the sending CPU for ``cpu_send_ms`` (serialisation, protocol
   stack, network controller);
3. it queues for the shared Ethernet medium;
4. it occupies the medium for its frame time (plus hub latency);
5. it incurs a protocol-stack latency on the receiving side (interrupt
   handling, kernel-to-user wake-up) which does not occupy the CPU
   resource but does take wall-clock time -- this is the component whose
   bi-modal distribution dominates the measured end-to-end delay (§5.1);
6. it occupies the receiving CPU for ``cpu_receive_ms``;
7. it is delivered to the destination process.

Broadcasts are expanded into unicast copies sent back-to-back in increasing
process-id order, as the paper's implementation does (whereas the SAN model
treats them as single messages -- see §5.3's discussion of the n = 3
participant-crash anomaly).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.des.simulator import Simulator
from repro.cluster.config import ClusterConfig
from repro.cluster.ethernet import EthernetHub
from repro.cluster.host import Host
from repro.cluster.message import BROADCAST, Message
from repro.cluster.tracing import MessageTrace

DeliverCallback = Callable[[Message], None]


class Transport:
    """Reliable, ordered, connection-oriented message transport.

    Parameters
    ----------
    sim:
        The owning simulator.
    config:
        Cluster configuration (message sizes, CPU costs, ...).
    hosts:
        The cluster's hosts, indexed by process id.
    hub:
        The shared Ethernet segment.
    trace:
        Optional message trace receiving every delivery.
    """

    def __init__(
        self,
        sim: Simulator,
        config: ClusterConfig,
        hosts: Sequence[Host],
        hub: EthernetHub,
        trace: Optional[MessageTrace] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.hosts = list(hosts)
        self.hub = hub
        self.trace = trace
        self._receivers: Dict[int, DeliverCallback] = {}
        self._stack_rng = sim.random.stream("transport.stack")
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_receiver(self, process_id: int, callback: DeliverCallback) -> None:
        """Register the upcall invoked when a message reaches ``process_id``."""
        self._receivers[process_id] = callback

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send ``message``; broadcasts are expanded into unicast copies."""
        sender_host = self.hosts[message.sender]
        if sender_host.crashed:
            self.messages_dropped += 1
            return
        message.submitted_at = self.sim.now
        if message.is_broadcast:
            for destination in self._broadcast_destinations(message.sender):
                copy = message.unicast_copy(destination)
                copy.submitted_at = self.sim.now
                self._send_unicast(copy)
        else:
            self._send_unicast(message)

    def _broadcast_destinations(self, sender: int) -> list[int]:
        return [pid for pid in range(len(self.hosts)) if pid != sender]

    def _send_unicast(self, message: Message) -> None:
        if not 0 <= message.destination < len(self.hosts):
            raise ValueError(
                f"message {message!r} addressed to unknown process "
                f"{message.destination}"
            )
        self.messages_sent += 1
        sender_host = self.hosts[message.sender]
        sender_host.use_cpu(
            self.config.network.cpu_send_ms, self._after_send_cpu, message
        )

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _after_send_cpu(self, message: Message) -> None:
        if self.hosts[message.sender].crashed:
            self.messages_dropped += 1
            return
        message.sent_at = self.sim.now
        self.hub.transmit(message, self._after_wire)

    def _after_wire(self, message: Message) -> None:
        stack_latency = self._sample_stack_latency()
        self.sim.schedule(stack_latency, self._after_stack, message)

    def _after_stack(self, message: Message) -> None:
        destination_host = self.hosts[message.destination]
        if destination_host.crashed:
            self.messages_dropped += 1
            return
        destination_host.use_cpu(
            self.config.network.cpu_receive_ms, self._deliver, message
        )

    def _deliver(self, message: Message) -> None:
        destination_host = self.hosts[message.destination]
        if destination_host.crashed:
            self.messages_dropped += 1
            return
        message.delivered_at = self.sim.now
        self.messages_delivered += 1
        if self.trace is not None:
            self.trace.record_delivery(message)
        receiver = self._receivers.get(message.destination)
        if receiver is not None:
            receiver(message)

    # ------------------------------------------------------------------
    def _sample_stack_latency(self) -> float:
        params = self.config.network
        if self._stack_rng.random() < params.stack_slow_probability:
            return float(
                self._stack_rng.uniform(
                    params.stack_latency_slow_low_ms, params.stack_latency_slow_high_ms
                )
            )
        return float(
            self._stack_rng.uniform(
                params.stack_latency_fast_low_ms, params.stack_latency_fast_high_ms
            )
        )

    def __repr__(self) -> str:
        return (
            f"Transport(sent={self.messages_sent}, delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped})"
        )
