"""Configuration of the simulated cluster.

All times are in **milliseconds**, matching the unit used throughout the
paper's figures.  The default values are calibrated so that the end-to-end
delay of a ~100-byte message reproduces the bi-modal distribution the paper
measured (§5.1): most messages take 0.10-0.13 ms, a ~20% tail takes
0.145-0.35 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping


@dataclass(frozen=True)
class NetworkParameters:
    """Parameters of the Ethernet hub and of the per-message host processing.

    Attributes
    ----------
    bandwidth_mbps:
        Raw medium bandwidth in megabits per second (100 for the paper's
        100 Base-TX hub).
    frame_overhead_bytes:
        Per-frame overhead added to the payload size: Ethernet preamble,
        header, CRC, inter-frame gap and the TCP/IP headers (which on the
        wire are part of the frame).
    hub_latency_ms:
        Fixed store-and-forward / repeater latency of the hub per frame.
    cpu_send_ms:
        CPU time consumed on the sending host per message (network
        controller + protocol stack + Java serialisation).  Corresponds to
        the paper's ``t_send``.
    cpu_receive_ms:
        CPU time consumed on the receiving host per message (``t_receive``).
    stack_latency_fast_low_ms / stack_latency_fast_high_ms:
        Bounds of the "fast path" protocol-stack latency (interrupt
        handling, kernel-to-user wakeup) which is added to the wire time but
        does not occupy the CPU resource.
    stack_latency_slow_low_ms / stack_latency_slow_high_ms:
        Bounds of the occasional "slow path" latency (scheduler interference,
        interrupt coalescing).
    stack_slow_probability:
        Probability of hitting the slow path; the default 0.2 mirrors the
        20% second mode of the paper's fit.
    """

    bandwidth_mbps: float = 100.0
    frame_overhead_bytes: int = 58
    hub_latency_ms: float = 0.002
    cpu_send_ms: float = 0.060
    cpu_receive_ms: float = 0.100
    stack_latency_fast_low_ms: float = 0.020
    stack_latency_fast_high_ms: float = 0.045
    stack_latency_slow_low_ms: float = 0.060
    stack_latency_slow_high_ms: float = 0.220
    stack_slow_probability: float = 0.2

    def frame_time_ms(self, payload_bytes: int) -> float:
        """Time a frame with ``payload_bytes`` of payload occupies the medium."""
        total_bits = (payload_bytes + self.frame_overhead_bytes) * 8
        return total_bits / (self.bandwidth_mbps * 1000.0)


@dataclass(frozen=True)
class SchedulerParameters:
    """Operating-system scheduling effects applied to timers and threads.

    The paper attributes a measurement artefact to the Linux 2.2 scheduler's
    10 ms basic time unit (§5.4): a sleeping failure-detector thread wakes up
    only at a scheduler tick, so a nominal sleep of ``Th`` lasts up to one
    quantum longer.  These parameters control that model.

    Attributes
    ----------
    quantum_ms:
        The scheduler tick / time slice (10 ms for the paper's kernel).
    timer_granularity_ms:
        Granularity to which sleep durations are rounded up (one jiffy).
    wakeup_jitter_ms:
        Mean of the exponential jitter added to every timer wake-up
        (dispatch latency).
    preemption_probability:
        Probability that a timer wake-up is further delayed by a fraction of
        a quantum because another thread holds the CPU.
    preemption_max_fraction:
        Maximum fraction of a quantum by which a preempted wake-up is
        delayed.
    """

    quantum_ms: float = 10.0
    timer_granularity_ms: float = 1.0
    wakeup_jitter_ms: float = 0.3
    preemption_probability: float = 0.15
    preemption_max_fraction: float = 1.0


@dataclass(frozen=True)
class ClusterConfig:
    """Full configuration of a simulated cluster run.

    Attributes
    ----------
    n_processes:
        Number of consensus processes (one per host, as in the paper).
    message_size_bytes:
        Typical application message size ("around 100 bytes", §2.5).
    heartbeat_size_bytes:
        Size of a failure-detector heartbeat message.
    clock_sync_precision_ms:
        Half-width of the NTP synchronisation error (±50 µs in §4).
    clock_drift_ppm:
        Relative clock drift of each host in parts per million.
    clock_resolution_ms:
        Clock reading granularity (the 1 µs native clock of §4).
    network:
        Network and host-processing parameters.
    scheduler:
        Operating-system scheduling parameters.
    seed:
        Master seed for all random streams of the run.
    """

    n_processes: int = 3
    message_size_bytes: int = 100
    heartbeat_size_bytes: int = 60
    clock_sync_precision_ms: float = 0.05
    clock_drift_ppm: float = 20.0
    clock_resolution_ms: float = 0.001
    network: NetworkParameters = field(default_factory=NetworkParameters)
    scheduler: SchedulerParameters = field(default_factory=SchedulerParameters)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {self.n_processes}")
        if self.message_size_bytes <= 0:
            raise ValueError("message_size_bytes must be > 0")

    def with_processes(self, n_processes: int) -> "ClusterConfig":
        """A copy of this configuration with a different process count."""
        return replace(self, n_processes=n_processes)

    def with_seed(self, seed: int) -> "ClusterConfig":
        """A copy of this configuration with a different master seed."""
        return replace(self, seed=seed)

    def replace(self, **changes: object) -> "ClusterConfig":
        """A copy with arbitrary fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)

    def as_dict(self) -> Mapping[str, object]:
        """A flat dictionary of the scalar fields (for experiment reports)."""
        return {
            "n_processes": self.n_processes,
            "message_size_bytes": self.message_size_bytes,
            "heartbeat_size_bytes": self.heartbeat_size_bytes,
            "clock_sync_precision_ms": self.clock_sync_precision_ms,
            "clock_drift_ppm": self.clock_drift_ppm,
            "seed": self.seed,
            "cpu_send_ms": self.network.cpu_send_ms,
            "cpu_receive_ms": self.network.cpu_receive_ms,
            "bandwidth_mbps": self.network.bandwidth_mbps,
            "scheduler_quantum_ms": self.scheduler.quantum_ms,
        }
