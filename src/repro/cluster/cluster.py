"""The simulated cluster: hosts, hub, transport and processes.

:class:`Cluster` is the facade used by experiments: it builds the simulator,
the hosts, the shared Ethernet hub and the transport from a
:class:`~repro.cluster.config.ClusterConfig`, creates
:class:`~repro.cluster.neko.NekoProcess` instances from protocol-layer
factories, and runs the simulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.des.simulator import Simulator
from repro.cluster.config import ClusterConfig
from repro.cluster.ethernet import EthernetHub
from repro.cluster.host import Host
from repro.cluster.neko import NekoProcess, ProtocolLayer
from repro.cluster.tracing import MessageTrace
from repro.cluster.transport import Transport
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultLoad

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.traces.events import TraceCollector

#: A layer factory receives ``(simulator, process_id)`` and returns the
#: protocol stack for that process, ordered top to bottom.
LayerStackFactory = Callable[[Simulator, int], Sequence[ProtocolLayer]]


class Cluster:
    """A complete simulated cluster.

    Parameters
    ----------
    config:
        The cluster configuration (process count, network parameters,
        scheduler parameters, seed).
    fault_load:
        Optional composable fault load (:mod:`repro.faults`).  When given,
        a :class:`~repro.faults.injector.FaultInjector` is threaded through
        the transport (loss, duplication, partitions, reordering spikes),
        the Ethernet hub (congestion spikes) and the hosts (CPU load
        bursts), and crash-recovery faults are scheduled on the simulator.
    collector:
        Optional :class:`~repro.traces.events.TraceCollector` receiving
        every transport send/deliver/drop event.  Purely observational
        (no randomness consumed), so attaching one never changes results.

    Examples
    --------
    >>> from repro.cluster import Cluster, ClusterConfig
    >>> cluster = Cluster(ClusterConfig(n_processes=3, seed=1))
    >>> len(cluster.hosts)
    3
    """

    def __init__(
        self,
        config: ClusterConfig,
        fault_load: Optional[FaultLoad] = None,
        collector: Optional["TraceCollector"] = None,
    ) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.trace = MessageTrace()
        self.collector = collector
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(self.sim, fault_load) if fault_load else None
        )
        self.hosts: List[Host] = [
            Host(self.sim, index, config) for index in range(config.n_processes)
        ]
        self.hub = EthernetHub(
            self.sim,
            config.network,
            wire_time_hook=(
                self.fault_injector.medium_extra_delay if self.fault_injector else None
            ),
        )
        self.transport = Transport(
            self.sim, config, self.hosts, self.hub, trace=self.trace,
            injector=self.fault_injector, collector=collector,
        )
        self.processes: List[NekoProcess] = []
        if self.fault_injector is not None:
            for host in self.hosts:
                host.cpu_load = self.fault_injector.cpu_load_model(host.index)
            self.fault_injector.install(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def create_processes(self, stack_factory: LayerStackFactory) -> List[NekoProcess]:
        """Create one process per host using ``stack_factory``.

        The factory is called once per process id and must return the
        protocol layers top to bottom.
        """
        if self.processes:
            raise RuntimeError("processes have already been created for this cluster")
        for process_id in range(self.config.n_processes):
            layers = list(stack_factory(self.sim, process_id))
            process = NekoProcess(
                sim=self.sim,
                process_id=process_id,
                host=self.hosts[process_id],
                transport=self.transport,
                layers=layers,
                n_processes=self.config.n_processes,
            )
            self.processes.append(process)
        return list(self.processes)

    def crash_process(self, process_id: int) -> None:
        """Crash a process (and its host) immediately."""
        self.hosts[process_id].crash()
        if process_id < len(self.processes):
            self.processes[process_id].crash()

    def recover_process(self, process_id: int) -> None:
        """Recover a crashed process (crash-recovery fault loads)."""
        if process_id < len(self.processes):
            self.processes[process_id].recover()
        else:
            self.hosts[process_id].recover()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start_all(self) -> None:
        """Start every (non-crashed) process."""
        for process in self.processes:
            process.start()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation; returns the final simulation time."""
        return self.sim.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_processes(self) -> int:
        """Number of processes in the cluster."""
        return self.config.n_processes

    def correct_processes(self) -> List[int]:
        """Ids of the processes that have not crashed."""
        return [host.index for host in self.hosts if not host.crashed]

    def process(self, process_id: int) -> NekoProcess:
        """The process with the given id."""
        return self.processes[process_id]

    def __repr__(self) -> str:
        return (
            f"Cluster(n={self.config.n_processes}, "
            f"processes={len(self.processes)}, now={self.sim.now:.3f}ms)"
        )
