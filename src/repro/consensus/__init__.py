"""The Chandra-Toueg ◇S consensus algorithm.

This package implements the consensus algorithm the paper analyzes (§2.1):
the rotating-coordinator algorithm of Chandra and Toueg for the asynchronous
model augmented with a ◇S failure detector, requiring a majority of correct
processes.  The algorithm is written as a protocol layer for the Neko-like
stack of :mod:`repro.cluster`, so the very same code runs in every
experiment class (no failures, initial crash, wrong suspicions).
"""

from repro.consensus.chandra_toueg import ChandraTouegConsensus, Decision
from repro.consensus.messages import (
    ACK,
    DECIDE,
    ESTIMATE,
    NACK,
    PROPOSE,
    coordinator_of_round,
    majority_of,
)

__all__ = [
    "ACK",
    "ChandraTouegConsensus",
    "DECIDE",
    "Decision",
    "ESTIMATE",
    "NACK",
    "PROPOSE",
    "coordinator_of_round",
    "majority_of",
]
