"""Message vocabulary and round arithmetic of the ◇S consensus algorithm.

In each round every message either flows from the participants to the
coordinator (estimates, acknowledgements) or from the coordinator to the
participants (proposal, decision) -- §2.1 of the paper.
"""

from __future__ import annotations

#: A participant's current estimate, sent to the round's coordinator (phase 1).
ESTIMATE = "estimate"
#: The coordinator's proposal for the round, sent to all participants (phase 2).
PROPOSE = "propose"
#: Positive acknowledgement of a proposal (phase 3).
ACK = "ack"
#: Negative acknowledgement, sent when the coordinator is suspected (phase 3).
NACK = "nack"
#: The decision, reliably broadcast by the coordinator (phase 4).
DECIDE = "decide"

#: All consensus message types.
CONSENSUS_MESSAGE_TYPES = (ESTIMATE, PROPOSE, ACK, NACK, DECIDE)


def coordinator_of_round(round_number: int, n_processes: int) -> int:
    """The coordinator of a round (rotating-coordinator paradigm).

    Rounds are numbered from 1; process ``p_i`` (0-based id ``i``) is the
    coordinator of rounds ``k*n + i + 1``, i.e. process 0 coordinates round
    1, process 1 coordinates round 2, and so on, wrapping around.
    """
    if round_number < 1:
        raise ValueError(f"round_number must be >= 1, got {round_number}")
    if n_processes < 1:
        raise ValueError(f"n_processes must be >= 1, got {n_processes}")
    return (round_number - 1) % n_processes


def majority_of(n_processes: int) -> int:
    """The smallest majority of ``n_processes`` (⌊n/2⌋ + 1).

    The ◇S algorithm requires a majority of correct processes and waits for
    messages from a majority in each round.
    """
    if n_processes < 1:
        raise ValueError(f"n_processes must be >= 1, got {n_processes}")
    return n_processes // 2 + 1
