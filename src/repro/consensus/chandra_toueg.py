"""The Chandra-Toueg ◇S consensus protocol layer.

The algorithm proceeds in asynchronous rounds under the rotating-coordinator
paradigm (§2.1 of the paper).  In round ``r`` with coordinator ``c``:

* **Phase 1** -- every process sends its current estimate (tagged with the
  round in which it was last updated) to ``c``.
* **Phase 2** -- ``c`` waits for estimates from a majority of processes
  (its own included), selects the estimate with the highest tag and sends
  it to all processes as the round's *proposal*.
* **Phase 3** -- every process waits for the proposal of round ``r``.  If it
  arrives, the process adopts it as its new estimate and replies with a
  positive acknowledgement; if instead the local failure detector suspects
  ``c`` while waiting, the process replies with a negative acknowledgement.
  Either way the process then moves to round ``r + 1``.
* **Phase 4** -- ``c`` collects the replies.  A majority of positive
  acknowledgements lets it *decide* and reliably broadcast the decision; a
  single negative acknowledgement sends it to round ``r + 1``.

A process decides when it delivers the decision message (the coordinator
delivers its own broadcast locally, so it is normally the first process to
decide -- which is what the paper's latency metric measures, §2.3).

The implementation supports many *instances* of consensus in one run (the
paper averages over thousands of sequential executions, §4): every message
carries an instance number and per-instance state is kept separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.des.simulator import Simulator
from repro.cluster.message import BROADCAST, Message
from repro.cluster.neko import ProtocolLayer
from repro.consensus.messages import (
    ACK,
    DECIDE,
    ESTIMATE,
    NACK,
    PROPOSE,
    coordinator_of_round,
    majority_of,
)
from repro.failure_detectors.base import FailureDetectorLayer

#: Callback invoked on decision: (process_id, instance, value, local_time, global_time).
DecisionCallback = Callable[[int, int, Any, float, float], None]

#: Safety bound on the number of rounds of a single instance; reaching it
#: indicates a configuration in which the run cannot terminate (e.g. no
#: majority of correct processes) or a bug, so it raises rather than spins.
MAX_ROUNDS = 100_000


@dataclass(frozen=True)
class Decision:
    """A decision event observed on one process."""

    process_id: int
    instance: int
    value: Any
    round_number: int
    local_time: float
    global_time: float


@dataclass
class _InstanceState:
    """Per-instance protocol state of one process."""

    instance: int
    estimate: Any
    estimate_ts: int = 0
    round_number: int = 1
    phase: str = "idle"
    decided: bool = False
    decision: Any = None
    decided_round: int = 0
    # Coordinator-side bookkeeping, keyed by round.
    estimates: Dict[int, Dict[int, Tuple[Any, int]]] = field(default_factory=dict)
    replies: Dict[int, Dict[int, bool]] = field(default_factory=dict)
    # Participant-side buffered proposals, keyed by round.
    proposals: Dict[int, Any] = field(default_factory=dict)
    nacked_rounds: Set[int] = field(default_factory=set)


class ChandraTouegConsensus(ProtocolLayer):
    """Protocol layer implementing ◇S consensus.

    Parameters
    ----------
    sim:
        The owning simulator.
    message_size_bytes:
        Wire size of consensus messages ("around 100 bytes", §2.5).
    relay_decision:
        If ``True`` (default), a process re-broadcasts the decision message
        the first time it delivers one, implementing the reliable broadcast
        the algorithm requires for the decision.
    """

    def __init__(
        self,
        sim: Simulator,
        message_size_bytes: int = 100,
        relay_decision: bool = True,
        name: str = "ct-consensus",
    ) -> None:
        super().__init__(sim, name)
        self.message_size_bytes = message_size_bytes
        self.relay_decision = relay_decision
        self._instances: Dict[int, _InstanceState] = {}
        self._active_instances: Set[int] = set()
        self._decision_callbacks: List[DecisionCallback] = []
        self._decisions: List[Decision] = []
        self._fd: Optional[FailureDetectorLayer] = None
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def add_decision_callback(self, callback: DecisionCallback) -> None:
        """Register a callback invoked whenever this process decides."""
        self._decision_callbacks.append(callback)

    @property
    def decisions(self) -> List[Decision]:
        """All decisions taken by this process so far."""
        return list(self._decisions)

    def decision_of(self, instance: int) -> Optional[Decision]:
        """The decision of a given instance, if this process decided it."""
        for decision in self._decisions:
            if decision.instance == instance:
                return decision
        return None

    def has_decided(self, instance: int) -> bool:
        """``True`` if this process has decided the given instance."""
        state = self._instances.get(instance)
        return bool(state is not None and state.decided)

    def propose(self, instance: int, value: Any) -> None:
        """Propose ``value`` for consensus instance ``instance`` and start it."""
        if self.process is None:
            raise RuntimeError("consensus layer is not attached to a process")
        if self.process.crashed:
            return
        if instance in self._instances:
            raise ValueError(f"instance {instance} was already proposed")
        state = _InstanceState(instance=instance, estimate=value, estimate_ts=0)
        self._instances[instance] = state
        self._active_instances.add(instance)
        self._start_round(state)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Locate the failure-detector layer and register for suspicions."""
        self._fd = self._find_failure_detector()
        if self._fd is not None:
            self._fd.add_listener(self._on_suspicion_change)

    def _find_failure_detector(self) -> Optional[FailureDetectorLayer]:
        if self.process is None:
            return None
        for layer in self.process.layers:
            if isinstance(layer, FailureDetectorLayer):
                return layer
        return None

    # ------------------------------------------------------------------
    # Round machinery
    # ------------------------------------------------------------------
    @property
    def _majority(self) -> int:
        return majority_of(self.n_processes)

    def _coordinator(self, round_number: int) -> int:
        return coordinator_of_round(round_number, self.n_processes)

    def _start_round(self, state: _InstanceState) -> None:
        if state.decided:
            return
        if state.round_number > MAX_ROUNDS:
            raise RuntimeError(
                f"consensus instance {state.instance} exceeded {MAX_ROUNDS} rounds"
            )
        round_number = state.round_number
        coordinator = self._coordinator(round_number)
        # Phase 1: send the current estimate to the coordinator.
        if coordinator == self.process_id:
            self._record_estimate(
                state, round_number, self.process_id, state.estimate, state.estimate_ts
            )
            state.phase = "collect_estimates"
            self._try_propose(state)
        else:
            self._send(
                coordinator,
                ESTIMATE,
                instance=state.instance,
                round_number=round_number,
                value=state.estimate,
                ts=state.estimate_ts,
            )
            state.phase = "wait_proposal"
            self._try_handle_proposal(state)

    def _advance_round(self, state: _InstanceState) -> None:
        if state.decided:
            return
        state.round_number += 1
        self._start_round(state)

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def _record_estimate(
        self,
        state: _InstanceState,
        round_number: int,
        sender: int,
        value: Any,
        ts: int,
    ) -> None:
        state.estimates.setdefault(round_number, {})[sender] = (value, ts)

    def _try_propose(self, state: _InstanceState) -> None:
        """Phase 2: once a majority of estimates is in, broadcast a proposal."""
        if state.decided or state.phase != "collect_estimates":
            return
        round_number = state.round_number
        estimates = state.estimates.get(round_number, {})
        if len(estimates) < self._majority:
            return
        # Select the estimate with the highest timestamp (ties: lowest pid).
        best_pid = min(estimates, key=lambda pid: (-estimates[pid][1], pid))
        proposal = estimates[best_pid][0]
        self._send(
            BROADCAST,
            PROPOSE,
            instance=state.instance,
            round_number=round_number,
            value=proposal,
        )
        # The coordinator executes phase 3 locally: it adopts its own
        # proposal and registers its own positive acknowledgement.
        state.estimate = proposal
        state.estimate_ts = round_number
        state.replies.setdefault(round_number, {})[self.process_id] = True
        state.phase = "collect_replies"
        self._try_decide(state)

    def _try_decide(self, state: _InstanceState) -> None:
        """Phase 4: decide on a majority of acks; abort the round on a nack."""
        if state.decided or state.phase != "collect_replies":
            return
        round_number = state.round_number
        replies = state.replies.get(round_number, {})
        if any(not positive for positive in replies.values()):
            self._advance_round(state)
            return
        acks = sum(1 for positive in replies.values() if positive)
        if acks >= self._majority:
            self._send(
                BROADCAST,
                DECIDE,
                instance=state.instance,
                round_number=round_number,
                value=state.estimate,
            )
            self._decide(state, state.estimate, round_number)

    # ------------------------------------------------------------------
    # Participant side
    # ------------------------------------------------------------------
    def _try_handle_proposal(self, state: _InstanceState) -> None:
        """Phase 3: ack a received proposal or nack a suspected coordinator."""
        if state.decided or state.phase != "wait_proposal":
            return
        round_number = state.round_number
        coordinator = self._coordinator(round_number)
        if round_number in state.proposals:
            proposal = state.proposals[round_number]
            state.estimate = proposal
            state.estimate_ts = round_number
            self._send(
                coordinator,
                ACK,
                instance=state.instance,
                round_number=round_number,
            )
            self._advance_round(state)
            return
        if self._fd is not None and self._fd.is_suspected(coordinator):
            self._nack(state, round_number, coordinator)

    def _nack(self, state: _InstanceState, round_number: int, coordinator: int) -> None:
        if round_number in state.nacked_rounds:
            return
        state.nacked_rounds.add(round_number)
        self._send(
            coordinator,
            NACK,
            instance=state.instance,
            round_number=round_number,
        )
        self._advance_round(state)

    def _on_suspicion_change(self, process_id: int, suspected: bool) -> None:
        """FD listener: a suspicion may release a participant stuck in phase 3."""
        if not suspected:
            return
        for instance in sorted(self._active_instances):
            state = self._instances[instance]
            if state.decided or state.phase != "wait_proposal":
                continue
            coordinator = self._coordinator(state.round_number)
            if coordinator == process_id:
                self._nack(state, state.round_number, coordinator)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _decide(self, state: _InstanceState, value: Any, round_number: int) -> None:
        if state.decided:
            return
        state.decided = True
        state.decision = value
        state.decided_round = round_number
        state.phase = "decided"
        self._active_instances.discard(state.instance)
        local_time = self.process.local_time() if self.process is not None else self.now
        decision = Decision(
            process_id=self.process_id,
            instance=state.instance,
            value=value,
            round_number=round_number,
            local_time=local_time,
            global_time=self.now,
        )
        self._decisions.append(decision)
        for callback in list(self._decision_callbacks):
            callback(self.process_id, state.instance, value, local_time, self.now)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_deliver(self, message: Message) -> None:
        """Dispatch consensus messages; forward anything else upward."""
        if message.msg_type not in (ESTIMATE, PROPOSE, ACK, NACK, DECIDE):
            self.deliver_up(message)
            return
        payload = message.payload
        instance = payload["instance"]
        state = self._instances.get(instance)
        if state is None:
            # A message for an instance this process has not started yet:
            # create the state lazily with the message value as estimate so
            # that late starters still participate (does not happen in the
            # paper's experiments, where all processes propose at t0).
            state = _InstanceState(instance=instance, estimate=payload.get("value"))
            self._instances[instance] = state
            self._active_instances.add(instance)
            state.phase = "wait_proposal"
        handler = {
            ESTIMATE: self._handle_estimate,
            PROPOSE: self._handle_propose,
            ACK: self._handle_ack,
            NACK: self._handle_nack,
            DECIDE: self._handle_decide,
        }[message.msg_type]
        handler(state, message)

    def _handle_estimate(self, state: _InstanceState, message: Message) -> None:
        payload = message.payload
        round_number = payload["round_number"]
        self._record_estimate(
            state, round_number, message.sender, payload["value"], payload["ts"]
        )
        if (
            not state.decided
            and state.round_number == round_number
            and self._coordinator(round_number) == self.process_id
        ):
            self._try_propose(state)

    def _handle_propose(self, state: _InstanceState, message: Message) -> None:
        payload = message.payload
        round_number = payload["round_number"]
        state.proposals[round_number] = payload["value"]
        if not state.decided and state.round_number == round_number:
            self._try_handle_proposal(state)

    def _handle_ack(self, state: _InstanceState, message: Message) -> None:
        self._record_reply(state, message, positive=True)

    def _handle_nack(self, state: _InstanceState, message: Message) -> None:
        self._record_reply(state, message, positive=False)

    def _record_reply(
        self, state: _InstanceState, message: Message, positive: bool
    ) -> None:
        round_number = message.payload["round_number"]
        state.replies.setdefault(round_number, {})[message.sender] = positive
        if (
            not state.decided
            and state.round_number == round_number
            and self._coordinator(round_number) == self.process_id
        ):
            self._try_decide(state)

    def _handle_decide(self, state: _InstanceState, message: Message) -> None:
        if state.decided:
            return
        value = message.payload["value"]
        round_number = message.payload["round_number"]
        if self.relay_decision:
            self._send(
                BROADCAST,
                DECIDE,
                instance=state.instance,
                round_number=round_number,
                value=value,
            )
        self._decide(state, value, round_number)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _send(self, destination: int, msg_type: str, **payload: Any) -> None:
        message = Message(
            sender=self.process_id,
            destination=destination,
            msg_type=msg_type,
            payload=payload,
            size_bytes=self.message_size_bytes,
        )
        self.messages_sent += 1
        self.send_down(message)
