"""Per-figure and per-table experiment generators.

Each module regenerates the data behind one element of the paper's
evaluation (§5):

==================  ========================================================
Module              Paper element
==================  ========================================================
``figure6``         Fig. 6 -- end-to-end delay CDFs of unicast / broadcast
                    messages
``figure7``         Fig. 7(a) -- latency CDFs for n = 3..11 (measurements);
                    Fig. 7(b) -- simulated CDFs for a sweep of ``t_send``
                    vs. the measured CDF (calibration);
                    §5.2 -- mean latencies, measurement vs. simulation
``table1``          Table 1 -- latency under crash scenarios
``figure8``         Fig. 8(a)/(b) -- failure-detector QoS (T_MR, T_M) vs.
                    the timeout T
``figure9``         Fig. 9(a)/(b) -- latency vs. the timeout T,
                    measurements and SAN simulations (det. / exp. FD model)
==================  ========================================================

Every generator takes an :class:`~repro.experiments.settings.ExperimentSettings`
controlling its scale, so the same code serves quick benchmark runs and
full paper-scale reproductions (set ``REPRO_EXPERIMENT_SCALE=full``).

Each generator expresses its grid as a
:class:`~repro.experiments.runner.ReplicationPlan` and executes it through
:mod:`repro.experiments.runner`, so every sweep accepts ``jobs=`` (process
parallelism; results are bit-for-bit independent of the worker count) and
``cache_dir=`` (on-disk memoisation of per-point results).

Every generator additionally self-registers an
:class:`~repro.experiments.registry.ExperimentSpec` in
:mod:`repro.experiments.registry`, which is how the CLI discovers its
subcommands and how the structured artifact layer
(:mod:`repro.experiments.artifacts`) emits JSON/CSV results and run
manifests for each experiment.
"""

from repro.experiments.artifacts import RunManifest, validate_artifact
from repro.experiments.fault_sweep import FaultSweepResult, run_fault_sweep
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.figure7 import (
    Figure7aResult,
    Figure7bResult,
    LatencyMeansResult,
    run_figure7a,
    run_figure7b,
    run_latency_means,
)
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentOptions,
    ExperimentRun,
    ExperimentSpec,
    run_experiment,
)
from repro.experiments.registry import (
    discover as discover_experiments,
)
from repro.experiments.registry import (
    get as get_experiment,
)
from repro.experiments.registry import (
    names as experiment_names,
)
from repro.experiments.runner import (
    ReplicationPlan,
    ResultCache,
    SweepPoint,
    execute_plan,
    iter_plan,
)
from repro.experiments.settings import ExperimentSettings
from repro.experiments.solver_compare import SolverCompareResult, run_solver_compare
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "ExperimentContext",
    "ExperimentOptions",
    "ExperimentRun",
    "ExperimentSettings",
    "ExperimentSpec",
    "ReplicationPlan",
    "ResultCache",
    "RunManifest",
    "SweepPoint",
    "discover_experiments",
    "execute_plan",
    "experiment_names",
    "get_experiment",
    "iter_plan",
    "run_experiment",
    "validate_artifact",
    "FaultSweepResult",
    "Figure6Result",
    "Figure7aResult",
    "Figure7bResult",
    "Figure8Result",
    "Figure9Result",
    "LatencyMeansResult",
    "SolverCompareResult",
    "Table1Result",
    "run_fault_sweep",
    "run_figure6",
    "run_figure7a",
    "run_figure7b",
    "run_figure8",
    "run_figure9",
    "run_latency_means",
    "run_solver_compare",
    "run_table1",
]
