"""Figure 7 and the §5.2 mean latencies: runs with no failures, no suspicions.

Three related generators:

* :func:`run_figure7a` -- the measured latency CDFs for n = 3, 5, 7, 9, 11
  (5000 executions each in the paper);
* :func:`run_figure7b` -- the calibration plot: simulated latency CDFs for a
  sweep of ``t_send`` values (with the end-to-end delay held fixed) against
  the measured CDF for n = 5, from which the calibrated ``t_send`` is
  chosen;
* :func:`run_latency_means` -- the mean latencies (measurement for every n,
  SAN simulation for n = 3 and 5) quoted in the §5.2 text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.calibration import CalibrationResult, score_t_send_candidates
from repro.core.measurement import MeasurementConfig, MeasurementRunner
from repro.core.scenarios import Scenario
from repro.core.simulation import SimulationConfig, SimulationRunner
from repro.experiments.figure6 import run_figure6_in
from repro.experiments.registry import ExperimentContext, ExperimentSpec, register
from repro.experiments.runner import ReplicationPlan, SweepPoint
from repro.experiments.settings import ExperimentSettings
from repro.sanmodels.parameters import SANParameters
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import ConfidenceInterval, confidence_interval


# ----------------------------------------------------------------------
# Figure 7(a): measured latency CDFs
# ----------------------------------------------------------------------
@dataclass
class Figure7aResult:
    """Measured latency distributions per process count."""

    latencies_by_n: Dict[int, List[float]]

    def cdf(self, n_processes: int) -> EmpiricalCDF:
        """The latency CDF for one process count."""
        return EmpiricalCDF(self.latencies_by_n[n_processes])

    def mean(self, n_processes: int) -> float:
        """Mean latency for one process count."""
        values = self.latencies_by_n[n_processes]
        return sum(values) / len(values)

    def means(self) -> Dict[int, float]:
        """Mean latency for every measured process count."""
        return {n: self.mean(n) for n in sorted(self.latencies_by_n)}


def measure_latencies(
    settings: ExperimentSettings,
    n_processes: int,
    scenario: Scenario,
    executions: int,
    point_seed: int,
    separation_ms: float = 10.0,
    sequential: bool = False,
    max_instance_time_ms: Optional[float] = None,
) -> List[float]:
    """Measure consensus latencies for one experiment point (shared helper)."""
    config = MeasurementConfig(
        cluster=settings.cluster_for(n_processes, point_seed),
        scenario=scenario,
        executions=executions,
        separation_ms=separation_ms,
        sequential=sequential,
        max_instance_time_ms=max_instance_time_ms,
    )
    return MeasurementRunner(config).run().latencies_ms


def _figure7a_point(
    settings: ExperimentSettings, n_processes: int, point_seed: int
) -> List[float]:
    """One Figure 7(a) point: crash-free latencies for one cluster size."""
    return measure_latencies(
        settings,
        n_processes=n_processes,
        scenario=Scenario.no_failures(),
        executions=settings.executions,
        point_seed=point_seed,
    )


def figure7a_plan(settings: ExperimentSettings) -> ReplicationPlan:
    """The Figure 7(a) sweep: one point per measured cluster size."""
    points = tuple(
        SweepPoint.make(
            _figure7a_point,
            kwargs={"settings": settings, "n_processes": n},
            indices=(7, 1, index),
            label=f"figure7a n={n}",
        )
        for index, n in enumerate(settings.measured_process_counts)
    )
    return ReplicationPlan(settings=settings, points=points, name="figure7a")


def aggregate_figure7a(
    settings: ExperimentSettings,
    pairs: Iterable[Tuple[SweepPoint, Any]],
) -> Figure7aResult:
    """Assemble the Figure 7(a) result from streamed point results."""
    latencies: Dict[int, List[float]] = {}
    for point, result in pairs:
        latencies[dict(point.kwargs)["n_processes"]] = result
    return Figure7aResult(latencies_by_n=latencies)


def run_figure7a(
    settings: ExperimentSettings | None = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> Figure7aResult:
    """Measure the latency CDFs of Figure 7(a)."""
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    return run_figure7a_in(context)


def run_figure7a_in(context: ExperimentContext) -> Figure7aResult:
    """Context-based entry point (shared with the §5.2 means experiment)."""
    plan = figure7a_plan(context.settings)
    return aggregate_figure7a(context.settings, context.iter(plan))


def format_figure7a(result: Figure7aResult) -> str:
    """Render Figure 7(a) as a per-n summary table."""
    lines = ["Figure 7(a): latency, no failures, no suspicions",
             "n    mean [ms]   median [ms]   p90 [ms]"]
    for n in sorted(result.latencies_by_n):
        cdf = result.cdf(n)
        lines.append(
            f"{n:<4d} {cdf.mean():9.3f}   {cdf.median():11.3f}   {cdf.quantile(0.9):8.3f}"
        )
    return "\n".join(lines)


def figure7a_record(result: Figure7aResult) -> Dict[str, Any]:
    """The JSON artifact data of Figure 7(a)."""
    series = []
    for n in sorted(result.latencies_by_n):
        cdf = result.cdf(n)
        series.append(
            {
                "n_processes": n,
                "mean_ms": cdf.mean(),
                "median_ms": cdf.median(),
                "p90_ms": cdf.quantile(0.9),
                "executions": cdf.n,
            }
        )
    return {"latency_by_n": series}


def figure7a_rows(result: Figure7aResult):
    """The CSV series of Figure 7(a)."""
    header = ["n_processes", "mean_ms", "median_ms", "p90_ms", "executions"]
    rows = []
    for n in sorted(result.latencies_by_n):
        cdf = result.cdf(n)
        rows.append([n, cdf.mean(), cdf.median(), cdf.quantile(0.9), cdf.n])
    return header, rows


# ----------------------------------------------------------------------
# Figure 7(b): calibration of t_send
# ----------------------------------------------------------------------
@dataclass
class Figure7bResult:
    """Calibration data: measured CDF vs. simulated CDFs per t_send."""

    n_processes: int
    measured_latencies: List[float]
    simulated_latencies_by_t_send: Dict[float, List[float]]
    calibration: CalibrationResult
    parameters: SANParameters

    def measured_cdf(self) -> EmpiricalCDF:
        """The measured latency CDF."""
        return EmpiricalCDF(self.measured_latencies)

    def simulated_cdf(self, t_send_ms: float) -> EmpiricalCDF:
        """The simulated latency CDF for one candidate ``t_send``."""
        return EmpiricalCDF(self.simulated_latencies_by_t_send[t_send_ms])

    @property
    def best_t_send_ms(self) -> float:
        """The calibrated ``t_send`` (the paper settles on 0.025 ms)."""
        return self.calibration.best_t_send_ms


def _figure7b_sim_point(
    settings: ExperimentSettings,
    n_processes: int,
    parameters: SANParameters,
    t_send_ms: float,
    point_seed: int,
) -> List[float]:
    """One Figure 7(b) point: simulated latencies for one ``t_send``."""
    from repro.sanmodels.consensus_model import ConsensusSANExperiment

    experiment = ConsensusSANExperiment(
        n_processes=n_processes,
        parameters=parameters.with_t_send(t_send_ms),
        seed=point_seed,
    )
    return experiment.run(replications=settings.replications).latencies_ms


def figure7b_plan(
    settings: ExperimentSettings,
    n_processes: int,
    parameters: SANParameters,
) -> ReplicationPlan:
    """The Figure 7(b) sweep: one simulation point per ``t_send`` candidate."""
    points = tuple(
        SweepPoint.make(
            _figure7b_sim_point,
            kwargs={
                "settings": settings,
                "n_processes": n_processes,
                "parameters": parameters,
                "t_send_ms": float(t_send),
            },
            indices=(7, 4, index),
            label=f"figure7b t_send={t_send}",
        )
        for index, t_send in enumerate(settings.t_send_candidates_ms)
    )
    return ReplicationPlan(settings=settings, points=points, name="figure7b")


def run_figure7b(
    settings: ExperimentSettings | None = None,
    n_processes: int = 5,
    measured_latencies: Optional[List[float]] = None,
    parameters: Optional[SANParameters] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> Figure7bResult:
    """Reproduce the Figure 7(b) calibration sweep.

    ``measured_latencies`` and ``parameters`` may be supplied to reuse data
    from a previous :func:`run_figure7a` / :func:`run_figure6` run; when
    omitted, both are measured afresh.  The candidate simulations run once
    through the sweep runner; the calibration (KS distance per candidate)
    is computed from those simulated latencies directly.
    """
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    return run_figure7b_in(
        context,
        n_processes=n_processes,
        measured_latencies=measured_latencies,
        parameters=parameters,
    )


def run_figure7b_in(
    context: ExperimentContext,
    n_processes: int = 5,
    measured_latencies: Optional[List[float]] = None,
    parameters: Optional[SANParameters] = None,
) -> Figure7bResult:
    """Context-based entry point of the Figure 7(b) calibration."""
    settings = context.settings
    if measured_latencies is None:
        measured_latencies = context.record(
            f"figure7b measure n={n_processes}",
            lambda: measure_latencies(
                settings,
                n_processes=n_processes,
                scenario=Scenario.no_failures(),
                executions=settings.executions,
                point_seed=settings.point_seed(7, 2, n_processes),
            ),
        )
    if parameters is None:
        parameters = run_figure6_in(context).san_parameters()
    plan = figure7b_plan(settings, n_processes, parameters)
    simulated: Dict[float, List[float]] = {}
    for point, latencies in context.iter(plan):
        simulated[dict(point.kwargs)["t_send_ms"]] = latencies
    calibration = score_t_send_candidates(
        measured_latencies, list(simulated.items())
    )
    return Figure7bResult(
        n_processes=n_processes,
        measured_latencies=measured_latencies,
        simulated_latencies_by_t_send=simulated,
        calibration=calibration,
        parameters=parameters,
    )


def format_figure7b(result: Figure7bResult) -> str:
    """Render the Figure 7(b) calibration table."""
    lines = [
        "Figure 7(b): calibration of t_send "
        f"(measured mean {result.measured_cdf().mean():.3f} ms, n={result.n_processes})",
        "t_send [ms]   simulated mean [ms]   KS distance",
    ]
    for candidate in result.calibration.candidates:
        lines.append(
            f"{candidate.t_send_ms:11.3f}   {candidate.mean_latency_ms:19.3f}   "
            f"{candidate.ks_distance:10.3f}"
        )
    lines.append(f"calibrated t_send = {result.best_t_send_ms} ms")
    return "\n".join(lines)


def figure7b_record(result: Figure7bResult) -> Dict[str, Any]:
    """The JSON artifact data of Figure 7(b)."""
    return {
        "n_processes": result.n_processes,
        "measured_mean_ms": result.measured_cdf().mean(),
        "measured_executions": len(result.measured_latencies),
        "candidates": [
            {
                "t_send_ms": candidate.t_send_ms,
                "simulated_mean_ms": candidate.mean_latency_ms,
                "ks_distance": candidate.ks_distance,
            }
            for candidate in result.calibration.candidates
        ],
        "best_t_send_ms": result.best_t_send_ms,
    }


def figure7b_rows(result: Figure7bResult):
    """The CSV series of Figure 7(b)."""
    header = ["t_send_ms", "simulated_mean_ms", "ks_distance"]
    rows = [
        [candidate.t_send_ms, candidate.mean_latency_ms, candidate.ks_distance]
        for candidate in result.calibration.candidates
    ]
    return header, rows


# ----------------------------------------------------------------------
# §5.2 mean latencies
# ----------------------------------------------------------------------
@dataclass
class LatencyMeansResult:
    """Mean latencies with confidence intervals (measurement and simulation)."""

    measured: Dict[int, ConfidenceInterval] = field(default_factory=dict)
    simulated: Dict[int, ConfidenceInterval] = field(default_factory=dict)

    def rows(self) -> List[tuple[int, float, Optional[float]]]:
        """``(n, measured_mean, simulated_mean_or_None)`` rows, sorted by n."""
        rows = []
        for n in sorted(self.measured):
            simulated = self.simulated.get(n)
            rows.append(
                (n, self.measured[n].mean, simulated.mean if simulated else None)
            )
        return rows


def _latency_means_sim_point(
    settings: ExperimentSettings,
    n_processes: int,
    parameters: SANParameters,
    point_seed: int,
) -> List[float]:
    """One §5.2 simulation point: SAN latencies for one cluster size."""
    simulation = SimulationRunner(
        SimulationConfig(
            n_processes=n_processes,
            scenario=Scenario.no_failures(),
            parameters=parameters,
            replications=settings.replications,
            seed=point_seed,
        )
    ).run()
    return simulation.latencies_ms


def latency_means_plan(
    settings: ExperimentSettings, parameters: SANParameters
) -> ReplicationPlan:
    """The §5.2 simulation sweep: one point per simulated cluster size."""
    points = tuple(
        SweepPoint.make(
            _latency_means_sim_point,
            kwargs={"settings": settings, "n_processes": n, "parameters": parameters},
            indices=(7, 5, index),
            label=f"latency-means n={n}",
        )
        for index, n in enumerate(settings.simulated_process_counts)
    )
    return ReplicationPlan(settings=settings, points=points, name="latency-means")


def run_latency_means(
    settings: ExperimentSettings | None = None,
    figure7a: Optional[Figure7aResult] = None,
    parameters: Optional[SANParameters] = None,
    calibrated_t_send_ms: Optional[float] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> LatencyMeansResult:
    """Compute the §5.2 mean-latency comparison (measurement vs. SAN)."""
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    return run_latency_means_in(
        context,
        figure7a=figure7a,
        parameters=parameters,
        calibrated_t_send_ms=calibrated_t_send_ms,
    )


def run_latency_means_in(
    context: ExperimentContext,
    figure7a: Optional[Figure7aResult] = None,
    parameters: Optional[SANParameters] = None,
    calibrated_t_send_ms: Optional[float] = None,
) -> LatencyMeansResult:
    """Context-based entry point of the §5.2 means comparison."""
    settings = context.settings
    figure7a = figure7a or run_figure7a_in(context)
    if parameters is None:
        parameters = run_figure6_in(context).san_parameters()
    if calibrated_t_send_ms is not None:
        parameters = parameters.with_t_send(calibrated_t_send_ms)
    result = LatencyMeansResult()
    for n, latencies in figure7a.latencies_by_n.items():
        result.measured[n] = confidence_interval(latencies)
    plan = latency_means_plan(settings, parameters)
    for point, latencies in context.iter(plan):
        n = dict(point.kwargs)["n_processes"]
        result.simulated[n] = confidence_interval(latencies)
    return result


def format_latency_means(result: LatencyMeansResult) -> str:
    """Render the §5.2 means as a small table."""
    lines = ["n   measured [ms]   simulated [ms]"]
    for n, measured, simulated in result.rows():
        simulated_text = f"{simulated:14.3f}" if simulated is not None else " " * 14
        lines.append(f"{n:<3d} {measured:14.3f} {simulated_text}")
    return "\n".join(lines)


def latency_means_record(result: LatencyMeansResult) -> Dict[str, Any]:
    """The JSON artifact data of the §5.2 means (with confidence intervals)."""

    def interval_dict(interval: Optional[ConfidenceInterval]) -> Optional[Dict[str, Any]]:
        if interval is None:
            return None
        return {
            "mean_ms": interval.mean,
            "half_width_ms": interval.half_width,
            "confidence": interval.confidence,
            "n": interval.n,
        }

    return {
        "rows": [
            {
                "n_processes": n,
                "measured": interval_dict(result.measured.get(n)),
                "simulated": interval_dict(result.simulated.get(n)),
            }
            for n in sorted(result.measured)
        ]
    }


def latency_means_rows(result: LatencyMeansResult):
    """The CSV series of the §5.2 means."""
    header = ["n_processes", "measured_mean_ms", "simulated_mean_ms"]
    return header, [list(row) for row in result.rows()]


# ----------------------------------------------------------------------
# Registered specs
# ----------------------------------------------------------------------
FIGURE7A_SPEC = register(
    ExperimentSpec(
        name="figure7a",
        description="Fig. 7(a): measured latency CDFs, no failures, no suspicions",
        build_plan=figure7a_plan,
        aggregate=aggregate_figure7a,
        render_text=format_figure7a,
        to_record=figure7a_record,
        to_rows=figure7a_rows,
    )
)

FIGURE7B_SPEC = register(
    ExperimentSpec(
        name="figure7b",
        description="Fig. 7(b): calibration of t_send against the measured CDF",
        run=run_figure7b_in,
        render_text=format_figure7b,
        to_record=figure7b_record,
        to_rows=figure7b_rows,
    )
)

MEANS_SPEC = register(
    ExperimentSpec(
        name="means",
        description="§5.2: mean latencies, measurement vs. SAN simulation",
        run=run_latency_means_in,
        render_text=format_latency_means,
        to_record=latency_means_record,
        to_rows=latency_means_rows,
    )
)
