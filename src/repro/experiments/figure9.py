"""Figure 9: latency vs. the failure-detection timeout T (§5.4).

Figure 9(a) plots the measured consensus latency against the timeout ``T``
for n = 3..11: each curve starts very high (frequent wrong suspicions force
extra rounds) and decreases to the no-suspicion latency as ``T`` grows.

Figure 9(b) compares, for n = 3 and 5, the measurements against SAN
simulations in which the failure detector is abstracted by its measured QoS
metrics, with either deterministic or exponential state-sojourn
distributions.  The paper's headline observation is that the SAN model
matches the measurements when the QoS is good (large ``T``) but
underestimates the latency when wrong suspicions are frequent, because it
assumes the failure-detector modules to be mutually independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.scenarios import Scenario
from repro.core.simulation import SimulationConfig, SimulationRunner
from repro.experiments.figure8 import Figure8Point, Figure8Result, measure_class3_point
from repro.experiments.registry import ExperimentContext, ExperimentSpec, register
from repro.experiments.runner import ReplicationPlan, SweepPoint
from repro.experiments.settings import ExperimentSettings, scaled_timeouts
from repro.sanmodels.fd_model import TransitionKind
from repro.sanmodels.parameters import SANParameters

#: The two FD sojourn-time distributions compared in Figure 9(b).
FD_KINDS: Tuple[TransitionKind, ...] = ("deterministic", "exponential")


@dataclass
class Figure9Point:
    """One (n, T) point of Figure 9."""

    n_processes: int
    timeout_ms: float
    measured_latency_ms: float
    simulated_latency_ms: Dict[str, float] = field(default_factory=dict)
    undecided: int = 0

    def simulated(self, kind: TransitionKind) -> Optional[float]:
        """The simulated latency for one FD distribution kind, if computed."""
        return self.simulated_latency_ms.get(kind)


@dataclass
class Figure9Result:
    """The Figure 9 sweep."""

    points: Dict[Tuple[int, float], Figure9Point] = field(default_factory=dict)

    def timeouts(self, n_processes: int) -> List[float]:
        """Timeouts measured for one process count, sorted."""
        return sorted(t for (n, t) in self.points if n == n_processes)

    def measured_series(self, n_processes: int) -> List[Tuple[float, float]]:
        """The measured (T, latency) series of Figure 9(a)."""
        return [
            (t, self.points[(n_processes, t)].measured_latency_ms)
            for t in self.timeouts(n_processes)
        ]

    def simulated_series(
        self, n_processes: int, kind: TransitionKind
    ) -> List[Tuple[float, float]]:
        """The simulated (T, latency) series of Figure 9(b) for one FD kind."""
        series = []
        for t in self.timeouts(n_processes):
            value = self.points[(n_processes, t)].simulated(kind)
            if value is not None:
                series.append((t, value))
        return series


def _figure9_point(
    settings: ExperimentSettings,
    n_processes: int,
    timeout_ms: float,
    parameters: SANParameters,
    simulate: bool,
    sim_seeds: Tuple[Tuple[str, int], ...],
    measurement: Optional[Figure8Point],
    point_seed: int,
) -> Figure9Point:
    """One Figure 9 point: the class-3 measurement (unless reused from a
    :class:`Figure8Result`) plus the SAN simulations fed by its QoS."""
    if measurement is None:
        measurement = measure_class3_point(
            settings,
            n_processes=n_processes,
            timeout_ms=timeout_ms,
            point_seed=point_seed,
        )
    latencies = measurement.latencies_ms
    measured_latency = sum(latencies) / len(latencies) if latencies else float("nan")
    point = Figure9Point(
        n_processes=n_processes,
        timeout_ms=timeout_ms,
        measured_latency_ms=measured_latency,
        undecided=measurement.undecided,
    )
    if simulate and measurement.qos is not None:
        for kind, seed in sim_seeds:
            simulation = SimulationRunner(
                SimulationConfig(
                    n_processes=n_processes,
                    scenario=Scenario.wrong_suspicions(timeout_ms=timeout_ms),
                    parameters=parameters,
                    fd_qos=measurement.qos,
                    fd_kind=kind,
                    replications=settings.replications,
                    seed=seed,
                )
            ).run()
            point.simulated_latency_ms[kind] = simulation.mean_latency_ms
    return point


def figure9_plan(
    settings: ExperimentSettings,
    parameters: SANParameters,
    figure8: Optional[Figure8Result] = None,
) -> ReplicationPlan:
    """The Figure 9 sweep: one point per (process count, timeout).

    The simulation seeds are derived at plan-build time with a stable index
    per FD kind (the previous code used ``hash(kind)``, which varies from
    run to run under hash randomisation and would have defeated caching).
    """
    points = []
    for n_index, n in enumerate(settings.class3_process_counts):
        simulate = n in settings.simulated_process_counts
        for t_index, timeout in enumerate(scaled_timeouts(settings.timeouts_ms, n)):
            measurement: Optional[Figure8Point] = None
            if figure8 is not None:
                measurement = figure8.points.get((n, timeout))
            sim_seeds = tuple(
                (kind, settings.point_seed(9, n_index, t_index, 90 + kind_index))
                for kind_index, kind in enumerate(FD_KINDS)
            )
            points.append(
                SweepPoint.make(
                    _figure9_point,
                    kwargs={
                        "settings": settings,
                        "n_processes": n,
                        "timeout_ms": timeout,
                        "parameters": parameters,
                        "simulate": simulate,
                        "sim_seeds": sim_seeds,
                        "measurement": measurement,
                    },
                    indices=(9, n_index, t_index),
                    label=f"figure9 n={n} T={timeout}",
                )
            )
    return ReplicationPlan(settings=settings, points=tuple(points), name="figure9")


def aggregate_figure9(
    settings: ExperimentSettings,
    pairs: Iterable[Tuple[SweepPoint, Any]],
) -> Figure9Result:
    """Assemble the Figure 9 result from streamed point results."""
    result = Figure9Result()
    for _point, point in pairs:
        result.points[(point.n_processes, point.timeout_ms)] = point
    return result


def _default_figure9_plan(settings: ExperimentSettings) -> ReplicationPlan:
    """The registry's plan: default SAN parameters, fresh measurements."""
    return figure9_plan(settings, SANParameters())


def run_figure9(
    settings: ExperimentSettings | None = None,
    figure8: Optional[Figure8Result] = None,
    parameters: Optional[SANParameters] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> Figure9Result:
    """Run the Figure 9 sweep (measurements, plus SAN simulations for the
    process counts in ``settings.simulated_process_counts``).

    Passing a :class:`Figure8Result` reuses its per-point measurements (the
    QoS estimation and the latency measurement come from the same runs, as
    in the paper); otherwise the class-3 measurements are run afresh.
    """
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    parameters = parameters or SANParameters()
    plan = figure9_plan(context.settings, parameters, figure8)
    return aggregate_figure9(context.settings, context.iter(plan))


def format_figure9(result: Figure9Result) -> str:
    """Render Figure 9 as a table: latency vs. T, measured and simulated."""
    lines = ["Figure 9: latency [ms] vs. failure-detection timeout T [ms]"]
    ns = sorted({n for (n, _t) in result.points})
    for n in ns:
        lines.append(f"n = {n}")
        lines.append("   T      meas.   sim.det.   sim.exp.")
        for t in result.timeouts(n):
            point = result.points[(n, t)]
            det = point.simulated("deterministic")
            exp = point.simulated("exponential")
            det_text = f"{det:9.3f}" if det is not None else "         "
            exp_text = f"{exp:9.3f}" if exp is not None else "         "
            lines.append(
                f"{t:6.1f} {point.measured_latency_ms:9.3f}  {det_text}  {exp_text}"
            )
        lines.append("")
    return "\n".join(lines)


def figure9_record(result: Figure9Result) -> Dict[str, Any]:
    """The JSON artifact data of Figure 9."""
    points = []
    for (n, t) in sorted(result.points):
        point = result.points[(n, t)]
        points.append(
            {
                "n_processes": n,
                "timeout_ms": t,
                "measured_latency_ms": point.measured_latency_ms,
                "simulated_latency_ms": {
                    kind: point.simulated(kind) for kind in FD_KINDS
                },
                "undecided": point.undecided,
            }
        )
    return {"fd_kinds": list(FD_KINDS), "points": points}


def figure9_rows(result: Figure9Result):
    """The CSV series of Figure 9."""
    header = [
        "n_processes",
        "timeout_ms",
        "measured_latency_ms",
        *(f"simulated_{kind}_ms" for kind in FD_KINDS),
    ]
    rows = []
    for (n, t) in sorted(result.points):
        point = result.points[(n, t)]
        rows.append(
            [n, t, point.measured_latency_ms]
            + [point.simulated(kind) for kind in FD_KINDS]
        )
    return header, rows


SPEC = register(
    ExperimentSpec(
        name="figure9",
        description="Fig. 9: latency vs. the timeout T, measured and SAN-simulated",
        build_plan=_default_figure9_plan,
        aggregate=aggregate_figure9,
        render_text=format_figure9,
        to_record=figure9_record,
        to_rows=figure9_rows,
    )
)
