"""Table 1: latency under crash scenarios (§5.3).

For every process count the paper reports the mean latency of three
scenarios: no crash, the first coordinator initially crashed (the algorithm
needs two rounds), and a participant initially crashed (one round, less
contention).  Measurements cover n = 3..11; SAN simulations cover n = 3 and
5.  The headline shapes are:

* a coordinator crash always increases the latency;
* a participant crash decreases it for n >= 5;
* for n = 3 the *measured* participant-crash latency is slightly higher than
  the crash-free one (the coordinator's unicast to the dead participant
  delays the copy sent to the live one), while the *simulated* one is lower
  because the SAN model sends the proposal as a single broadcast message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.scenarios import Scenario
from repro.core.simulation import SimulationConfig, SimulationRunner
from repro.experiments.figure7 import measure_latencies
from repro.experiments.registry import ExperimentContext, ExperimentSpec, register
from repro.experiments.runner import ReplicationPlan, SweepPoint
from repro.experiments.settings import ExperimentSettings
from repro.sanmodels.parameters import SANParameters

#: The three crash scenarios of Table 1, in the paper's row order.
SCENARIOS: Tuple[Tuple[str, Scenario], ...] = (
    ("no crash", Scenario.no_failures()),
    ("coordinator crash", Scenario.coordinator_crash()),
    ("participant crash", Scenario.participant_crash(1)),
)


@dataclass
class Table1Result:
    """Mean latencies per (scenario, n), measured and simulated."""

    measured: Dict[Tuple[str, int], float] = field(default_factory=dict)
    simulated: Dict[Tuple[str, int], float] = field(default_factory=dict)
    measured_process_counts: Tuple[int, ...] = ()
    simulated_process_counts: Tuple[int, ...] = ()

    def row(self, scenario_label: str) -> List[Optional[float]]:
        """One Table 1 row: measured (and simulated where available) means."""
        cells: List[Optional[float]] = []
        for n in self.measured_process_counts:
            cells.append(self.measured.get((scenario_label, n)))
            if n in self.simulated_process_counts:
                cells.append(self.simulated.get((scenario_label, n)))
        return cells

    def measured_mean(self, scenario_label: str, n: int) -> float:
        """Measured mean latency of one cell."""
        return self.measured[(scenario_label, n)]

    def simulated_mean(self, scenario_label: str, n: int) -> float:
        """Simulated mean latency of one cell."""
        return self.simulated[(scenario_label, n)]


def _table1_measured_point(
    settings: ExperimentSettings,
    scenario: Scenario,
    n_processes: int,
    point_seed: int,
) -> float:
    """One measured Table 1 cell: the mean latency of one (scenario, n)."""
    latencies = measure_latencies(
        settings,
        n_processes=n_processes,
        scenario=scenario,
        executions=settings.executions,
        point_seed=point_seed,
    )
    return sum(latencies) / len(latencies)


def _table1_simulated_point(
    settings: ExperimentSettings,
    scenario: Scenario,
    n_processes: int,
    parameters: SANParameters,
    point_seed: int,
) -> float:
    """One simulated Table 1 cell: the SAN mean latency of one (scenario, n)."""
    simulation = SimulationRunner(
        SimulationConfig(
            n_processes=n_processes,
            scenario=scenario,
            parameters=parameters,
            replications=settings.replications,
            seed=point_seed,
        )
    ).run()
    return simulation.mean_latency_ms


def table1_plan(
    settings: ExperimentSettings, parameters: SANParameters
) -> ReplicationPlan:
    """The Table 1 grid: measured and simulated cells as independent points.

    Each point's label starts with ``measured``/``simulated`` and its kwargs
    carry the scenario label, so the aggregation in :func:`run_table1` can
    route results without re-deriving the grid.
    """
    points = []
    for scenario_index, (label, scenario) in enumerate(SCENARIOS):
        for n_index, n in enumerate(settings.measured_process_counts):
            points.append(
                SweepPoint.make(
                    _table1_measured_point,
                    kwargs={"settings": settings, "scenario": scenario, "n_processes": n},
                    indices=(1, scenario_index, n_index),
                    label=f"measured {label} n={n}",
                )
            )
        for n_index, n in enumerate(settings.simulated_process_counts):
            points.append(
                SweepPoint.make(
                    _table1_simulated_point,
                    kwargs={
                        "settings": settings,
                        "scenario": scenario,
                        "n_processes": n,
                        "parameters": parameters,
                    },
                    indices=(1, scenario_index, n_index, 99),
                    label=f"simulated {label} n={n}",
                )
            )
    return ReplicationPlan(settings=settings, points=tuple(points), name="table1")


def aggregate_table1(
    settings: ExperimentSettings,
    pairs: Iterable[Tuple[SweepPoint, Any]],
) -> Table1Result:
    """Assemble the Table 1 result, routing cells by point function."""
    result = Table1Result(
        measured_process_counts=settings.measured_process_counts,
        simulated_process_counts=settings.simulated_process_counts,
    )
    label_by_scenario = {scenario: label for label, scenario in SCENARIOS}
    for point, mean in pairs:
        kwargs = dict(point.kwargs)
        cell = (label_by_scenario[kwargs["scenario"]], kwargs["n_processes"])
        if point.func is _table1_measured_point:
            result.measured[cell] = mean
        else:
            result.simulated[cell] = mean
    return result


def _default_table1_plan(settings: ExperimentSettings) -> ReplicationPlan:
    """The registry's plan: the default SAN parameters."""
    return table1_plan(settings, SANParameters())


def run_table1(
    settings: ExperimentSettings | None = None,
    parameters: Optional[SANParameters] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> Table1Result:
    """Regenerate Table 1 (measurements and SAN simulations)."""
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    plan = table1_plan(context.settings, parameters or SANParameters())
    return aggregate_table1(context.settings, context.iter(plan))


def format_table1(result: Table1Result) -> str:
    """Render Table 1 in the paper's layout (meas. and sim. columns)."""
    header_cells = []
    for n in result.measured_process_counts:
        header_cells.append(f"n={n} meas.")
        if n in result.simulated_process_counts:
            header_cells.append(f"n={n} sim.")
    lines = ["latency [ms]        " + "  ".join(f"{cell:>10}" for cell in header_cells)]
    for label, _scenario in SCENARIOS:
        cells = result.row(label)
        rendered = "  ".join(
            f"{cell:10.3f}" if cell is not None else " " * 10 for cell in cells
        )
        lines.append(f"{label:<20}{rendered}")
    return "\n".join(lines)


def table1_record(result: Table1Result) -> Dict[str, Any]:
    """The JSON artifact data of Table 1."""
    cells = []
    for label, _scenario in SCENARIOS:
        for n in result.measured_process_counts:
            cells.append(
                {
                    "scenario": label,
                    "n_processes": n,
                    "measured_ms": result.measured.get((label, n)),
                    "simulated_ms": result.simulated.get((label, n)),
                }
            )
    return {
        "measured_process_counts": list(result.measured_process_counts),
        "simulated_process_counts": list(result.simulated_process_counts),
        "cells": cells,
    }


def table1_rows(result: Table1Result):
    """The CSV series of Table 1: one row per (scenario, n) cell."""
    header = ["scenario", "n_processes", "measured_ms", "simulated_ms"]
    rows = [
        [
            label,
            n,
            result.measured.get((label, n)),
            result.simulated.get((label, n)),
        ]
        for label, _scenario in SCENARIOS
        for n in result.measured_process_counts
    ]
    return header, rows


SPEC = register(
    ExperimentSpec(
        name="table1",
        description="Table 1: latency under crash scenarios, measured and simulated",
        build_plan=_default_table1_plan,
        aggregate=aggregate_table1,
        render_text=format_table1,
        to_record=table1_record,
        to_rows=table1_rows,
    )
)
