"""Table 1: latency under crash scenarios (§5.3).

For every process count the paper reports the mean latency of three
scenarios: no crash, the first coordinator initially crashed (the algorithm
needs two rounds), and a participant initially crashed (one round, less
contention).  Measurements cover n = 3..11; SAN simulations cover n = 3 and
5.  The headline shapes are:

* a coordinator crash always increases the latency;
* a participant crash decreases it for n >= 5;
* for n = 3 the *measured* participant-crash latency is slightly higher than
  the crash-free one (the coordinator's unicast to the dead participant
  delays the copy sent to the live one), while the *simulated* one is lower
  because the SAN model sends the proposal as a single broadcast message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.scenarios import Scenario
from repro.core.simulation import SimulationConfig, SimulationRunner
from repro.experiments.figure7 import measure_latencies
from repro.experiments.settings import ExperimentSettings
from repro.sanmodels.parameters import SANParameters

#: The three crash scenarios of Table 1, in the paper's row order.
SCENARIOS: Tuple[Tuple[str, Scenario], ...] = (
    ("no crash", Scenario.no_failures()),
    ("coordinator crash", Scenario.coordinator_crash()),
    ("participant crash", Scenario.participant_crash(1)),
)


@dataclass
class Table1Result:
    """Mean latencies per (scenario, n), measured and simulated."""

    measured: Dict[Tuple[str, int], float] = field(default_factory=dict)
    simulated: Dict[Tuple[str, int], float] = field(default_factory=dict)
    measured_process_counts: Tuple[int, ...] = ()
    simulated_process_counts: Tuple[int, ...] = ()

    def row(self, scenario_label: str) -> List[Optional[float]]:
        """One Table 1 row: measured (and simulated where available) means."""
        cells: List[Optional[float]] = []
        for n in self.measured_process_counts:
            cells.append(self.measured.get((scenario_label, n)))
            if n in self.simulated_process_counts:
                cells.append(self.simulated.get((scenario_label, n)))
        return cells

    def measured_mean(self, scenario_label: str, n: int) -> float:
        """Measured mean latency of one cell."""
        return self.measured[(scenario_label, n)]

    def simulated_mean(self, scenario_label: str, n: int) -> float:
        """Simulated mean latency of one cell."""
        return self.simulated[(scenario_label, n)]


def run_table1(
    settings: ExperimentSettings | None = None,
    parameters: Optional[SANParameters] = None,
) -> Table1Result:
    """Regenerate Table 1 (measurements and SAN simulations)."""
    settings = settings or ExperimentSettings.from_environment()
    result = Table1Result(
        measured_process_counts=settings.measured_process_counts,
        simulated_process_counts=settings.simulated_process_counts,
    )
    parameters = parameters or SANParameters()

    for scenario_index, (label, scenario) in enumerate(SCENARIOS):
        for n_index, n in enumerate(settings.measured_process_counts):
            latencies = measure_latencies(
                settings,
                n_processes=n,
                scenario=scenario,
                executions=settings.executions,
                point_seed=settings.point_seed(1, scenario_index, n_index),
            )
            result.measured[(label, n)] = sum(latencies) / len(latencies)
        for n_index, n in enumerate(settings.simulated_process_counts):
            simulation = SimulationRunner(
                SimulationConfig(
                    n_processes=n,
                    scenario=scenario,
                    parameters=parameters,
                    replications=settings.replications,
                    seed=settings.point_seed(1, scenario_index, n_index, 99),
                )
            ).run()
            result.simulated[(label, n)] = simulation.mean_latency_ms
    return result


def format_table1(result: Table1Result) -> str:
    """Render Table 1 in the paper's layout (meas. and sim. columns)."""
    header_cells = []
    for n in result.measured_process_counts:
        header_cells.append(f"n={n} meas.")
        if n in result.simulated_process_counts:
            header_cells.append(f"n={n} sim.")
    lines = ["latency [ms]        " + "  ".join(f"{cell:>10}" for cell in header_cells)]
    for label, _scenario in SCENARIOS:
        cells = result.row(label)
        rendered = "  ".join(
            f"{cell:10.3f}" if cell is not None else " " * 10 for cell in cells
        )
        lines.append(f"{label:<20}{rendered}")
    return "\n".join(lines)
