"""Fault-load scenario sweep: consensus under injected faults.

The paper validates its SAN models under crash fault-loads only (§2.4);
this sweep opens the scenario space: for a grid of **loss rate x fault
load x process count**, it measures consensus latency on the testbed
simulator with the corresponding :class:`~repro.faults.spec.FaultLoad`
injected, reports per-fault drop/duplication counters from the transport
pipeline, and -- for the pure-loss points of the simulated process counts
-- solves the SAN model with the matching ``loss_rate`` so that the
model-vs-measurement comparison stays apples-to-apples.

Like every other generator, the grid is a
:class:`~repro.experiments.runner.ReplicationPlan`, so the sweep accepts
``jobs=`` (process parallelism, bit-identical results) and ``cache_dir=``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.measurement import MeasurementConfig, MeasurementRunner
from repro.core.scenarios import Scenario
from repro.core.simulation import SimulationConfig, SimulationRunner
from repro.experiments.registry import ExperimentContext, ExperimentSpec, register
from repro.experiments.runner import ReplicationPlan, SweepPoint
from repro.experiments.settings import ExperimentSettings
from repro.faults.spec import (
    CpuLoadBurst,
    CrashRecovery,
    DelaySpike,
    FaultLoad,
    MessageDuplication,
    MessageLoss,
    NetworkPartition,
)
from repro.sanmodels.parameters import SANParameters

#: The fault-load axis of the sweep, in report order.
FAULT_LOAD_KINDS: Tuple[str, ...] = (
    "none",
    "duplication",
    "reorder",
    "partition",
    "crash-recovery",
    "cpu-burst",
)

#: The loss-rate axis of the sweep (per unicast copy, at the wire stage).
DEFAULT_LOSS_RATES: Tuple[float, ...] = (0.0, 0.01, 0.05)


def build_fault_load(
    kind: str, loss_rate: float, n_processes: int, horizon_ms: float
) -> FaultLoad:
    """The concrete fault load of one sweep point.

    Time-windowed faults (partition, crash-recovery, CPU burst) are active
    during the middle third of the experiment horizon, so every run has a
    fault-free lead-in and a recovery tail.
    """
    window = (horizon_ms / 3.0, 2.0 * horizon_ms / 3.0)
    faults: List = []
    if loss_rate > 0.0:
        faults.append(MessageLoss(rate=loss_rate))
    if kind == "none":
        pass
    elif kind == "duplication":
        faults.append(MessageDuplication(rate=0.05))
    elif kind == "reorder":
        faults.append(DelaySpike(rate=0.05, extra_low_ms=0.5, extra_high_ms=5.0))
    elif kind == "partition":
        # Isolate the first coordinator; the partition heals at window end.
        rest = tuple(range(1, n_processes))
        faults.append(
            NetworkPartition(groups=((0,), rest), start_ms=window[0], end_ms=window[1])
        )
    elif kind == "crash-recovery":
        faults.append(
            CrashRecovery(
                process_id=n_processes - 1,
                crash_at_ms=window[0],
                recover_at_ms=window[1],
            )
        )
    elif kind == "cpu-burst":
        faults.append(
            CpuLoadBurst(start_ms=window[0], end_ms=window[1], slowdown=3.0)
        )
    else:
        raise ValueError(f"unknown fault-load kind {kind!r}")
    return FaultLoad(faults=tuple(faults), name=kind)


@dataclass
class FaultSweepPoint:
    """One (n, fault load, loss rate) point of the sweep."""

    n_processes: int
    load_kind: str
    loss_rate: float
    executions: int
    mean_latency_ms: float
    undecided: int
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    messages_duplicated: int = 0
    fault_counters: Dict[str, int] = field(default_factory=dict)
    san_latency_ms: Optional[float] = None


@dataclass
class FaultSweepResult:
    """The full fault sweep, indexed by (n, load kind, loss rate)."""

    points: Dict[Tuple[int, str, float], FaultSweepPoint] = field(default_factory=dict)

    def point(
        self, n_processes: int, load_kind: str, loss_rate: float
    ) -> FaultSweepPoint:
        """The point of one grid combination."""
        return self.points[(n_processes, load_kind, loss_rate)]

    def process_counts(self) -> List[int]:
        """The process counts present, sorted."""
        return sorted({n for (n, _kind, _rate) in self.points})

    def loss_rates(self) -> List[float]:
        """The loss rates present, sorted."""
        return sorted({rate for (_n, _kind, rate) in self.points})

    def total_drops_by_cause(self) -> Dict[str, int]:
        """Drop counters summed over every point, by ``stage:cause``."""
        totals: Dict[str, int] = {}
        for point in self.points.values():
            for cause, count in point.drops_by_cause.items():
                totals[cause] = totals.get(cause, 0) + count
        return totals


def _fault_sweep_point(
    settings: ExperimentSettings,
    n_processes: int,
    load_kind: str,
    loss_rate: float,
    simulate: bool,
    sim_seed: int,
    point_seed: int,
) -> FaultSweepPoint:
    """One sweep point (module-level so the process pool can pickle it)."""
    executions = settings.class3_executions
    separation_ms = 10.0
    horizon_ms = 1.0 + executions * separation_ms
    load = build_fault_load(load_kind, loss_rate, n_processes, horizon_ms)
    config = MeasurementConfig(
        cluster=settings.cluster_for(n_processes, point_seed),
        scenario=Scenario.no_failures(),
        executions=executions,
        separation_ms=separation_ms,
        extra_time_ms=max(1_000.0, horizon_ms),
        fault_load=load,
    )
    result = MeasurementRunner(config).run()
    point = FaultSweepPoint(
        n_processes=n_processes,
        load_kind=load_kind,
        loss_rate=loss_rate,
        executions=executions,
        mean_latency_ms=result.mean_latency_ms,
        undecided=result.undecided,
        messages_sent=result.messages_sent,
        messages_delivered=result.messages_delivered,
        messages_dropped=result.messages_dropped,
        drops_by_cause=result.drops_by_cause,
        messages_duplicated=result.messages_duplicated,
        fault_counters=(
            result.fault_stats.as_dict() if result.fault_stats is not None else {}
        ),
    )
    if simulate:
        simulation = SimulationRunner(
            SimulationConfig(
                n_processes=n_processes,
                scenario=Scenario.no_failures(),
                parameters=SANParameters().with_faults(loss_rate=loss_rate),
                replications=settings.replications,
                seed=sim_seed,
            )
        ).run()
        point.san_latency_ms = simulation.mean_latency_ms
    return point


def fault_sweep_plan(
    settings: ExperimentSettings,
    loss_rates: Tuple[float, ...] = DEFAULT_LOSS_RATES,
    load_kinds: Tuple[str, ...] = FAULT_LOAD_KINDS,
) -> ReplicationPlan:
    """The sweep: one point per (process count, fault load, loss rate).

    The SAN model is solved alongside the measurement for the pure-loss
    points (``load == "none"``) of the simulated process counts -- the
    only fault axis with a faithful SAN analogue
    (:meth:`~repro.sanmodels.parameters.SANParameters.with_faults`).
    """
    points = []
    for n_index, n in enumerate(settings.simulated_process_counts):
        for load_index, kind in enumerate(load_kinds):
            for loss_index, loss_rate in enumerate(loss_rates):
                simulate = kind == "none"
                points.append(
                    SweepPoint.make(
                        _fault_sweep_point,
                        kwargs={
                            "settings": settings,
                            "n_processes": n,
                            "load_kind": kind,
                            "loss_rate": loss_rate,
                            "simulate": simulate,
                            "sim_seed": settings.point_seed(
                                12, n_index, load_index, loss_index, 99
                            ),
                        },
                        indices=(12, n_index, load_index, loss_index),
                        label=f"faultsweep n={n} load={kind} loss={loss_rate}",
                    )
                )
    return ReplicationPlan(settings=settings, points=tuple(points), name="faultsweep")


def aggregate_fault_sweep(
    settings: ExperimentSettings,
    pairs: Iterable[Tuple[SweepPoint, Any]],
) -> FaultSweepResult:
    """Assemble the fault-sweep result from streamed point results."""
    result = FaultSweepResult()
    for _point, point in pairs:
        result.points[(point.n_processes, point.load_kind, point.loss_rate)] = point
    return result


def run_fault_sweep(
    settings: ExperimentSettings | None = None,
    loss_rates: Tuple[float, ...] = DEFAULT_LOSS_RATES,
    load_kinds: Tuple[str, ...] = FAULT_LOAD_KINDS,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> FaultSweepResult:
    """Run the fault sweep."""
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    plan = fault_sweep_plan(context.settings, loss_rates=loss_rates, load_kinds=load_kinds)
    return aggregate_fault_sweep(context.settings, context.iter(plan))


def format_fault_sweep(result: FaultSweepResult) -> str:
    """Render the sweep: latency, drop and duplication counters per point."""
    lines = [
        "Fault sweep: consensus latency under injected fault loads",
        "n    load            loss   mean [ms]   undec.   dropped   dup.   SAN [ms]",
    ]
    for (n, kind, rate) in sorted(result.points):
        point = result.points[(n, kind, rate)]
        mean = (
            f"{point.mean_latency_ms:9.3f}"
            if math.isfinite(point.mean_latency_ms)
            else "      nan"
        )
        san = f"{point.san_latency_ms:8.3f}" if point.san_latency_ms is not None else "        "
        lines.append(
            f"{n:<4d} {kind:<15s} {rate:5.2f}  {mean}   {point.undecided:6d}   "
            f"{point.messages_dropped:7d}   {point.messages_duplicated:4d}   {san}"
        )
    lines.append("")
    lines.append("drops by stage:cause (all points):")
    totals = result.total_drops_by_cause()
    if not totals:
        lines.append("  (none)")
    for cause in sorted(totals):
        lines.append(f"  {cause:<28s} {totals[cause]}")
    return "\n".join(lines)


def fault_sweep_record(result: FaultSweepResult) -> Dict[str, Any]:
    """The JSON artifact data of the fault sweep."""
    points = []
    for key in sorted(result.points):
        point = result.points[key]
        points.append(
            {
                "n_processes": point.n_processes,
                "load_kind": point.load_kind,
                "loss_rate": point.loss_rate,
                "executions": point.executions,
                "mean_latency_ms": point.mean_latency_ms,
                "undecided": point.undecided,
                "messages_sent": point.messages_sent,
                "messages_delivered": point.messages_delivered,
                "messages_dropped": point.messages_dropped,
                "messages_duplicated": point.messages_duplicated,
                "drops_by_cause": dict(sorted(point.drops_by_cause.items())),
                "fault_counters": dict(sorted(point.fault_counters.items())),
                "san_latency_ms": point.san_latency_ms,
            }
        )
    return {
        "points": points,
        "total_drops_by_cause": dict(sorted(result.total_drops_by_cause().items())),
    }


def fault_sweep_rows(result: FaultSweepResult):
    """The CSV series of the fault sweep."""
    header = [
        "n_processes",
        "load_kind",
        "loss_rate",
        "mean_latency_ms",
        "undecided",
        "messages_dropped",
        "messages_duplicated",
        "san_latency_ms",
    ]
    rows = []
    for key in sorted(result.points):
        point = result.points[key]
        rows.append(
            [
                point.n_processes,
                point.load_kind,
                point.loss_rate,
                point.mean_latency_ms,
                point.undecided,
                point.messages_dropped,
                point.messages_duplicated,
                point.san_latency_ms,
            ]
        )
    return header, rows


SPEC = register(
    ExperimentSpec(
        name="faultsweep",
        description="Fault sweep: consensus latency under injected fault loads",
        build_plan=fault_sweep_plan,
        aggregate=aggregate_fault_sweep,
        render_text=format_fault_sweep,
        to_record=fault_sweep_record,
        to_rows=fault_sweep_rows,
    )
)
