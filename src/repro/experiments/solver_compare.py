"""Solver cross-comparison sweep: analytic vs simulative agreement.

The analytic CTMC solver (:mod:`repro.san.analytic`) and the simulative
solver (:mod:`repro.san.solver`) must agree wherever both apply: on models
whose timed activities are all exponential.  This sweep solves each model
of a small validation suite **three ways** -- analytically, simulatively
with the scalar executor, and simulatively with the lock-step batched
executor (``strategy="batched"``) -- and reports, per reward variable,
the exact analytic value, each simulative mean with its 95% confidence
interval, whether the exact value falls inside the intervals, and the
wall-clock speedups.  The scalar and batched legs share replication
seeds, so their means are bit-identical; a divergence here is an
executor-fidelity bug, not statistical noise.

The suite covers the three layers of the paper's model stack
(:mod:`repro.sanmodels.exponential`):

* ``fd-pair``       -- the two-state failure-detector module (§3.4), an
  ergodic chain whose stationary suspect probability is known in closed
  form;
* ``unicast-burst`` -- a message burst through the three-stage network
  model (§3.3), an absorbing chain exercising resource contention;
* ``consensus-n3``  -- the full composed consensus model (§3.2) with
  n = 3, first-passage latency plus an impulse (completion-count) reward.

Like every other generator, the sweep is a
:class:`~repro.experiments.runner.ReplicationPlan`: the expensive
simulative solutions fan out over ``jobs`` workers with bit-identical
results, and ``cache_dir`` memoises per-model results on disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.san.analytic import AnalyticSolver
from repro.san.marking import Marking
from repro.san.rewards import (
    ActivityCounter,
    FirstPassageTime,
    IntervalOfTime,
    RewardVariable,
)
from repro.san.solver import SimulativeSolver
from repro.sanmodels.consensus_model import consensus_stop_predicate, latency_reward
from repro.sanmodels.exponential import (
    DELIVERED_PLACE,
    exponential_consensus_model,
    exponential_fd_pair_model,
    exponential_unicast_burst_model,
)
from repro.sanmodels.fd_model import FDModelSettings, suspect_place
from repro.experiments.registry import ExperimentContext, ExperimentSpec, register
from repro.experiments.runner import ReplicationPlan, SweepPoint
from repro.experiments.settings import ExperimentSettings

#: Confidence level of the agreement check (the cross-validation contract:
#: the exact value must fall inside the simulative 95% interval).
COMPARISON_CONFIDENCE = 0.95

#: Burst size of the ``unicast-burst`` model.
BURST_MESSAGES = 4


# ----------------------------------------------------------------------
# The validation-model suite (module-level, so worker processes can
# pickle every factory).
# ----------------------------------------------------------------------
def _fd_settings() -> FDModelSettings:
    return FDModelSettings(
        mistake_recurrence_time=10.0, mistake_duration=1.0, kind="exponential"
    )


def fd_pair_model():
    """The exponential failure-detector pair model."""
    return exponential_fd_pair_model(_fd_settings())


def _suspect_rate(marking: Marking) -> float:
    return float(marking[suspect_place(0, 1)])


def fd_pair_rewards() -> Sequence[RewardVariable]:
    """Fraction of the horizon spent in the *suspect* state."""
    return [IntervalOfTime(_suspect_rate, normalize=True, name="suspect_fraction")]


def burst_model():
    """The exponential unicast burst model."""
    return exponential_unicast_burst_model(messages=BURST_MESSAGES)


def _all_delivered(marking: Marking) -> bool:
    return marking[DELIVERED_PLACE] >= BURST_MESSAGES


def burst_rewards() -> Sequence[RewardVariable]:
    """Time to deliver the whole burst, plus the completion count."""
    return [
        FirstPassageTime(_all_delivered, name="all_delivered"),
        ActivityCounter(name="completions"),
    ]


def consensus3_model():
    """The exponential n = 3 consensus model."""
    return exponential_consensus_model(3)


def consensus_rewards() -> Sequence[RewardVariable]:
    """First-decision latency, plus the completion count."""
    return [latency_reward(), ActivityCounter(name="completions")]


@dataclass(frozen=True)
class CompareModelSpec:
    """One validation model: factories plus solving configuration."""

    key: str
    description: str
    model_factory: Callable
    reward_factory: Callable[[], Sequence[RewardVariable]]
    stop_predicate: Optional[Callable[[Marking], bool]]
    max_time: float
    reward_names: Tuple[str, ...]


#: The validation suite, in report order.
COMPARE_MODELS: Tuple[CompareModelSpec, ...] = (
    CompareModelSpec(
        key="fd-pair",
        description="FD trust/suspect module (ergodic, horizon 200 ms)",
        model_factory=fd_pair_model,
        reward_factory=fd_pair_rewards,
        stop_predicate=None,
        max_time=200.0,
        reward_names=("suspect_fraction",),
    ),
    CompareModelSpec(
        key="unicast-burst",
        description=f"{BURST_MESSAGES}-message unicast burst (absorbing)",
        model_factory=burst_model,
        reward_factory=burst_rewards,
        stop_predicate=_all_delivered,
        max_time=1_000.0,
        reward_names=("all_delivered", "completions"),
    ),
    CompareModelSpec(
        key="consensus-n3",
        description="composed consensus model, n=3 (absorbing)",
        model_factory=consensus3_model,
        reward_factory=consensus_rewards,
        stop_predicate=consensus_stop_predicate,
        max_time=10_000.0,
        reward_names=("latency", "completions"),
    ),
)


def compare_model_spec(key: str) -> CompareModelSpec:
    """Look a validation model up by key."""
    for spec in COMPARE_MODELS:
        if spec.key == key:
            return spec
    raise KeyError(f"unknown solver-compare model {key!r}")


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class RewardComparison:
    """Analytic-vs-simulative agreement for one reward variable.

    ``batched_mean``/``batched_within_ci`` report the lock-step batched
    executor's leg; ``batched_mean`` must equal ``simulative_mean``
    bit-for-bit (shared replication seeds), so a mismatch flags an
    executor-fidelity bug.
    """

    reward: str
    analytic: float
    simulative_mean: float
    ci_half_width: float
    within_ci: bool
    sample_size: int
    batched_mean: float = float("nan")
    batched_within_ci: bool = False


@dataclass
class SolverComparePoint:
    """All three solutions of one validation model."""

    key: str
    description: str
    n_states: int
    replications: int
    analytic_seconds: float
    simulative_seconds: float
    batched_seconds: float = float("nan")
    rewards: List[RewardComparison] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Simulative wall-clock divided by analytic wall-clock."""
        if self.analytic_seconds <= 0:
            return float("inf")
        return self.simulative_seconds / self.analytic_seconds

    @property
    def batched_speedup(self) -> float:
        """Scalar simulative wall-clock divided by batched wall-clock."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.simulative_seconds / self.batched_seconds

    @property
    def all_within_ci(self) -> bool:
        """``True`` if every reward's exact value fell inside the CIs."""
        return all(
            comparison.within_ci and comparison.batched_within_ci
            for comparison in self.rewards
        )


@dataclass
class SolverCompareResult:
    """The whole comparison sweep, keyed by model."""

    points: Dict[str, SolverComparePoint] = field(default_factory=dict)

    def point(self, key: str) -> SolverComparePoint:
        """The comparison of one validation model."""
        return self.points[key]

    @property
    def all_within_ci(self) -> bool:
        """``True`` if every model's rewards all agreed."""
        return all(point.all_within_ci for point in self.points.values())


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _solver_compare_point(
    settings: ExperimentSettings,
    key: str,
    point_seed: int,
) -> SolverComparePoint:
    """Solve one validation model both ways (module-level, picklable).

    ``point_seed`` -- injected by the sweep runner from the point's
    indices -- seeds the simulative replications; the analytic solution
    needs no randomness.
    """
    spec = compare_model_spec(key)

    started = time.perf_counter()  # repro: ignore[DET004] measures solver wall-clock, the quantity this experiment reports; not simulation state
    analytic = AnalyticSolver(
        model_factory=spec.model_factory,
        reward_factory=spec.reward_factory,
        stop_predicate=spec.stop_predicate,
        max_time=spec.max_time,
        confidence=COMPARISON_CONFIDENCE,
    )
    analytic_result = analytic.solve()
    analytic_seconds = time.perf_counter() - started  # repro: ignore[DET004] measures solver wall-clock, the quantity this experiment reports; not simulation state

    replications = settings.replications
    started = time.perf_counter()  # repro: ignore[DET004] measures solver wall-clock, the quantity this experiment reports; not simulation state
    simulative = SimulativeSolver(
        model_factory=spec.model_factory,
        reward_factory=spec.reward_factory,
        stop_predicate=spec.stop_predicate,
        max_time=spec.max_time,
        seed=point_seed,
        confidence=COMPARISON_CONFIDENCE,
        # All comparison models come from repro.sanmodels builders, which
        # produce stateless models safe to share across replications.
        reuse_model=True,
    )
    simulative_result = simulative.solve(replications=replications)
    simulative_seconds = time.perf_counter() - started  # repro: ignore[DET004] measures solver wall-clock, the quantity this experiment reports; not simulation state

    started = time.perf_counter()  # repro: ignore[DET004] measures solver wall-clock, the quantity this experiment reports; not simulation state
    batched = SimulativeSolver(
        model_factory=spec.model_factory,
        reward_factory=spec.reward_factory,
        stop_predicate=spec.stop_predicate,
        max_time=spec.max_time,
        seed=point_seed,
        confidence=COMPARISON_CONFIDENCE,
        reuse_model=True,
    )
    batched_result = batched.solve(replications=replications, strategy="batched")
    batched_seconds = time.perf_counter() - started  # repro: ignore[DET004] measures solver wall-clock, the quantity this experiment reports; not simulation state

    point = SolverComparePoint(
        key=spec.key,
        description=spec.description,
        n_states=analytic_result.n_states,
        replications=replications,
        analytic_seconds=analytic_seconds,
        simulative_seconds=simulative_seconds,
        batched_seconds=batched_seconds,
    )
    for reward_name in spec.reward_names:
        exact = analytic_result.mean(reward_name)
        interval = simulative_result.interval(reward_name)
        batched_interval = batched_result.interval(reward_name)
        point.rewards.append(
            RewardComparison(
                reward=reward_name,
                analytic=exact,
                simulative_mean=interval.mean,
                ci_half_width=interval.half_width,
                within_ci=interval.contains(exact),
                sample_size=simulative_result.sample_size(reward_name),
                batched_mean=batched_interval.mean,
                batched_within_ci=batched_interval.contains(exact),
            )
        )
    return point


def solver_compare_plan(settings: ExperimentSettings) -> ReplicationPlan:
    """The sweep: one point per validation model."""
    points = []
    for model_index, spec in enumerate(COMPARE_MODELS):
        points.append(
            SweepPoint.make(
                _solver_compare_point,
                kwargs={"settings": settings, "key": spec.key},
                indices=(13, model_index),
                label=f"solvercompare {spec.key}",
            )
        )
    return ReplicationPlan(settings=settings, points=tuple(points), name="solvercompare")


def aggregate_solver_compare(
    settings: ExperimentSettings,
    pairs: Iterable[Tuple[SweepPoint, Any]],
) -> SolverCompareResult:
    """Assemble the comparison result from streamed point results."""
    result = SolverCompareResult()
    for _point, point in pairs:
        result.points[point.key] = point
    return result


def run_solver_compare(
    settings: ExperimentSettings | None = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> SolverCompareResult:
    """Run the comparison sweep."""
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    plan = solver_compare_plan(context.settings)
    return aggregate_solver_compare(context.settings, context.iter(plan))


def format_solver_compare(result: SolverCompareResult) -> str:
    """Render the comparison: exact value vs simulative CI, per reward.

    The statistics table is a deterministic function of the settings and
    seed (``jobs`` never changes it); the trailing timing block is
    wall-clock and varies between runs, mirroring the per-experiment
    ``[... regenerated in X s]`` line the CLI already prints.
    """
    lines = [
        "Solver comparison: analytic (exact CTMC) vs simulative (scalar + batched)",
        "model           reward            analytic   simulative (95% CI)      in CI"
        "   batched     in CI   states",
    ]
    for spec in COMPARE_MODELS:
        if spec.key not in result.points:
            continue
        point = result.points[spec.key]
        for index, comparison in enumerate(point.rewards):
            tail = f"   {point.n_states:>6}" if index == 0 else ""
            lines.append(
                f"{point.key if index == 0 else '':<15s} "
                f"{comparison.reward:<16s} "
                f"{comparison.analytic:9.4f}   "
                f"{comparison.simulative_mean:9.4f} ± {comparison.ci_half_width:<8.4f}   "
                f"{'yes' if comparison.within_ci else 'NO ':<5s} "
                f"{comparison.batched_mean:9.4f}   "
                f"{'yes' if comparison.batched_within_ci else 'NO ':<5s}{tail}"
            )
    lines.append("")
    verdict = "agree" if result.all_within_ci else "DISAGREE"
    lines.append(
        f"solvers {verdict} on all models "
        f"({sum(len(p.rewards) for p in result.points.values())} rewards checked)"
    )
    for spec in COMPARE_MODELS:
        if spec.key not in result.points:
            continue
        point = result.points[spec.key]
        lines.append(
            f"[{point.key}: analytic {point.analytic_seconds * 1e3:.1f} ms vs "
            f"simulative {point.simulative_seconds:.2f} s "
            f"({point.replications} replications) -- {point.speedup:.0f}x; "
            f"batched {point.batched_seconds:.2f} s -- "
            f"{point.batched_speedup:.1f}x over scalar]"
        )
    return "\n".join(lines)


def solver_compare_record(result: SolverCompareResult) -> Dict[str, Any]:
    """The JSON artifact data of the solver comparison."""
    models = []
    for spec in COMPARE_MODELS:
        if spec.key not in result.points:
            continue
        point = result.points[spec.key]
        models.append(
            {
                "key": point.key,
                "description": point.description,
                "n_states": point.n_states,
                "replications": point.replications,
                "analytic_seconds": point.analytic_seconds,
                "simulative_seconds": point.simulative_seconds,
                "batched_seconds": point.batched_seconds,
                "speedup": point.speedup,
                "batched_speedup": point.batched_speedup,
                "all_within_ci": point.all_within_ci,
                "rewards": [
                    {
                        "reward": comparison.reward,
                        "analytic": comparison.analytic,
                        "simulative_mean": comparison.simulative_mean,
                        "ci_half_width": comparison.ci_half_width,
                        "within_ci": comparison.within_ci,
                        "sample_size": comparison.sample_size,
                        "batched_mean": comparison.batched_mean,
                        "batched_within_ci": comparison.batched_within_ci,
                    }
                    for comparison in point.rewards
                ],
            }
        )
    return {
        "confidence": COMPARISON_CONFIDENCE,
        "models": models,
        "all_within_ci": result.all_within_ci,
    }


def solver_compare_rows(result: SolverCompareResult):
    """The CSV series of the solver comparison: one row per reward."""
    header = [
        "model",
        "reward",
        "analytic",
        "simulative_mean",
        "ci_half_width",
        "within_ci",
        "batched_mean",
        "batched_within_ci",
        "sample_size",
        "n_states",
    ]
    rows = []
    for spec in COMPARE_MODELS:
        if spec.key not in result.points:
            continue
        point = result.points[spec.key]
        for comparison in point.rewards:
            rows.append(
                [
                    point.key,
                    comparison.reward,
                    comparison.analytic,
                    comparison.simulative_mean,
                    comparison.ci_half_width,
                    comparison.within_ci,
                    comparison.batched_mean,
                    comparison.batched_within_ci,
                    comparison.sample_size,
                    point.n_states,
                ]
            )
    return header, rows


SPEC = register(
    ExperimentSpec(
        name="solvercompare",
        description="Solver cross-validation: analytic (exact CTMC) vs simulative",
        build_plan=solver_compare_plan,
        aggregate=aggregate_solver_compare,
        render_text=format_solver_compare,
        to_record=solver_compare_record,
        to_rows=solver_compare_rows,
    )
)
