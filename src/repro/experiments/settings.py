"""Scale settings shared by all experiment generators.

The paper's full experiments (5000 consensus executions per point, 20 x 1000
executions per class-3 point) would take a long time on a pure-Python
simulator, and the *shapes* the reproduction targets are already stable at a
fraction of that scale.  :class:`ExperimentSettings` therefore defines three
presets:

* ``smoke``   -- minimal, for CI-style sanity runs (seconds);
* ``quick``   -- the default used by the benchmark harness (tens of
  seconds to a few minutes per figure);
* ``full``    -- paper-scale executions for the patient (hours).

Select a preset explicitly or through the ``REPRO_EXPERIMENT_SCALE``
environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, Sequence, Tuple

from repro.cluster.config import ClusterConfig


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment generator.

    Attributes
    ----------
    executions:
        Consensus executions per measurement point (class 1 / class 2).
    class3_executions:
        Consensus executions per class-3 measurement point.
    replications:
        SAN replications per simulation point.
    measured_process_counts:
        The n values measured on the cluster (the paper: 3, 5, 7, 9, 11).
    simulated_process_counts:
        The n values also simulated with the SAN model (the paper: 3, 5).
    class3_process_counts:
        The n values swept in the class-3 (timeout) experiments.
    timeouts_ms:
        The failure-detector timeouts T swept in Figures 8 and 9.
    t_send_candidates_ms:
        The ``t_send`` values swept in Figure 7(b).
    delay_probes:
        Probe messages per case in the Figure 6 micro-benchmark.
    seed:
        Base seed; every point derives its own seed from it.
    """

    executions: int = 300
    class3_executions: int = 80
    replications: int = 200
    measured_process_counts: Tuple[int, ...] = (3, 5, 7, 9, 11)
    simulated_process_counts: Tuple[int, ...] = (3, 5)
    class3_process_counts: Tuple[int, ...] = (3, 5, 7)
    timeouts_ms: Tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 30.0, 50.0, 100.0)
    t_send_candidates_ms: Tuple[float, ...] = (0.005, 0.01, 0.015, 0.02, 0.025, 0.035)
    delay_probes: int = 800
    seed: int = 20020623  # DSN 2002 conference dates
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def smoke() -> "ExperimentSettings":
        """Tiny runs for sanity checks and unit tests."""
        return ExperimentSettings(
            executions=40,
            class3_executions=25,
            replications=40,
            measured_process_counts=(3, 5),
            simulated_process_counts=(3,),
            class3_process_counts=(3,),
            timeouts_ms=(1.0, 5.0, 20.0),
            t_send_candidates_ms=(0.01, 0.025),
            delay_probes=200,
        )

    @staticmethod
    def quick() -> "ExperimentSettings":
        """The default benchmark scale."""
        return ExperimentSettings()

    @staticmethod
    def full() -> "ExperimentSettings":
        """Paper-scale experiments (long)."""
        return ExperimentSettings(
            executions=5000,
            class3_executions=1000,
            replications=2000,
            class3_process_counts=(3, 5, 7, 9, 11),
            delay_probes=5000,
        )

    @staticmethod
    def from_environment(default: str = "quick") -> "ExperimentSettings":
        """Pick the preset named by ``REPRO_EXPERIMENT_SCALE`` (default quick)."""
        name = os.environ.get("REPRO_EXPERIMENT_SCALE", default).strip().lower()
        return ExperimentSettings.from_scale(name)

    @staticmethod
    def from_scale(name: str) -> "ExperimentSettings":
        """The preset registered under ``name`` in :data:`SCALE_PRESETS`."""
        try:
            factory = SCALE_PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown experiment scale {name!r}; expected one of {sorted(SCALE_PRESETS)}"
            ) from None
        return factory()

    def scale_name(self) -> str:
        """The preset name these settings correspond to, or ``"custom"``.

        The base ``seed`` is ignored in the comparison, so a preset with an
        overridden seed (the CLI's ``--seed``) still reports its scale; any
        other deviation from every registered preset yields ``"custom"``.
        """
        for name, factory in SCALE_PRESETS.items():
            if replace(factory(), seed=self.seed) == self:
                return name
        return "custom"

    def settings_hash(self) -> str:
        """A stable hex digest identifying these settings (for run manifests).

        The digest covers every field, including the nested cluster
        configuration, via a canonical JSON encoding -- two settings objects
        hash equal iff they would drive experiments identically.
        """
        payload = json.dumps(asdict(self), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    def with_cluster(self, cluster: ClusterConfig) -> "ExperimentSettings":
        """A copy using a different base cluster configuration."""
        return replace(self, cluster=cluster)

    def cluster_for(self, n_processes: int, point_seed: int) -> ClusterConfig:
        """The cluster configuration of one experiment point."""
        return self.cluster.replace(n_processes=n_processes, seed=point_seed)

    def point_seed(self, *indices: int) -> int:
        """A deterministic seed for an experiment point identified by indices.

        This is the seed-derivation primitive of the sweep runner
        (:mod:`repro.experiments.runner`): the seed is a pure function of
        the base ``seed`` and the index path, so it does not change when
        points are reordered, filtered, or executed on a different number
        of workers.  Distinct index paths yield distinct, statistically
        independent streams.
        """
        seed = self.seed
        for index in indices:
            seed = (seed * 1_000_003 + int(index) * 8_191 + 7) % (2**62)
        return seed

    def class3_separation_ms(self, timeout_ms: float) -> float:
        """Separation between class-3 executions (grows with the timeout)."""
        return max(10.0, 2.0 * timeout_ms)


#: Registered scale presets, in increasing-cost order.  The CLI builds its
#: ``--scale`` choices from this table and :meth:`ExperimentSettings.from_scale`
#: resolves names through it, so registering an extra preset here (tests do)
#: is all it takes to make a new scale selectable everywhere.
SCALE_PRESETS: Dict[str, Callable[[], ExperimentSettings]] = {
    "smoke": ExperimentSettings.smoke,
    "quick": ExperimentSettings.quick,
    "full": ExperimentSettings.full,
}


def scaled_timeouts(
    timeouts: Sequence[float], n_processes: int, max_for_large_n: float = 200.0
) -> Tuple[float, ...]:
    """Clip the timeout sweep for large process counts.

    With 9 or 11 processes and sub-millisecond heartbeat periods the shared
    100 Mb/s medium saturates (the paper notes it checked that the heartbeat
    load was harmless -- at the timeouts it could actually run).  The sweep
    therefore starts at 2 ms for n >= 9.
    """
    if n_processes >= 9:
        return tuple(t for t in timeouts if 2.0 <= t <= max_for_large_n)
    return tuple(timeouts)
