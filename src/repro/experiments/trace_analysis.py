"""Trace analysis: cluster a faulted sweep point's replications and
explain the worst one.

Where :mod:`repro.experiments.fault_sweep` reports aggregate QoS numbers
per fault load, this experiment answers the *qualitative* follow-ups:
which distinct failure modes did the replications of one faulted point
exhibit, and why did the worst replication go anomalous?

The campaign runs many replications of a single faulted measurement
point (n = 3, heartbeat failure detector, wire-level message loss) with
trace collection on; a subset of the replications additionally crashes
the first coordinator (process 0) mid-run.  The pipeline is then pure
:mod:`repro.traces`:

1. each replication's outcome is featurized
   (:func:`repro.traces.cluster.featurize_measurement`);
2. the replications are clustered with the dependency-free DBSCAN
   (:func:`repro.traces.cluster.cluster_features`) -- on a seeded run
   the crashed-coordinator replications separate from the nominal ones;
3. the worst replication's happens-before DAG is reconstructed
   (:func:`repro.traces.hb.build_hb_graph`) and the causal slice
   backward from the QoS violation (the first wrong suspicion) is
   computed -- it contains the injected crash event;
4. its event log is diffed against a nominal exemplar
   (:func:`repro.traces.diff.diff_logs`) into a minimal ordered
   explanation.

Like every generator the campaign is a
:class:`~repro.experiments.runner.ReplicationPlan` (``jobs=`` and
``cache_dir=`` supported, bit-identical results).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.measurement import MeasurementConfig, MeasurementRunner
from repro.core.scenarios import Scenario
from repro.experiments.registry import ExperimentContext, ExperimentSpec, register
from repro.experiments.runner import ReplicationPlan, SweepPoint
from repro.experiments.settings import ExperimentSettings
from repro.faults.spec import CrashRecovery, FaultLoad, MessageLoss
from repro.traces.cluster import cluster_features, feature_matrix, featurize_measurement
from repro.traces.diff import diff_logs
from repro.traces.events import CRASH, TIMER, EventLog
from repro.traces.hb import HappensBeforeGraph, build_hb_graph

#: The sweep point under analysis.
N_PROCESSES = 3
#: Wire-level loss rate applied to every replication.
LOSS_RATE = 0.03
#: Heartbeat failure-detector timeout (period defaults to 0.7 T).
FD_TIMEOUT_MS = 5.0
#: Index namespace of this experiment's point seeds (faultsweep uses 12).
SEED_INDEX = 13


def n_trace_replications(settings: ExperimentSettings) -> int:
    """How many replications the campaign runs at these settings."""
    return max(8, min(24, settings.class3_executions // 3))


def trace_fault_load(replication: int, horizon_ms: float) -> FaultLoad:
    """The fault load of one replication of the campaign.

    Every replication suffers wire-level loss; every second one
    additionally crashes the first coordinator (process 0) for the
    middle third of the horizon -- the two failure modes the clustering
    must separate.
    """
    faults: List[Any] = [MessageLoss(rate=LOSS_RATE)]
    crashed = replication % 2 == 1
    if crashed:
        faults.append(
            CrashRecovery(
                process_id=0,
                crash_at_ms=horizon_ms / 3.0,
                recover_at_ms=2.0 * horizon_ms / 3.0,
            )
        )
    name = "loss+crash-coordinator" if crashed else "loss"
    return FaultLoad(faults=tuple(faults), name=name)


@dataclass
class TracedReplication:
    """One traced replication of the campaign (picklable sweep result)."""

    replication: int
    crash_injected: bool
    mean_latency_ms: float
    undecided: int
    messages_dropped: int
    fd_transitions: int
    features: Dict[str, float] = field(default_factory=dict)
    event_log: EventLog = field(default_factory=EventLog)


@dataclass
class TraceAnalysisResult:
    """The clustered campaign plus the worst replication's explanation."""

    replications: List[TracedReplication] = field(default_factory=list)
    labels: List[int] = field(default_factory=list)
    clusters: List[Dict[str, Any]] = field(default_factory=list)
    noise: Tuple[int, ...] = ()
    worst: int = 0
    nominal_exemplar: int = 0
    anchor_kind: str = ""
    anchor_time_ms: float = 0.0
    slice_size: int = 0
    fault_in_slice: bool = False
    explanation: List[Dict[str, Any]] = field(default_factory=list)


def _trace_point(
    settings: ExperimentSettings, replication: int, point_seed: int
) -> TracedReplication:
    """One traced replication (module-level so the pool can pickle it)."""
    executions = max(6, settings.class3_executions // 4)
    separation_ms = 10.0
    horizon_ms = 1.0 + executions * separation_ms
    load = trace_fault_load(replication, horizon_ms)
    config = MeasurementConfig(
        cluster=settings.cluster_for(N_PROCESSES, point_seed),
        scenario=Scenario.wrong_suspicions(timeout_ms=FD_TIMEOUT_MS),
        executions=executions,
        separation_ms=separation_ms,
        extra_time_ms=max(200.0, horizon_ms),
        fault_load=load,
        collect_traces=True,
    )
    result = MeasurementRunner(config).run()
    assert result.event_log is not None  # collect_traces=True guarantees it
    return TracedReplication(
        replication=replication,
        crash_injected=any(isinstance(f, CrashRecovery) for f in load.faults),
        mean_latency_ms=result.mean_latency_ms,
        undecided=result.undecided,
        messages_dropped=result.messages_dropped,
        fd_transitions=len(result.fd_history),
        features=featurize_measurement(result),
        event_log=result.event_log,
    )


def trace_analysis_plan(settings: ExperimentSettings) -> ReplicationPlan:
    """The campaign: one traced replication per sweep point."""
    points = tuple(
        SweepPoint.make(
            _trace_point,
            kwargs={"settings": settings, "replication": replication},
            indices=(SEED_INDEX, replication),
            label=f"traceanalysis replication {replication}",
        )
        for replication in range(n_trace_replications(settings))
    )
    return ReplicationPlan(settings=settings, points=points, name="traceanalysis")


def _pick_worst(replications: List[TracedReplication]) -> int:
    """The most anomalous replication: most undecided, then slowest."""
    def badness(rep: TracedReplication) -> Tuple[int, float]:
        latency = rep.mean_latency_ms
        return (rep.undecided, latency if math.isfinite(latency) else 0.0)

    worst = 0
    for index, rep in enumerate(replications):
        if badness(rep) > badness(replications[worst]):
            worst = index
    return worst


def _pick_nominal(
    replications: List[TracedReplication], labels: List[int], worst: int
) -> int:
    """A nominal exemplar: fastest replication outside the worst's cluster."""
    worst_label = labels[worst]
    candidates = [
        index
        for index, label in enumerate(labels)
        if index != worst and (label != worst_label or label < 0)
    ] or [index for index in range(len(replications)) if index != worst]

    def goodness(index: int) -> Tuple[int, float]:
        rep = replications[index]
        latency = rep.mean_latency_ms
        return (rep.undecided, latency if math.isfinite(latency) else math.inf)

    return min(candidates, key=lambda index: (goodness(index), index))


def _find_anchor(graph: HappensBeforeGraph) -> Optional[int]:
    """The QoS-violation anchor of the worst replication's slice.

    Preferably the first ``suspect`` verdict *about the crashed process
    after its crash* -- the detection whose causal past must contain the
    injected fault.  Replications without a crash (or whose suspicions
    all predate it) fall back to the first wrong suspicion, then to the
    final event.
    """
    crash_index = graph.find_first(kind=CRASH)
    if crash_index is not None:
        crashed = graph.events[crash_index].process
        for index in range(crash_index + 1, len(graph.events)):
            event = graph.events[index]
            if event.kind == TIMER and event.detail == "suspect" and event.peer == crashed:
                return index
    anchor = graph.find_first(kind=TIMER, detail="suspect")
    if anchor is None and graph.events:
        anchor = len(graph.events) - 1
    return anchor


def aggregate_trace_analysis(
    settings: ExperimentSettings,
    pairs: Iterable[Tuple[SweepPoint, Any]],
) -> TraceAnalysisResult:
    """Cluster the streamed replications and explain the worst one."""
    replications: List[TracedReplication] = sorted(
        (traced for _point, traced in pairs), key=lambda traced: traced.replication
    )
    result = TraceAnalysisResult(replications=replications)
    if not replications:
        return result
    matrix = feature_matrix([rep.features for rep in replications])
    clustering = cluster_features(matrix)
    result.labels = clustering.labels
    result.noise = clustering.noise
    result.clusters = [
        {
            "label": info.label,
            "size": len(info.members),
            "members": list(info.members),
            "exemplar": info.exemplar,
            "score": info.score,
            "crash_injected": sorted(
                {replications[index].crash_injected for index in info.members}
            ),
        }
        for info in clustering.clusters
    ]
    result.worst = _pick_worst(replications)
    result.nominal_exemplar = _pick_nominal(replications, clustering.labels, result.worst)

    worst_log = replications[result.worst].event_log
    graph = build_hb_graph(worst_log, n_processes=N_PROCESSES)
    anchor = _find_anchor(graph)
    if anchor is not None:
        causal_slice = graph.causal_past(anchor)
        anchor_event = graph.events[anchor]
        result.anchor_kind = anchor_event.kind
        result.anchor_time_ms = anchor_event.time_ms
        result.slice_size = len(causal_slice)
        result.fault_in_slice = any(
            graph.events[index].kind == CRASH for index in causal_slice
        )
    diff = diff_logs(worst_log, replications[result.nominal_exemplar].event_log)
    result.explanation = [
        {
            "description": step.description,
            "anomalous_count": step.anomalous_count,
            "nominal_count": step.nominal_count,
            "first_time_ms": step.first_time_ms,
        }
        for step in diff.steps
    ]
    return result


def run_trace_analysis(
    settings: ExperimentSettings | None = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> TraceAnalysisResult:
    """Run the trace-analysis campaign."""
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    plan = trace_analysis_plan(context.settings)
    return aggregate_trace_analysis(context.settings, context.iter(plan))


def format_trace_analysis(result: TraceAnalysisResult) -> str:
    """Render the discovered clusters and the worst-replication explanation."""
    lines = [
        "Trace analysis: failure modes of one faulted sweep point "
        f"(n={N_PROCESSES}, loss={LOSS_RATE}, T={FD_TIMEOUT_MS} ms)",
        "rep  crash  cluster   mean [ms]   undec.   dropped   fd-trans   events",
    ]
    for index, rep in enumerate(result.replications):
        label = result.labels[index] if index < len(result.labels) else -1
        mean = (
            f"{rep.mean_latency_ms:9.3f}"
            if math.isfinite(rep.mean_latency_ms)
            else "      nan"
        )
        lines.append(
            f"{rep.replication:<4d} {str(rep.crash_injected):<6s} {label:>7d}  "
            f"{mean}   {rep.undecided:6d}   {rep.messages_dropped:7d}   "
            f"{rep.fd_transitions:8d}   {len(rep.event_log):6d}"
        )
    lines.append("")
    lines.append("clusters (most anomalous first):")
    if not result.clusters:
        lines.append("  (none)")
    for info in result.clusters:
        lines.append(
            f"  #{info['label']}: {info['size']} replication(s) {info['members']}, "
            f"exemplar {info['exemplar']}, score {info['score']:.2f}, "
            f"crash_injected={info['crash_injected']}"
        )
    if result.noise:
        lines.append(f"  noise: {list(result.noise)}")
    lines.append("")
    lines.append(
        f"worst replication {result.worst}: causal slice of {result.slice_size} "
        f"event(s) back from the first {result.anchor_kind or 'n/a'} anchor at "
        f"t={result.anchor_time_ms:.3f} ms "
        f"(injected fault in slice: {result.fault_in_slice})"
    )
    lines.append(
        f"minimal explanation vs nominal exemplar {result.nominal_exemplar}:"
    )
    if not result.explanation:
        lines.append("  (no event-class differences)")
    for step in result.explanation[:12]:
        lines.append(
            f"  t={step['first_time_ms']:9.3f} ms  {step['description']}: "
            f"{step['anomalous_count']} vs {step['nominal_count']} nominal"
        )
    if len(result.explanation) > 12:
        lines.append(f"  ... and {len(result.explanation) - 12} more differences")
    return "\n".join(lines)


def trace_analysis_record(result: TraceAnalysisResult) -> Dict[str, Any]:
    """The JSON artifact data of the trace analysis."""
    return {
        "n_processes": N_PROCESSES,
        "loss_rate": LOSS_RATE,
        "fd_timeout_ms": FD_TIMEOUT_MS,
        "replications": [
            {
                "replication": rep.replication,
                "crash_injected": rep.crash_injected,
                "cluster": result.labels[index] if index < len(result.labels) else -1,
                "mean_latency_ms": rep.mean_latency_ms,
                "undecided": rep.undecided,
                "messages_dropped": rep.messages_dropped,
                "fd_transitions": rep.fd_transitions,
                "events": len(rep.event_log),
                "features": dict(sorted(rep.features.items())),
            }
            for index, rep in enumerate(result.replications)
        ],
        "clusters": result.clusters,
        "noise": list(result.noise),
        "anomalous": {
            "replication": result.worst,
            "nominal_exemplar": result.nominal_exemplar,
            "anchor_kind": result.anchor_kind,
            "anchor_time_ms": result.anchor_time_ms,
            "slice_size": result.slice_size,
            "fault_in_slice": result.fault_in_slice,
            "explanation": result.explanation,
        },
    }


def trace_analysis_rows(result: TraceAnalysisResult):
    """The CSV series of the trace analysis (one row per replication)."""
    header = [
        "replication",
        "crash_injected",
        "cluster",
        "mean_latency_ms",
        "undecided",
        "messages_dropped",
        "fd_transitions",
        "events",
    ]
    rows = []
    for index, rep in enumerate(result.replications):
        rows.append(
            [
                rep.replication,
                rep.crash_injected,
                result.labels[index] if index < len(result.labels) else -1,
                rep.mean_latency_ms,
                rep.undecided,
                rep.messages_dropped,
                rep.fd_transitions,
                len(rep.event_log),
            ]
        )
    return header, rows


SPEC = register(
    ExperimentSpec(
        name="traceanalysis",
        description=(
            "Trace analysis: happens-before slices and failure-mode "
            "clustering of a faulted sweep point"
        ),
        build_plan=trace_analysis_plan,
        aggregate=aggregate_trace_analysis,
        render_text=format_trace_analysis,
        to_record=trace_analysis_record,
        to_rows=trace_analysis_rows,
    )
)
