"""Structured artifacts: machine-readable results for every experiment.

The generators historically produced *text only* -- faithful to the paper's
tables, but opaque to downstream tooling (plots, regression tracking,
benchmark trajectories).  This module is the structured half of the
pipeline:

* :class:`RunManifest` -- provenance of one experiment run: experiment
  name, scale, seed, jobs, a stable hash of the settings, per-point wall
  clock (fed by the runner's timing hook) and total wall clock.  Manifests
  round-trip through JSON (``to_json`` / ``from_json``).
* :func:`artifact_payload` -- the canonical JSON artifact envelope:
  ``{schema, experiment, description, data, manifest}`` where ``data`` is
  the experiment's :meth:`~repro.experiments.registry.ExperimentSpec.to_record`
  output.  Payloads are strict JSON: :func:`json_safe` maps non-finite
  floats to ``null`` and tuples to lists.
* :data:`ARTIFACT_SCHEMA` + :func:`validate_artifact` -- a dependency-free
  validator for the subset of JSON Schema the artifacts use, so CI and the
  tests can reject malformed artifacts without installing ``jsonschema``.
* :func:`render_csv` / :func:`write_experiment_artifacts` -- CSV rendering
  of an experiment's tabular series and the on-disk layout
  (``<output>/<experiment>/{report.txt,result.json,result.csv,manifest.json}``).
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = [
    "ARTIFACT_SCHEMA",
    "MANIFEST_SCHEMA",
    "ArtifactValidationError",
    "PointTiming",
    "RunManifest",
    "Table",
    "artifact_payload",
    "dump_json",
    "json_safe",
    "render_csv",
    "utc_timestamp",
    "validate_artifact",
    "validate_instance",
    "write_experiment_artifacts",
]

#: A tabular series: ``(header, rows)`` with one list of cells per row.
Table = Tuple[Sequence[str], Sequence[Sequence[Any]]]

ARTIFACT_SCHEMA_ID = "repro.experiment-artifact/v1"
MANIFEST_SCHEMA_ID = "repro.run-manifest/v1"


def utc_timestamp() -> str:
    """The current time as an ISO-8601 UTC string (manifest ``started_at``)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def json_safe(value: Any) -> Any:
    """Recursively normalise ``value`` into strict-JSON-serialisable data.

    Tuples become lists, non-finite floats become ``None`` (strict JSON has
    no ``NaN``/``Infinity``), and dictionary keys are coerced to strings.
    """
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (int, str)):
        return value
    return repr(value)


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PointTiming:
    """Wall clock of one sweep point (or ad-hoc stage) of an experiment."""

    label: str
    indices: Tuple[int, ...]
    seconds: float
    cached: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "label": self.label,
            "indices": list(self.indices),
            "seconds": self.seconds,
            "cached": self.cached,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "PointTiming":
        """Inverse of :meth:`to_dict`."""
        return PointTiming(
            label=data["label"],
            indices=tuple(int(i) for i in data["indices"]),
            seconds=float(data["seconds"]),
            cached=bool(data["cached"]),
        )


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one experiment run.

    Everything needed to interpret (and reproduce) an artifact: which
    experiment, at which scale and seed, with how many workers, against
    which exact settings (hash + full dump), when, and how long each point
    took.
    """

    experiment: str
    scale: str
    seed: int
    jobs: Optional[int]
    settings_hash: str
    settings: Dict[str, Any]
    started_at: str
    wall_clock_seconds: float
    points: Tuple[PointTiming, ...] = ()
    version: str = ""
    schema: str = MANIFEST_SCHEMA_ID

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (validates against :data:`MANIFEST_SCHEMA`)."""
        return {
            "schema": self.schema,
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "jobs": self.jobs,
            "settings_hash": self.settings_hash,
            "settings": json_safe(self.settings),
            "started_at": self.started_at,
            "wall_clock_seconds": self.wall_clock_seconds,
            "points": [point.to_dict() for point in self.points],
            "version": self.version,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunManifest":
        """Inverse of :meth:`to_dict`."""
        return RunManifest(
            experiment=data["experiment"],
            scale=data["scale"],
            seed=int(data["seed"]),
            jobs=None if data["jobs"] is None else int(data["jobs"]),
            settings_hash=data["settings_hash"],
            settings=data["settings"],
            started_at=data["started_at"],
            wall_clock_seconds=float(data["wall_clock_seconds"]),
            points=tuple(PointTiming.from_dict(point) for point in data["points"]),
            version=data["version"],
            schema=data["schema"],
        )

    def to_json(self) -> str:
        """Serialise to a JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, allow_nan=False)

    @staticmethod
    def from_json(text: str) -> "RunManifest":
        """Parse a manifest previously produced by :meth:`to_json`."""
        return RunManifest.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Schema validation (dependency-free subset of JSON Schema)
# ----------------------------------------------------------------------
class ArtifactValidationError(ValueError):
    """An artifact payload does not conform to its schema."""


#: Schema of a :class:`RunManifest` JSON document.
MANIFEST_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "schema",
        "experiment",
        "scale",
        "seed",
        "jobs",
        "settings_hash",
        "settings",
        "started_at",
        "wall_clock_seconds",
        "points",
        "version",
    ],
    "properties": {
        "schema": {"type": "string", "const": MANIFEST_SCHEMA_ID},
        "experiment": {"type": "string"},
        "scale": {"type": "string"},
        "seed": {"type": "integer"},
        "jobs": {"type": ["integer", "null"]},
        "settings_hash": {"type": "string"},
        "settings": {"type": "object"},
        "started_at": {"type": "string"},
        "wall_clock_seconds": {"type": "number"},
        "points": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["label", "indices", "seconds", "cached"],
                "properties": {
                    "label": {"type": "string"},
                    "indices": {"type": "array", "items": {"type": "integer"}},
                    "seconds": {"type": "number"},
                    "cached": {"type": "boolean"},
                },
            },
        },
        "version": {"type": "string"},
    },
}

#: Schema of the JSON artifact envelope emitted for every experiment.
ARTIFACT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["schema", "experiment", "description", "data", "manifest"],
    "properties": {
        "schema": {"type": "string", "const": ARTIFACT_SCHEMA_ID},
        "experiment": {"type": "string"},
        "description": {"type": "string"},
        "data": {"type": "object"},
        "manifest": MANIFEST_SCHEMA,
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_instance(instance: Any, schema: Dict[str, Any], path: str = "$") -> None:
    """Validate ``instance`` against the subset of JSON Schema used here.

    Supported keywords: ``type`` (name or list of names), ``const``,
    ``required``, ``properties``, ``items``.  Raises
    :class:`ArtifactValidationError` naming the offending path.
    """
    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[name](instance) for name in names):
            raise ArtifactValidationError(
                f"{path}: expected type {'/'.join(names)}, got {type(instance).__name__}"
            )
    if "const" in schema and instance != schema["const"]:
        raise ArtifactValidationError(
            f"{path}: expected constant {schema['const']!r}, got {instance!r}"
        )
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise ArtifactValidationError(f"{path}: missing required key {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                validate_instance(instance[name], subschema, f"{path}.{name}")
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            validate_instance(item, schema["items"], f"{path}[{index}]")


def validate_artifact(payload: Dict[str, Any]) -> None:
    """Validate one experiment artifact payload (raises on mismatch)."""
    validate_instance(payload, ARTIFACT_SCHEMA)


# ----------------------------------------------------------------------
# Payloads, CSV, and the on-disk layout
# ----------------------------------------------------------------------
def artifact_payload(
    experiment: str,
    description: str,
    data: Dict[str, Any],
    manifest: RunManifest,
) -> Dict[str, Any]:
    """The canonical JSON artifact envelope (already schema-valid)."""
    payload = {
        "schema": ARTIFACT_SCHEMA_ID,
        "experiment": experiment,
        "description": description,
        "data": json_safe(data),
        "manifest": manifest.to_dict(),
    }
    validate_artifact(payload)
    return payload


def _csv_cell(cell: Any) -> Any:
    """One CSV cell: non-finite floats become empty, like JSON ``null``."""
    if cell is None:
        return ""
    if isinstance(cell, float) and not math.isfinite(cell):
        return ""
    return cell


def dump_json(payload: Any) -> str:
    """The one canonical JSON serialisation of artifacts (disk and stdout)."""
    return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)


def render_csv(table: Table) -> str:
    """Render a ``(header, rows)`` table as CSV text (``\\n`` line ends).

    Missing values (``None``) and non-finite floats render as empty cells,
    mirroring the JSON artifact layer's non-finite -> ``null`` rule so the
    two artifact formats never disagree about the same datum.
    """
    header, rows = table
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(header))
    for row in rows:
        writer.writerow([_csv_cell(cell) for cell in row])
    return buffer.getvalue()


def write_experiment_artifacts(
    output_dir: str,
    experiment: str,
    text: str,
    payload: Dict[str, Any],
    manifest: RunManifest,
    table: Optional[Table] = None,
) -> Dict[str, str]:
    """Write one experiment's artifact files under ``output_dir/experiment/``.

    Always writes ``report.txt`` (the paper-faithful text), ``result.json``
    (the schema-valid envelope) and ``manifest.json``; adds ``result.csv``
    when the experiment has a tabular series.  Returns the written paths
    keyed by file kind.
    """
    directory = os.path.join(output_dir, experiment)
    os.makedirs(directory, exist_ok=True)
    written: Dict[str, str] = {}

    def emit(kind: str, filename: str, content: str) -> None:
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content if content.endswith("\n") else content + "\n")
        written[kind] = path

    emit("text", "report.txt", text)
    emit("json", "result.json", dump_json(payload))
    emit("manifest", "manifest.json", manifest.to_json())
    if table is not None:
        emit("csv", "result.csv", render_csv(table))
    return written
