"""Figure 8: failure-detector quality of service vs. the timeout T (§5.4).

For a sweep of the failure-detection timeout ``T`` (with the heartbeat
period fixed at ``Th = 0.7 T``) and for several process counts, the paper
measures the Chen-Toueg-Aguilera QoS metrics of the heartbeat failure
detector in runs without crashes: the mistake recurrence time ``T_MR``
(Fig. 8a, increasing with T, rising very fast beyond T = 30 ms) and the
mistake duration ``T_M`` (Fig. 8b, bounded by about 12 ms).

The measured QoS values are also the *input* of the Figure 9(b) SAN
simulations, so this generator returns them in a reusable form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.measurement import MeasurementConfig, MeasurementRunner
from repro.core.scenarios import Scenario
from repro.experiments.registry import ExperimentContext, ExperimentSpec, register
from repro.experiments.runner import ReplicationPlan, SweepPoint
from repro.experiments.settings import ExperimentSettings, scaled_timeouts
from repro.failure_detectors.qos import QoSEstimate


@dataclass
class Figure8Point:
    """QoS of the failure detector at one (n, T) point."""

    n_processes: int
    timeout_ms: float
    mistake_recurrence_time_ms: float
    mistake_duration_ms: float
    qos: QoSEstimate = field(repr=False, default=None)
    latencies_ms: List[float] = field(repr=False, default_factory=list)
    undecided: int = 0


@dataclass
class Figure8Result:
    """The Figure 8 sweep: QoS per (n, T)."""

    points: Dict[Tuple[int, float], Figure8Point] = field(default_factory=dict)

    def point(self, n_processes: int, timeout_ms: float) -> Figure8Point:
        """The point for one (n, T) combination."""
        return self.points[(n_processes, timeout_ms)]

    def timeouts(self, n_processes: int) -> List[float]:
        """The timeouts measured for one process count, sorted."""
        return sorted(t for (n, t) in self.points if n == n_processes)

    def recurrence_series(self, n_processes: int) -> List[Tuple[float, float]]:
        """The (T, T_MR) series of Figure 8(a) for one process count."""
        return [
            (t, self.points[(n_processes, t)].mistake_recurrence_time_ms)
            for t in self.timeouts(n_processes)
        ]

    def duration_series(self, n_processes: int) -> List[Tuple[float, float]]:
        """The (T, T_M) series of Figure 8(b) for one process count."""
        return [
            (t, self.points[(n_processes, t)].mistake_duration_ms)
            for t in self.timeouts(n_processes)
        ]


def measure_class3_point(
    settings: ExperimentSettings,
    n_processes: int,
    timeout_ms: float,
    point_seed: int,
    executions: Optional[int] = None,
) -> Figure8Point:
    """Run one class-3 measurement point (shared with Figure 9).

    Latencies above roughly the separation would make fixed-schedule
    executions interfere, so class-3 points run in sequential mode with a
    per-execution cap, as the paper's footnote 2 prescribes for bad failure
    detection.
    """
    config = MeasurementConfig(
        cluster=settings.cluster_for(n_processes, point_seed),
        scenario=Scenario.wrong_suspicions(timeout_ms=timeout_ms),
        executions=executions or settings.class3_executions,
        separation_ms=settings.class3_separation_ms(timeout_ms),
        sequential=True,
        max_instance_time_ms=max(500.0, 20.0 * timeout_ms),
    )
    result = MeasurementRunner(config).run()
    qos = result.qos
    return Figure8Point(
        n_processes=n_processes,
        timeout_ms=timeout_ms,
        mistake_recurrence_time_ms=(
            qos.mistake_recurrence_time if qos is not None else math.inf
        ),
        mistake_duration_ms=qos.mistake_duration if qos is not None else 0.0,
        qos=qos,
        latencies_ms=result.latencies_ms,
        undecided=result.undecided,
    )


def _figure8_point(
    settings: ExperimentSettings,
    n_processes: int,
    timeout_ms: float,
    point_seed: int,
) -> Figure8Point:
    """One Figure 8 point (module-level so the process pool can pickle it)."""
    return measure_class3_point(
        settings,
        n_processes=n_processes,
        timeout_ms=timeout_ms,
        point_seed=point_seed,
    )


def figure8_plan(settings: ExperimentSettings) -> ReplicationPlan:
    """The Figure 8 sweep: one point per (process count, timeout)."""
    points = []
    for n_index, n in enumerate(settings.class3_process_counts):
        for t_index, timeout in enumerate(scaled_timeouts(settings.timeouts_ms, n)):
            points.append(
                SweepPoint.make(
                    _figure8_point,
                    kwargs={
                        "settings": settings,
                        "n_processes": n,
                        "timeout_ms": timeout,
                    },
                    indices=(8, n_index, t_index),
                    label=f"figure8 n={n} T={timeout}",
                )
            )
    return ReplicationPlan(settings=settings, points=tuple(points), name="figure8")


def aggregate_figure8(
    settings: ExperimentSettings,
    pairs: Iterable[Tuple[SweepPoint, Any]],
) -> Figure8Result:
    """Assemble the Figure 8 result from streamed point results."""
    result = Figure8Result()
    for _point, point in pairs:
        result.points[(point.n_processes, point.timeout_ms)] = point
    return result


def run_figure8(
    settings: ExperimentSettings | None = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> Figure8Result:
    """Run the Figure 8 QoS sweep."""
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    plan = figure8_plan(context.settings)
    return aggregate_figure8(context.settings, context.iter(plan))


def format_figure8(result: Figure8Result) -> str:
    """Render Figure 8 as two textual tables (T_MR and T_M vs. T)."""
    lines = []
    for title, series_of in (
        ("Figure 8(a): mistake recurrence time T_MR [ms]", Figure8Result.recurrence_series),
        ("Figure 8(b): mistake duration T_M [ms]", Figure8Result.duration_series),
    ):
        lines.append(title)
        ns = sorted({n for (n, _t) in result.points})
        timeouts = sorted({t for (_n, t) in result.points})
        lines.append("T [ms]   " + "  ".join(f"n={n:<8d}" for n in ns))
        for t in timeouts:
            cells = []
            for n in ns:
                point = result.points.get((n, t))
                if point is None:
                    cells.append(" " * 10)
                    continue
                series = series_of(result, n)
                value = dict(series)[t]
                cells.append(f"{value:10.2f}" if math.isfinite(value) else "       inf")
            lines.append(f"{t:6.1f}   " + "  ".join(cells))
        lines.append("")
    return "\n".join(lines)


def figure8_record(result: Figure8Result) -> Dict[str, Any]:
    """The JSON artifact data of Figure 8 (non-finite T_MR becomes null)."""
    points = []
    for (n, t) in sorted(result.points):
        point = result.points[(n, t)]
        points.append(
            {
                "n_processes": n,
                "timeout_ms": t,
                "mistake_recurrence_time_ms": point.mistake_recurrence_time_ms,
                "mistake_duration_ms": point.mistake_duration_ms,
                "undecided": point.undecided,
                "executions": len(point.latencies_ms),
            }
        )
    return {"points": points}


def figure8_rows(result: Figure8Result):
    """The CSV series of Figure 8 (both panels as columns)."""
    header = ["n_processes", "timeout_ms", "mistake_recurrence_time_ms", "mistake_duration_ms"]
    rows = [
        [
            n,
            t,
            result.points[(n, t)].mistake_recurrence_time_ms,
            result.points[(n, t)].mistake_duration_ms,
        ]
        for (n, t) in sorted(result.points)
    ]
    return header, rows


SPEC = register(
    ExperimentSpec(
        name="figure8",
        description="Fig. 8: failure-detector QoS (T_MR, T_M) vs. the timeout T",
        build_plan=figure8_plan,
        aggregate=aggregate_figure8,
        render_text=format_figure8,
        to_record=figure8_record,
        to_rows=figure8_rows,
    )
)
