"""Parallel replication/sweep engine for the experiment generators.

Every figure and table of the paper is produced from a *grid of independent
simulation points*: one (cluster size, scenario, timeout, ...) combination
simulated with its own seed.  The per-figure modules used to iterate those
grids serially; this module factors the iteration into a reusable engine:

* :class:`SweepPoint` -- one independent point: a picklable module-level
  function, its keyword arguments, and the seed-derivation indices;
* :class:`ReplicationPlan` -- an ordered grid of points plus the
  :class:`~repro.experiments.settings.ExperimentSettings` they share;
* :func:`iter_plan` / :func:`execute_plan` -- run a plan either serially
  (``jobs=1``, in-process, no pool) or on a
  :class:`concurrent.futures.ProcessPoolExecutor`, streaming results back
  *in plan order* so that aggregation is deterministic and independent of
  worker scheduling;
* :class:`ResultCache` -- optional on-disk memoisation keyed by
  (point function, arguments, derived seed, settings), so re-rendering a
  figure after a crash or with a different ``--jobs`` value is free.

Determinism contract
--------------------
A point's seed is ``settings.point_seed(*point.indices)``: it depends only
on the point's identity, never on its position in the plan or on the number
of workers.  Results are yielded in plan order regardless of completion
order.  Together these guarantee that ``jobs=1`` and ``jobs=N`` produce
bit-for-bit identical aggregates (covered by
``tests/test_experiments_runner.py``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

__all__ = [
    "SeedSettings",
    "SweepPoint",
    "ReplicationPlan",
    "ResultCache",
    "TimingHook",
    "iter_plan",
    "execute_plan",
    "resolve_jobs",
]


@runtime_checkable
class SeedSettings(Protocol):
    """What a plan's ``settings`` object must provide.

    :class:`~repro.experiments.settings.ExperimentSettings` is the usual
    implementation; the SAN solver (:mod:`repro.san.solver`) supplies its
    own so that its replications ride on the same engine.  The object must
    be picklable (it travels to worker processes inside point kwargs) and
    should be hashable/stable so cache keys are meaningful.
    """

    def point_seed(self, *indices: int) -> int:
        """A deterministic seed for the point identified by ``indices``."""
        ...


#: Bump when the execution semantics change in a way that invalidates
#: previously cached point results.
# Bump whenever cached results become incomparable with freshly computed
# ones -- e.g. version 2: the SAN executor's per-activity RNG streams
# changed every fixed-seed simulative result.
CACHE_FORMAT_VERSION = 2


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point of a sweep.

    Attributes
    ----------
    func:
        A *module-level* callable (so that it can be pickled for the process
        pool).  It is invoked as ``func(**kwargs, **{seed_arg: seed})``.
    kwargs:
        Keyword arguments as a sorted tuple of ``(name, value)`` pairs; the
        values must be picklable.  Use :meth:`make` to build points from a
        plain ``dict``.
    indices:
        The seed-derivation path: the point's seed is
        ``settings.point_seed(*indices)``.  Indices identify the point, not
        its position in the plan, so reordering or filtering a plan never
        changes any point's seed.
    label:
        Human-readable label used in logs and cache file names.
    seed_arg:
        Name of the keyword argument receiving the derived seed, or ``None``
        for point functions that do not take a seed.
    """

    func: Callable[..., Any]
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    indices: Tuple[int, ...] = ()
    label: str = ""
    seed_arg: Optional[str] = "point_seed"

    @staticmethod
    def make(
        func: Callable[..., Any],
        kwargs: Optional[Dict[str, Any]] = None,
        indices: Iterable[int] = (),
        label: str = "",
        seed_arg: Optional[str] = "point_seed",
    ) -> "SweepPoint":
        """Build a point from a plain keyword dictionary."""
        items = tuple(sorted((kwargs or {}).items(), key=lambda item: item[0]))
        return SweepPoint(
            func=func,
            kwargs=items,
            indices=tuple(int(i) for i in indices),
            label=label,
            seed_arg=seed_arg,
        )

    # ------------------------------------------------------------------
    def seed(self, settings: SeedSettings) -> int:
        """The deterministic seed of this point under ``settings``."""
        return settings.point_seed(*self.indices)

    def call_kwargs(self, settings: SeedSettings) -> Dict[str, Any]:
        """The full keyword arguments, including the derived seed."""
        kwargs = dict(self.kwargs)
        if self.seed_arg is not None:
            kwargs[self.seed_arg] = self.seed(settings)
        return kwargs


@dataclass(frozen=True)
class ReplicationPlan:
    """An ordered grid of independent points sharing one settings object."""

    settings: SeedSettings
    points: Tuple[SweepPoint, ...]
    name: str = "sweep"

    def __post_init__(self) -> None:
        seen: Dict[Tuple[int, ...], str] = {}
        for point in self.points:
            previous = seen.get(point.indices)
            if previous is not None:
                raise ValueError(
                    f"duplicate seed indices {point.indices} in plan {self.name!r} "
                    f"({previous!r} vs {point.label!r}); points sharing indices "
                    "would share a seed and be statistically dependent"
                )
            seen[point.indices] = point.label

    def __len__(self) -> int:
        return len(self.points)

    def seeds(self) -> List[int]:
        """The derived seed of every point, in plan order."""
        return [point.seed(self.settings) for point in self.points]


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Pickle-based memoisation of point results.

    The cache key hashes the point function's qualified name, its full call
    arguments (including the derived seed) and the settings object, so a
    cached entry is only ever reused for an exactly identical point.  Writes
    are atomic (write to a temporary file, then ``os.replace``) so that a
    killed run never leaves a truncated entry behind.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def key(point: SweepPoint, settings: SeedSettings) -> str:
        """Hex digest identifying (point, seed, settings)."""
        identity = (
            CACHE_FORMAT_VERSION,
            point.func.__module__,
            point.func.__qualname__,
            tuple(sorted(point.call_kwargs(settings).items())),
            settings,
        )
        payload = pickle.dumps(identity, protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.sha256(payload).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; unreadable or corrupt entries count as misses.

        Any failure to load counts as a miss -- unpickling executes class
        lookups, so a stale entry can raise nearly anything (including
        ``ImportError`` after a module rename); recomputing the point is
        always a safe answer.
        """
        try:
            with open(self._path(key), "rb") as handle:
                return True, pickle.load(handle)
        except Exception:
            return False, None

    def put(self, key: str, value: Any) -> None:
        """Store one point result atomically."""
        final_path = self._path(key)
        fd, temp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, final_path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(
            f"jobs must be a positive integer, or 0/None for one worker per CPU; got {jobs}"
        )
    return jobs


#: Per-point timing callback: ``hook(point, seconds, cached)``.  ``seconds``
#: is the point function's own wall-clock (measured inside the worker for
#: pooled execution, so it excludes queueing); cache hits report 0.0 with
#: ``cached=True``.
TimingHook = Callable[[SweepPoint, float, bool], None]


def _execute_payload(
    payload: Tuple[Callable[..., Any], Dict[str, Any]],
) -> Tuple[float, Any]:
    """Run one point in a worker process (module-level, hence picklable).

    Returns ``(seconds, result)`` so the parent can report per-point wall
    clock without a second round-trip to the worker.
    """
    func, kwargs = payload
    started = time.perf_counter()  # repro: ignore[DET004] elapsed-time metadata only; never feeds simulation state or results
    result = func(**kwargs)
    return time.perf_counter() - started, result  # repro: ignore[DET004] elapsed-time metadata only; never feeds simulation state or results


def _execute_group_payload(
    payloads: List[Tuple[Callable[..., Any], Dict[str, Any]]],
) -> List[Tuple[float, Any]]:
    """Run several points in one worker submission (module-level, picklable).

    One pickled submission and one result message cover the whole group,
    but each point's wall clock is still measured individually inside the
    worker -- grouping changes the submission envelope only, never the
    per-point timing (or caching) bookkeeping.
    """
    return [_execute_payload(payload) for payload in payloads]


def iter_plan(
    plan: ReplicationPlan,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    pool: Optional[ProcessPoolExecutor] = None,
    timing_hook: Optional[TimingHook] = None,
    group_size: int = 1,
) -> Iterator[Tuple[SweepPoint, Any]]:
    """Execute a plan, yielding ``(point, result)`` pairs *in plan order*.

    ``jobs=1`` runs every point in-process with no executor (the serial
    fallback -- also the path taken on single-CPU machines); ``jobs>1``
    submits all points to a :class:`ProcessPoolExecutor` up front and then
    yields results in plan order as they complete, so aggregation can
    stream without ever observing scheduler-dependent ordering.

    ``pool`` lends an existing executor instead of creating one per call
    (the caller keeps ownership and shuts it down) -- used by callers that
    execute many small plans in a loop, e.g. the SAN solver's
    relative-precision chunks, where a per-chunk pool startup would cost
    more than the chunk itself.

    ``timing_hook`` receives ``(point, seconds, cached)`` per point as its
    result is yielded; the artifact layer uses it to record per-point wall
    clock in run manifests.  Timings never influence results or caching.

    ``group_size`` bundles that many consecutive uncached points into one
    pool submission (the SAN solver ships several lock-step batches per
    worker this way).  Grouping amortises pickling and result transport;
    it never affects the serial path, point seeds, cache keys, per-point
    timings, or the plan-order yield -- ``group_size=N`` is bit-identical
    to ``group_size=1``.
    """
    jobs = resolve_jobs(jobs)
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    keys: List[Optional[str]] = []
    cached: Dict[int, Any] = {}
    for index, point in enumerate(plan.points):
        if cache is None:
            keys.append(None)
            continue
        key = ResultCache.key(point, plan.settings)
        keys.append(key)
        hit, value = cache.get(key)
        if hit:
            cached[index] = value

    def finish(
        index: int, point: SweepPoint, seconds: float, result: Any
    ) -> Tuple[SweepPoint, Any]:
        if cache is not None and index not in cached:
            key = keys[index]
            assert key is not None
            cache.put(key, result)
        if timing_hook is not None:
            timing_hook(point, seconds, False)
        return point, result

    def finish_cached(point: SweepPoint, value: Any) -> Tuple[SweepPoint, Any]:
        if timing_hook is not None:
            timing_hook(point, 0.0, True)
        return point, value

    if pool is None and (jobs == 1 or len(plan.points) - len(cached) <= 1):
        for index, point in enumerate(plan.points):
            if index in cached:
                yield finish_cached(point, cached[index])
                continue
            started = time.perf_counter()  # repro: ignore[DET004] elapsed-time metadata only; never feeds simulation state or results
            result = point.func(**point.call_kwargs(plan.settings))
            yield finish(index, point, time.perf_counter() - started, result)  # repro: ignore[DET004] elapsed-time metadata only; never feeds simulation state or results
        return

    pending = [
        index for index in range(len(plan.points)) if index not in cached
    ]
    groups = [
        pending[start : start + group_size]
        for start in range(0, len(pending), group_size)
    ]
    owned = pool is None
    if owned:
        pool = ProcessPoolExecutor(max_workers=min(jobs, max(1, len(groups))))
    try:
        # index -> (group future, offset of this point's result in it).
        futures: Dict[int, Tuple[Any, int]] = {}
        for group in groups:
            future = pool.submit(
                _execute_group_payload,
                [
                    (
                        plan.points[index].func,
                        plan.points[index].call_kwargs(plan.settings),
                    )
                    for index in group
                ],
            )
            for offset, index in enumerate(group):
                futures[index] = (future, offset)
        for index, point in enumerate(plan.points):
            if index in cached:
                yield finish_cached(point, cached[index])
            else:
                future, offset = futures[index]
                seconds, result = future.result()[offset]
                yield finish(index, point, seconds, result)
    finally:
        if owned:
            pool.shutdown()


def execute_plan(
    plan: ReplicationPlan,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    group_size: int = 1,
) -> List[Any]:
    """Execute a plan and return the point results in plan order."""
    cache = ResultCache(cache_dir) if cache_dir else None
    return [
        result
        for _point, result in iter_plan(
            plan, jobs=jobs, cache=cache, group_size=group_size
        )
    ]
