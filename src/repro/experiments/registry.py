"""Declarative experiment registry: experiments as data, not copy-paste.

Every figure and table of the paper used to be a hand-rolled
``run_*``/``format_*`` pair hard-wired into the CLI.  This module turns
each one into an :class:`ExperimentSpec` -- name, description, sweep
construction, aggregation and renderers -- that **self-registers** on
import, so the CLI (and any downstream tool) discovers experiments
dynamically instead of naming them in code:

* :class:`ExperimentSpec` -- the declarative description of one
  experiment.  Plan-shaped experiments supply ``build_plan`` +
  ``aggregate``; composite experiments (which chain sub-experiments, e.g.
  the Figure 7(b) calibration) supply ``run`` instead.
* :class:`ExperimentContext` -- the shared execution context: resolved
  settings, worker count, result cache and the per-point timing trail that
  feeds run manifests.  This is the single code path replacing the
  per-module jobs/cache boilerplate.
* :class:`ExperimentOptions` -- CLI-level options (scale, seed, jobs,
  cache dir, SAN executor strategy/batch size) with the one shared
  validation/resolution routine.
* :func:`run_experiment` -- execute a spec and return the result *plus*
  its :class:`~repro.experiments.artifacts.RunManifest`.
* :func:`register` / :func:`get` / :func:`names` / :func:`iter_specs` /
  :func:`discover` -- the registry itself.
"""

from __future__ import annotations

import importlib
import os
import pkgutil
import time
from dataclasses import asdict, dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.experiments.artifacts import (
    PointTiming,
    RunManifest,
    Table,
    artifact_payload,
    json_safe,
    utc_timestamp,
)
from repro.experiments.runner import (
    ReplicationPlan,
    ResultCache,
    SweepPoint,
    iter_plan,
)
from repro.experiments.settings import ExperimentSettings
from repro.san import execution

__all__ = [
    "Aggregate",
    "ExperimentContext",
    "ExperimentOptions",
    "ExperimentRun",
    "ExperimentSpec",
    "discover",
    "get",
    "iter_specs",
    "names",
    "register",
    "run_experiment",
]

T = TypeVar("T")

#: Streaming aggregation: consume ``(point, result)`` pairs in plan order
#: and build the experiment's result object.
Aggregate = Callable[[ExperimentSettings, Iterable[Tuple[SweepPoint, Any]]], Any]


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------
@dataclass
class ExperimentContext:
    """Everything an experiment needs at run time, resolved exactly once.

    The context owns the settings, the worker count, the (optional) result
    cache and the timing trail.  Experiment implementations run their plans
    through :meth:`iter` and wrap ad-hoc stages in :meth:`record`, so every
    unit of work lands in the manifest without per-module plumbing.
    """

    settings: ExperimentSettings
    jobs: Optional[int] = 1
    cache: Optional[ResultCache] = None
    timings: List[PointTiming] = field(default_factory=list)

    @staticmethod
    def create(
        settings: Optional[ExperimentSettings] = None,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
    ) -> "ExperimentContext":
        """Build a context, defaulting settings from the environment."""
        return ExperimentContext(
            settings=settings or ExperimentSettings.from_environment(),
            jobs=jobs,
            cache=ResultCache(cache_dir) if cache_dir else None,
        )

    # ------------------------------------------------------------------
    def iter(self, plan: ReplicationPlan) -> Iterator[Tuple[SweepPoint, Any]]:
        """Execute a plan with this context's jobs/cache, recording timings."""
        return iter_plan(
            plan, jobs=self.jobs, cache=self.cache, timing_hook=self._record_point
        )

    def record(self, label: str, step: Callable[[], T]) -> T:
        """Run an ad-hoc (non-plan) stage, timing it into the manifest."""
        started = time.perf_counter()  # repro: ignore[DET004] elapsed-time metadata only; never feeds simulation state or results
        result = step()
        self.timings.append(
            PointTiming(label=label, indices=(), seconds=time.perf_counter() - started)  # repro: ignore[DET004] elapsed-time metadata only; never feeds simulation state or results
        )
        return result

    def _record_point(self, point: SweepPoint, seconds: float, cached: bool) -> None:
        self.timings.append(
            PointTiming(
                label=point.label, indices=point.indices, seconds=seconds, cached=cached
            )
        )


# ----------------------------------------------------------------------
# Experiment specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """The declarative description of one experiment.

    Attributes
    ----------
    name:
        The CLI subcommand and artifact-directory name.
    description:
        One line naming the paper element the experiment regenerates.
    render_text:
        Result -> the paper-faithful textual report.
    to_record:
        Result -> the JSON-able ``data`` object of the artifact envelope.
    build_plan / aggregate:
        The sweep construction and streaming aggregation of a plan-shaped
        experiment (the common case).
    run:
        Full custom execution for composite experiments that chain
        sub-experiments or ad-hoc measurement stages; overrides
        ``build_plan``/``aggregate`` when set.
    to_rows:
        Optional result -> ``(header, rows)`` tabular series; experiments
        providing it additionally emit CSV artifacts.
    scales:
        The scale names the experiment supports; empty (the default) means
        every scale.  :func:`run_experiment` rejects runs at an unsupported
        scale.
    """

    name: str
    description: str
    render_text: Callable[[Any], str]
    to_record: Callable[[Any], Dict[str, Any]]
    build_plan: Optional[Callable[[ExperimentSettings], ReplicationPlan]] = None
    aggregate: Optional[Aggregate] = None
    run: Optional[Callable[[ExperimentContext], Any]] = None
    to_rows: Optional[Callable[[Any], Table]] = None
    scales: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.run is None and (self.build_plan is None or self.aggregate is None):
            raise ValueError(
                f"experiment {self.name!r} must define either run= or both "
                "build_plan= and aggregate="
            )

    # ------------------------------------------------------------------
    def build_points(self, settings: ExperimentSettings) -> List[SweepPoint]:
        """The sweep points this experiment would execute under ``settings``.

        Composite experiments (``run=`` without ``build_plan=``) construct
        their plans mid-run from intermediate results, so they report no
        points up front.
        """
        if self.build_plan is None:
            return []
        return list(self.build_plan(settings).points)

    def execute(self, context: ExperimentContext) -> Any:
        """Run the experiment in ``context`` and return its result object."""
        if self.run is not None:
            return self.run(context)
        assert self.build_plan is not None and self.aggregate is not None
        plan = self.build_plan(context.settings)
        return self.aggregate(context.settings, context.iter(plan))


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a spec under its name (idempotent for the same object).

    Returns the spec so modules can write ``SPEC = register(ExperimentSpec(...))``.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ValueError(f"experiment {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


_DISCOVERED = False


def discover() -> None:
    """Import every module of :mod:`repro.experiments` so specs self-register.

    Idempotent and memoised: the registry cannot change mid-process, so
    only the first call pays for the package scan.
    """
    global _DISCOVERED
    if _DISCOVERED:
        return
    import repro.experiments as package

    for info in pkgutil.iter_modules(package.__path__):
        if not info.name.startswith("_"):
            importlib.import_module(f"repro.experiments.{info.name}")
    _DISCOVERED = True


def names() -> List[str]:
    """All registered experiment names, sorted (after discovery)."""
    discover()
    return sorted(_REGISTRY)


def iter_specs() -> List[ExperimentSpec]:
    """All registered specs, sorted by name (after discovery)."""
    discover()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get(name: str) -> ExperimentSpec:
    """Look an experiment up by name (after discovery)."""
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


# ----------------------------------------------------------------------
# Options and execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentOptions:
    """Scale/seed/jobs/cache/executor options with one shared validation path.

    Both the CLI and library callers resolve through here, so the
    ``--jobs``/``--cache-dir``/``--strategy``/``--batch-size`` checks (and
    their error wording) exist in exactly one place.

    ``strategy`` and ``batch_size`` select the SAN solver executor for
    every simulative point of the run by activating the process execution
    policy (:mod:`repro.san.execution`) when the context is built.  They
    never change results -- both executors are bit-identical per
    replication -- and are therefore deliberately absent from settings
    hashes and result-cache keys: flipping the strategy reuses the cache.
    """

    scale: Optional[str] = None
    seed: Optional[int] = None
    jobs: Optional[int] = 1
    cache_dir: Optional[str] = None
    strategy: Optional[str] = None
    batch_size: Optional[Any] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on invalid options."""
        if self.jobs is not None and self.jobs < 0:
            raise ValueError(
                "--jobs must be a positive integer, or 0 for one worker per CPU; "
                f"got {self.jobs}"
            )
        if (
            self.cache_dir is not None
            and os.path.exists(self.cache_dir)
            and not os.path.isdir(self.cache_dir)
        ):
            raise ValueError(
                f"--cache-dir {self.cache_dir!r} exists and is not a directory"
            )
        if self.strategy is not None:
            execution.parse_strategy(self.strategy, source="--strategy")
        if self.batch_size is not None:
            execution.parse_batch_size(self.batch_size, source="--batch-size")

    def resolve_settings(self) -> ExperimentSettings:
        """The settings selected by ``scale`` (or the environment) and ``seed``."""
        if self.scale is not None:
            settings = ExperimentSettings.from_scale(self.scale)
        else:
            settings = ExperimentSettings.from_environment()
        if self.seed is not None:
            settings = replace(settings, seed=self.seed)
        return settings

    def context(
        self, settings: Optional[ExperimentSettings] = None
    ) -> ExperimentContext:
        """Validate and build the execution context.

        Set ``strategy``/``batch_size`` fields are overlaid onto the
        process execution policy (unset fields leave any environment-level
        policy alone), so every SAN solver call of the run -- including
        those inside pooled worker processes, which inherit the policy's
        environment transport -- resolves to them.
        """
        self.validate()
        if self.strategy is not None or self.batch_size is not None:
            current = execution.active_policy()
            execution.activate(
                execution.ExecutionPolicy(
                    strategy=self.strategy
                    if self.strategy is not None
                    else current.strategy,
                    batch_size=self.batch_size
                    if self.batch_size is not None
                    else current.batch_size,
                )
            )
        return ExperimentContext.create(
            settings or self.resolve_settings(), jobs=self.jobs, cache_dir=self.cache_dir
        )


@dataclass
class ExperimentRun:
    """One executed experiment: its result object plus run provenance."""

    spec: ExperimentSpec
    result: Any
    manifest: RunManifest

    def text(self) -> str:
        """The paper-faithful textual report."""
        return self.spec.render_text(self.result)

    def payload(self) -> Dict[str, Any]:
        """The schema-valid JSON artifact envelope (manifest included)."""
        return artifact_payload(
            self.spec.name,
            self.spec.description,
            self.spec.to_record(self.result),
            self.manifest,
        )

    def table(self) -> Optional[Table]:
        """The tabular series, if the experiment defines one."""
        if self.spec.to_rows is None:
            return None
        return self.spec.to_rows(self.result)


def run_experiment(
    spec: ExperimentSpec,
    options: Optional[ExperimentOptions] = None,
    settings: Optional[ExperimentSettings] = None,
) -> ExperimentRun:
    """Execute one spec and assemble its run manifest.

    ``settings`` overrides the scale/seed resolution of ``options`` (used
    by callers that already hold a settings object); the manifest's scale
    is then derived from the settings themselves, so provenance never
    reflects an ``options.scale`` the run did not actually use.
    """
    from repro import __version__

    options = options or ExperimentOptions()
    if settings is None:
        settings = options.resolve_settings()
        scale = options.scale or settings.scale_name()
    else:
        scale = settings.scale_name()
    if spec.scales and scale not in spec.scales:
        raise ValueError(
            f"experiment {spec.name!r} does not support scale {scale!r} "
            f"(supported: {list(spec.scales)})"
        )
    context = options.context(settings)
    started_at = utc_timestamp()
    started = time.perf_counter()  # repro: ignore[DET004] elapsed-time metadata only; never feeds simulation state or results
    result = spec.execute(context)
    wall_clock = time.perf_counter() - started  # repro: ignore[DET004] elapsed-time metadata only; never feeds simulation state or results
    manifest = RunManifest(
        experiment=spec.name,
        scale=scale,
        seed=settings.seed,
        jobs=options.jobs,
        settings_hash=settings.settings_hash(),
        settings=json_safe(asdict(settings)),
        started_at=started_at,
        wall_clock_seconds=wall_clock,
        points=tuple(context.timings),
        version=__version__,
    )
    return ExperimentRun(spec=spec, result=result, manifest=manifest)
