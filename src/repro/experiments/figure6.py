"""Figure 6: end-to-end delay of unicast and broadcast messages.

The paper measures the cumulative distribution of the end-to-end delay of
unicast messages and of broadcast messages to 3 and to 5 destinations
(averaged over the destinations), and fits the unicast curve with the
bi-modal uniform distribution used as the SAN model's ``t_net`` input
(§5.1).  This generator reproduces the micro-benchmark on the simulated
cluster and reports both the CDFs and the fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.measurement import EndToEndDelayResult, measure_end_to_end_delays
from repro.experiments.registry import ExperimentContext, ExperimentSpec, register
from repro.experiments.runner import ReplicationPlan, SweepPoint
from repro.experiments.settings import ExperimentSettings
from repro.sanmodels.parameters import BimodalFit, SANParameters
from repro.stats.cdf import EmpiricalCDF

#: Quantiles reported in the textual rendering and the artifacts.
REPORT_PROBABILITIES: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


@dataclass
class Figure6Result:
    """End-to-end delay distributions (the series of Figure 6)."""

    unicast_delays: List[float]
    broadcast_delays_by_n: Dict[int, List[float]]
    unicast_fit: BimodalFit

    def unicast_cdf(self) -> EmpiricalCDF:
        """CDF of the unicast end-to-end delays."""
        return EmpiricalCDF(self.unicast_delays)

    def broadcast_cdf(self, n_processes: int) -> EmpiricalCDF:
        """CDF of the broadcast-to-(n-1) end-to-end delays."""
        return EmpiricalCDF(self.broadcast_delays_by_n[n_processes])

    def san_parameters(self, t_send_ms: float = 0.025) -> SANParameters:
        """SAN network parameters derived from these measurements (§5.1)."""
        return SANParameters.from_measured_delays(
            unicast_delays=self.unicast_delays,
            broadcast_delays_by_n={
                n: delays for n, delays in self.broadcast_delays_by_n.items()
            },
            t_send_ms=t_send_ms,
        )

    def rows(self, probabilities: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)) -> List[Tuple[str, List[float]]]:
        """Quantile rows suitable for a textual rendering of Figure 6."""
        rows: List[Tuple[str, List[float]]] = [
            ("unicast", [self.unicast_cdf().quantile(p) for p in probabilities])
        ]
        for n, delays in sorted(self.broadcast_delays_by_n.items()):
            cdf = EmpiricalCDF(delays)
            rows.append((f"broadcast to {n}", [cdf.quantile(p) for p in probabilities]))
        return rows


def _figure6_point(
    settings: ExperimentSettings, n_processes: int, point_seed: int
) -> EndToEndDelayResult:
    """One Figure 6 point: the delay micro-benchmark on an n-process cluster."""
    config = settings.cluster_for(n_processes, point_seed)
    return measure_end_to_end_delays(config, probes=settings.delay_probes)


def figure6_plan(
    settings: ExperimentSettings,
    broadcast_process_counts: Sequence[int] = (3, 5),
) -> ReplicationPlan:
    """The Figure 6 sweep: one point per broadcast cluster size."""
    points = tuple(
        SweepPoint.make(
            _figure6_point,
            kwargs={"settings": settings, "n_processes": n},
            indices=(6, index),
            label=f"figure6 n={n}",
        )
        for index, n in enumerate(broadcast_process_counts)
    )
    return ReplicationPlan(settings=settings, points=points, name="figure6")


def aggregate_figure6(
    settings: ExperimentSettings,
    pairs: Iterable[Tuple[SweepPoint, Any]],
) -> Figure6Result:
    """Assemble the Figure 6 result from streamed ``(point, result)`` pairs."""
    broadcast_delays: Dict[int, List[float]] = {}
    unicast_delays: List[float] = []
    for point, result in pairs:
        n = dict(point.kwargs)["n_processes"]
        broadcast_delays[n] = result.broadcast_delays
        # The unicast delay does not depend on n; pool the probes from all
        # cluster sizes to smooth the CDF (the paper plots a single curve).
        unicast_delays.extend(result.unicast_delays)
    fit = BimodalFit.from_samples(unicast_delays)
    return Figure6Result(
        unicast_delays=unicast_delays,
        broadcast_delays_by_n=broadcast_delays,
        unicast_fit=fit,
    )


def run_figure6(
    settings: ExperimentSettings | None = None,
    broadcast_process_counts: Sequence[int] = (3, 5),
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> Figure6Result:
    """Run the Figure 6 micro-benchmark.

    Parameters
    ----------
    settings:
        Experiment scale (defaults to the environment-selected preset).
    broadcast_process_counts:
        Cluster sizes for which the broadcast delay is measured (the paper
        uses 3 and 5).
    jobs:
        Worker processes for the sweep (1 = serial, 0/None = one per CPU).
    cache_dir:
        Optional on-disk result cache.
    """
    context = ExperimentContext.create(settings, jobs=jobs, cache_dir=cache_dir)
    return run_figure6_in(context, broadcast_process_counts)


def run_figure6_in(
    context: ExperimentContext,
    broadcast_process_counts: Sequence[int] = (3, 5),
) -> Figure6Result:
    """Context-based entry point (shared with composite experiments)."""
    plan = figure6_plan(context.settings, broadcast_process_counts)
    return aggregate_figure6(context.settings, context.iter(plan))


def format_figure6(result: Figure6Result) -> str:
    """Render Figure 6 as a quantile table (one row per curve)."""
    probabilities = REPORT_PROBABILITIES
    header = "curve              " + "  ".join(f"p{int(p * 100):02d}" for p in probabilities)
    lines = [header]
    for label, quantiles in result.rows(probabilities):
        values = "  ".join(f"{q:0.3f}" for q in quantiles)
        lines.append(f"{label:<18} {values}")
    lines.append(
        "unicast bi-modal fit: "
        f"U[{result.unicast_fit.low1:.3f}, {result.unicast_fit.high1:.3f}] w.p. {result.unicast_fit.p1:.2f}, "
        f"U[{result.unicast_fit.low2:.3f}, {result.unicast_fit.high2:.3f}] w.p. {1 - result.unicast_fit.p1:.2f}"
    )
    return "\n".join(lines)


def figure6_record(result: Figure6Result) -> Dict[str, Any]:
    """The JSON artifact data of Figure 6."""
    fit = result.unicast_fit
    return {
        "quantile_probabilities": list(REPORT_PROBABILITIES),
        "curves": [
            {"label": label, "quantiles_ms": list(quantiles)}
            for label, quantiles in result.rows(REPORT_PROBABILITIES)
        ],
        "unicast_fit": {
            "low1_ms": fit.low1,
            "high1_ms": fit.high1,
            "p1": fit.p1,
            "low2_ms": fit.low2,
            "high2_ms": fit.high2,
        },
        "samples": {
            "unicast": len(result.unicast_delays),
            "broadcast_by_n": {
                n: len(delays) for n, delays in sorted(result.broadcast_delays_by_n.items())
            },
        },
    }


def figure6_rows(result: Figure6Result):
    """The CSV series of Figure 6: one row of quantiles per curve."""
    header = ["curve", *(f"p{int(p * 100):02d}_ms" for p in REPORT_PROBABILITIES)]
    rows = [
        [label, *quantiles] for label, quantiles in result.rows(REPORT_PROBABILITIES)
    ]
    return header, rows


SPEC = register(
    ExperimentSpec(
        name="figure6",
        description="Fig. 6: end-to-end delay CDFs of unicast and broadcast messages",
        build_plan=figure6_plan,
        aggregate=aggregate_figure6,
        render_text=format_figure6,
        to_record=figure6_record,
        to_rows=figure6_rows,
    )
)
