"""The per-process state machine of the SAN consensus model (§3.2, Fig. 2).

Each process is modelled by the state machine underlying one round of the
algorithm; only the place corresponding to the current state is marked.
The submodels of the paper map to the following activities:

* **P1C** (coordinator's actions): ``propose`` -- fires once a majority of
  estimates has been collected and broadcasts the proposal; ``decide`` --
  fires once a majority of positive acknowledgements has been collected and
  broadcasts the decision; ``abort_round`` -- fires when a negative
  acknowledgement arrives and starts the next round.
* **P1A1** (participant sends its estimate and waits for the proposal):
  part of ``dispatch``.
* **P1A2a** (participant received the proposal): ``ack``.
* **P1A2b** (participant suspects the coordinator): ``nack``.
* **P1A3** (start of a new round): the round place is incremented and the
  ``start`` token re-deposited by ``ack`` / ``nack`` / ``abort_round``;
  ``dispatch`` then routes the process into its coordinator or participant
  role for the new round.

As in the paper, messages are not tagged with their round number: a message
addressed to process ``j`` is interpreted against ``j``'s current round,
which is the "round number modulo n" simplification of §3.2 (process ``j``
coordinates exactly the rounds congruent to ``j`` modulo ``n``).
"""

from __future__ import annotations

from typing import Callable

from repro.consensus.messages import majority_of
from repro.san.activities import Case, InstantaneousActivity
from repro.san.gates import InputGate, OutputGate
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.places import Place
from repro.sanmodels.fd_model import suspect_place
from repro.sanmodels.network_model import broadcast_send_queue, unicast_send_queue

#: Global place counting processes that have decided (the latency reward and
#: the stop predicate watch it).
DECIDED_ANY_PLACE = "decided_any"


def round_place(process_id: int) -> str:
    """Place whose marking is the current round number of the process."""
    return f"p{process_id}.round"


def decided_place(process_id: int) -> str:
    """Place marked once the process has decided."""
    return f"p{process_id}.decided"


def _coordinator(marking: Marking, process_id: int, n_processes: int) -> int:
    return (marking[round_place(process_id)] - 1) % n_processes


def add_process_state_machine(
    model: SANModel,
    process_id: int,
    n_processes: int,
    crashed: bool = False,
) -> None:
    """Add the round state machine of one process to ``model``.

    The message transmission paths referenced by the output gates
    (``msg.est.*``, ``msg.prop.*``, ...) must be added separately with the
    helpers of :mod:`repro.sanmodels.network_model`; they are pure sinks /
    sources of tokens from the state machine's point of view.
    """
    pid = process_id
    majority = majority_of(n_processes)
    p = f"p{pid}"

    # ------------------------------------------------------------------
    # Places
    # ------------------------------------------------------------------
    model.add_place(Place(f"{p}.cpu", 1))
    model.add_place(Place(f"{p}.crashed", 1 if crashed else 0))
    model.add_place(Place(f"{p}.start", 0 if crashed else 1))
    model.add_place(Place(round_place(pid), 1))
    for state in ("wait_est", "wait_ack", "wait_prop"):
        model.add_place(Place(f"{p}.{state}", 0))
    for counter in ("est_count", "ack_count", "nack_count", "prop_pending"):
        model.add_place(Place(f"{p}.{counter}", 0))
    model.add_place(Place(decided_place(pid), 0))
    model.add_place(Place(DECIDED_ANY_PLACE, 0))

    if crashed:
        # A crashed process never acts: no activities are needed (its start
        # place is empty), but incoming-message counters still exist so that
        # deliveries addressed to it have somewhere to go.
        return

    # ------------------------------------------------------------------
    # Output-gate functions (closures over this process's place names)
    # ------------------------------------------------------------------
    def dispatch_effect(marking: Marking) -> None:
        coordinator = _coordinator(marking, pid, n_processes)
        if coordinator == pid:
            marking.add(f"{p}.wait_est")
        else:
            marking.add(unicast_send_queue("est", pid, coordinator))
            marking.add(f"{p}.wait_prop")

    def propose_effect(marking: Marking) -> None:
        marking.add(broadcast_send_queue("prop", pid))
        marking.add(f"{p}.wait_ack")

    def decide_effect(marking: Marking) -> None:
        marking.add(broadcast_send_queue("dec", pid))
        if marking[decided_place(pid)] == 0:
            marking[decided_place(pid)] = 1
            marking.add(DECIDED_ANY_PLACE)

    def abort_effect(marking: Marking) -> None:
        marking[f"{p}.ack_count"] = 0
        marking[f"{p}.nack_count"] = 0
        marking[round_place(pid)] = marking[round_place(pid)] + 1
        marking.add(f"{p}.start")

    def ack_effect(marking: Marking) -> None:
        coordinator = _coordinator(marking, pid, n_processes)
        marking.add(unicast_send_queue("ack", pid, coordinator))
        marking[round_place(pid)] = marking[round_place(pid)] + 1
        marking.add(f"{p}.start")

    def nack_effect(marking: Marking) -> None:
        coordinator = _coordinator(marking, pid, n_processes)
        marking.add(unicast_send_queue("nack", pid, coordinator))
        marking[round_place(pid)] = marking[round_place(pid)] + 1
        marking.add(f"{p}.start")

    def output_gate(label: str, function: Callable[[Marking], None]) -> OutputGate:
        return OutputGate(name=f"{p}.{label}", function=function)

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------
    # New round dispatch (P1A1 / start of P1C).
    model.add_activity(
        InstantaneousActivity(
            name=f"{p}.dispatch",
            input_arcs=[f"{p}.start"],
            cases=[Case.build(output_gates=[output_gate("og_dispatch", dispatch_effect)])],
            rank=0,
        )
    )

    # P1C: propose once a majority of estimates is available (the
    # coordinator's own estimate is counted implicitly, hence majority - 1
    # *received* estimates suffice).
    model.add_activity(
        InstantaneousActivity(
            name=f"{p}.propose",
            input_arcs=[f"{p}.wait_est"],
            input_gates=[
                InputGate(
                    name=f"{p}.ig_majority_estimates",
                    predicate=lambda marking, _place=f"{p}.est_count": (
                        marking[_place] >= majority - 1
                    ),
                    watched_places=(f"{p}.est_count",),
                )
            ],
            cases=[Case.build(output_gates=[output_gate("og_propose", propose_effect)])],
            rank=1,
        )
    )

    # P1C: decide once a majority of positive acknowledgements is available
    # (again counting the coordinator's own acknowledgement implicitly).
    model.add_activity(
        InstantaneousActivity(
            name=f"{p}.decide",
            input_arcs=[f"{p}.wait_ack"],
            input_gates=[
                InputGate(
                    name=f"{p}.ig_majority_acks",
                    predicate=lambda marking, _place=f"{p}.ack_count": (
                        marking[_place] >= majority - 1
                    ),
                    watched_places=(f"{p}.ack_count",),
                )
            ],
            cases=[Case.build(output_gates=[output_gate("og_decide", decide_effect)])],
            rank=2,
        )
    )

    # P1C: pass to the next round upon a negative acknowledgement.
    model.add_activity(
        InstantaneousActivity(
            name=f"{p}.abort_round",
            input_arcs=[f"{p}.wait_ack"],
            input_gates=[
                InputGate(
                    name=f"{p}.ig_any_nack",
                    predicate=lambda marking, _place=f"{p}.nack_count": marking[_place] >= 1,
                    watched_places=(f"{p}.nack_count",),
                )
            ],
            cases=[Case.build(output_gates=[output_gate("og_abort", abort_effect)])],
            rank=3,
        )
    )

    # P1A2a: the proposal arrived -- acknowledge and move to the next round.
    model.add_activity(
        InstantaneousActivity(
            name=f"{p}.ack",
            input_arcs=[f"{p}.wait_prop", f"{p}.prop_pending"],
            cases=[Case.build(output_gates=[output_gate("og_ack", ack_effect)])],
            rank=4,
        )
    )

    # P1A2b: the coordinator is suspected -- refuse and move to the next round.
    suspicion_watch = tuple(
        suspect_place(pid, peer) for peer in range(n_processes) if peer != pid
    ) + (round_place(pid),)

    def coordinator_suspected(marking: Marking) -> bool:
        coordinator = _coordinator(marking, pid, n_processes)
        if coordinator == pid:
            return False
        return marking[suspect_place(pid, coordinator)] >= 1

    model.add_activity(
        InstantaneousActivity(
            name=f"{p}.nack",
            input_arcs=[f"{p}.wait_prop"],
            input_gates=[
                InputGate(
                    name=f"{p}.ig_coordinator_suspected",
                    predicate=coordinator_suspected,
                    watched_places=suspicion_watch,
                )
            ],
            cases=[Case.build(output_gates=[output_gate("og_nack", nack_effect)])],
            rank=5,
        )
    )
