"""The SAN failure-detector submodel (§3.4, Fig. 5 of the paper).

Each process monitors every other process, so each process has ``n - 1``
failure-detector modules.  Each module is a two-state process alternating
between "trust" and "suspect"; its transitions are timed activities whose
mean sojourn times are set so that the model reproduces the measured QoS
metrics ``T_M`` (mistake duration) and ``T_MR`` (mistake recurrence time).
Both a deterministic and an exponential sojourn-time distribution are
supported, as in the paper.  An instantaneous activity draws the initial
state with the steady-state probabilities (the paper's ``fd`` activity in
Fig. 5).

The modules of different pairs are mutually independent -- the paper's
simplifying assumption, identified in §5.4 as the main limitation of the
model when suspicions are frequent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.san.activities import Case, InstantaneousActivity, TimedActivity
from repro.san.model import SANModel
from repro.san.places import Place
from repro.stats.distributions import Constant, Distribution, Exponential

TransitionKind = Literal["deterministic", "exponential"]


@dataclass(frozen=True)
class FDModelSettings:
    """QoS-derived settings of the abstract failure-detector model.

    Attributes
    ----------
    mistake_recurrence_time:
        Mean time ``T_MR`` between the starts of consecutive wrong
        suspicions.
    mistake_duration:
        Mean duration ``T_M`` of a wrong suspicion.
    kind:
        Sojourn-time distribution: ``"deterministic"`` (minimum variance) or
        ``"exponential"`` (high variance), the two cases of §3.4.
    """

    mistake_recurrence_time: float
    mistake_duration: float
    kind: TransitionKind = "exponential"

    def __post_init__(self) -> None:
        if self.mistake_duration < 0:
            raise ValueError("mistake_duration must be >= 0")
        if self.mistake_recurrence_time <= self.mistake_duration:
            raise ValueError(
                "mistake_recurrence_time must exceed mistake_duration "
                f"({self.mistake_recurrence_time} <= {self.mistake_duration})"
            )

    @property
    def trust_sojourn_mean(self) -> float:
        """Mean time spent trusting between two mistakes."""
        return self.mistake_recurrence_time - self.mistake_duration

    @property
    def suspicion_probability(self) -> float:
        """Steady-state probability of the *suspect* state (T_M / T_MR)."""
        return self.mistake_duration / self.mistake_recurrence_time

    def _distribution(self, mean: float) -> Distribution:
        if self.kind == "deterministic":
            return Constant(mean)
        if self.kind == "exponential":
            return Exponential(mean)
        raise ValueError(f"unknown FD transition kind: {self.kind!r}")

    def trust_to_suspect_distribution(self) -> Distribution:
        """Sojourn time in the *trust* state (activity ``ts`` of Fig. 5)."""
        return self._distribution(self.trust_sojourn_mean)

    def suspect_to_trust_distribution(self) -> Distribution:
        """Sojourn time in the *suspect* state (activity ``st`` of Fig. 5)."""
        return self._distribution(max(self.mistake_duration, 1e-9))


def trust_place(monitor: int, monitored: int) -> str:
    """Place that holds a token while ``monitor`` trusts ``monitored``."""
    return f"p{monitor}.trust.{monitored}"


def suspect_place(monitor: int, monitored: int) -> str:
    """Place that holds a token while ``monitor`` suspects ``monitored``."""
    return f"p{monitor}.susp.{monitored}"


def add_failure_detector_pair(
    model: SANModel,
    monitor: int,
    monitored: int,
    settings: FDModelSettings | None,
    initially_suspected: bool = False,
) -> None:
    """Add the failure-detector module of ``monitor`` watching ``monitored``.

    Parameters
    ----------
    model:
        The model under construction.
    monitor, monitored:
        The (ordered) pair of processes.
    settings:
        QoS-derived settings.  ``None`` builds a *static* detector (no
        transitions): the module stays forever in its initial state, which
        is what class-1 and class-2 scenarios need.
    initially_suspected:
        Initial state of the module (``True`` for a crashed ``monitored``
        process in class-2 scenarios).
    """
    trust = trust_place(monitor, monitored)
    suspect = suspect_place(monitor, monitored)

    if settings is None:
        model.add_place(Place(trust, 0 if initially_suspected else 1))
        model.add_place(Place(suspect, 1 if initially_suspected else 0))
        return

    # Dynamic (class-3) module: the initial state is drawn probabilistically
    # by an instantaneous activity, as in Fig. 5 of the paper.
    init = f"p{monitor}.fdinit.{monitored}"
    model.add_place(Place(trust, 0))
    model.add_place(Place(suspect, 0))
    model.add_place(Place(init, 1))
    q = settings.suspicion_probability
    model.add_activity(
        InstantaneousActivity(
            name=f"p{monitor}.fd.{monitored}.init",
            input_arcs=[init],
            cases=[
                Case.build(probability=1.0 - q, output_arcs=[trust], label="trust"),
                Case.build(probability=q, output_arcs=[suspect], label="suspect"),
            ],
            rank=6,
        )
    )
    model.add_activity(
        TimedActivity(
            name=f"p{monitor}.fd.{monitored}.ts",
            distribution=settings.trust_to_suspect_distribution(),
            input_arcs=[trust],
            cases=[Case.build(output_arcs=[suspect])],
        )
    )
    model.add_activity(
        TimedActivity(
            name=f"p{monitor}.fd.{monitored}.st",
            distribution=settings.suspect_to_trust_distribution(),
            input_arcs=[suspect],
            cases=[Case.build(output_arcs=[trust])],
        )
    )
