"""Assembly of the full SAN consensus model and its simulative solution.

:func:`build_consensus_model` composes, for ``n`` processes:

* the per-process round state machines (:mod:`repro.sanmodels.process_model`),
* the contention-aware message transmission paths
  (:mod:`repro.sanmodels.network_model`): unicast paths for estimates and
  (negative) acknowledgements, broadcast paths for proposals and decisions,
* the failure-detector modules (:mod:`repro.sanmodels.fd_model`),

into one :class:`~repro.san.model.SANModel`, following the paper's approach
of building one submodel per process and joining them over the shared
places (§3.2) -- the shared places here being the network token and the
global decision counter.

:class:`ConsensusSANExperiment` wraps the model in a
:class:`~repro.san.solver.SimulativeSolver` replication loop and exposes the
latency statistics the paper reports (mean with 90% confidence interval,
empirical CDF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple, Union

from repro.san.composition import join
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.places import Place
from repro.san.rewards import ActivityCounter, FirstPassageTime, RewardVariable
from repro.san.solver import SimulativeSolver, SolverResult
from repro.sanmodels.fd_model import FDModelSettings, add_failure_detector_pair
from repro.sanmodels.network_model import (
    NETWORK_PLACE,
    add_broadcast_path,
    add_unicast_path,
)
from repro.sanmodels.parameters import SANParameters
from repro.sanmodels.process_model import (
    DECIDED_ANY_PLACE,
    add_process_state_machine,
    decided_place,
)
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import ConfidenceInterval, confidence_interval
from repro.stats.distributions import Distribution


def consensus_stop_predicate(marking: Marking) -> bool:
    """Stop condition of a replication: some process has decided (§2.3)."""
    return marking[DECIDED_ANY_PLACE] >= 1


def latency_reward() -> FirstPassageTime:
    """The latency performance variable: time until the first decision."""
    return FirstPassageTime(consensus_stop_predicate, name="latency")


def _counter_effect(place: str) -> Callable[[Marking], None]:
    def effect(marking: Marking, _place: str = place) -> None:
        marking.add(_place)

    return effect


def _decision_effect(destination: int) -> Callable[[Marking], None]:
    decided = decided_place(destination)

    def effect(marking: Marking) -> None:
        if marking[decided] == 0:
            marking[decided] = 1
            marking.add(DECIDED_ANY_PLACE)

    return effect


def build_consensus_model(
    n_processes: int,
    parameters: Optional[SANParameters] = None,
    crashed: Sequence[int] = (),
    fd_settings: Optional[FDModelSettings] = None,
) -> SANModel:
    """Build the SAN model of one consensus execution.

    Parameters
    ----------
    n_processes:
        Number of processes ``n`` (the paper simulates n = 3 and n = 5).
    parameters:
        Network-model parameters; defaults to the paper's calibrated values.
    crashed:
        Processes crashed before the start (class-2 scenarios).  Crashed
        processes never act and are suspected forever by every correct
        process.
    fd_settings:
        QoS-derived failure-detector settings for class-3 scenarios;
        ``None`` yields accurate detectors (no wrong suspicions).
    """
    parameters = parameters or SANParameters()
    return build_consensus_model_from_distributions(
        n_processes,
        t_send=parameters.t_send_distribution(),
        t_receive=parameters.t_receive_distribution(),
        t_net_unicast=parameters.t_net_unicast_distribution(),
        t_net_broadcast=parameters.t_net_broadcast_distribution(n_processes),
        parameters=parameters,
        crashed=crashed,
        fd_settings=fd_settings,
    )


def build_consensus_model_from_distributions(
    n_processes: int,
    t_send: Distribution,
    t_receive: Distribution,
    t_net_unicast: Distribution,
    t_net_broadcast: Distribution,
    parameters: Optional[SANParameters] = None,
    crashed: Sequence[int] = (),
    fd_settings: Optional[FDModelSettings] = None,
    name_suffix: str = "",
) -> SANModel:
    """Build the consensus model with explicit stage distributions.

    This is the distribution-agnostic core of :func:`build_consensus_model`:
    the caller supplies the four stage distributions directly, which is how
    the exponential (Markovian) validation variants of
    :mod:`repro.sanmodels.exponential` reuse the exact same structure --
    same places, activities, gates and topology -- with analytically
    tractable timing.  ``parameters`` still supplies the loss/partition
    topology (``loss_rate``, ``connected``).
    """
    if n_processes < 1:
        raise ValueError(f"n_processes must be >= 1, got {n_processes}")
    parameters = parameters or SANParameters()
    crashed_set = set(crashed)
    if len(crashed_set) >= (n_processes + 1) // 2 and n_processes > 1:
        raise ValueError(
            "the ◇S algorithm requires a majority of correct processes; "
            f"{len(crashed_set)} of {n_processes} crashed"
        )

    submodels: list[SANModel] = []

    # Shared resources live in their own tiny submodel (the "common places"
    # of the UltraSAN Join).
    shared = SANModel("shared")
    shared.add_place(Place(NETWORK_PLACE, 1))
    shared.add_place(Place(DECIDED_ANY_PLACE, 0))
    submodels.append(shared)

    for pid in range(n_processes):
        submodel = SANModel(f"process{pid}")
        add_process_state_machine(
            submodel, pid, n_processes, crashed=pid in crashed_set
        )
        # Failure-detector modules of this process (it monitors every other).
        if pid not in crashed_set:
            for peer in range(n_processes):
                if peer == pid:
                    continue
                if peer in crashed_set or fd_settings is None:
                    add_failure_detector_pair(
                        submodel, pid, peer, settings=None,
                        initially_suspected=peer in crashed_set,
                    )
                else:
                    add_failure_detector_pair(submodel, pid, peer, settings=fd_settings)
        # Outgoing message paths of this process (a crashed process never
        # sends, so its outgoing paths are omitted).  A partitioned pair
        # keeps its unicast path but with loss probability 1, so the
        # process state machine can still enqueue send tokens; partitioned
        # broadcast destinations are simply excluded from the fanout.
        if pid not in crashed_set:
            for peer in range(n_processes):
                if peer == pid:
                    continue
                pair_loss = (
                    1.0 if not parameters.connected(pid, peer)
                    else parameters.loss_rate
                )
                add_unicast_path(
                    submodel, "est", pid, peer, t_send, t_net_unicast, t_receive,
                    delivery_effect=_counter_effect(f"p{peer}.est_count"),
                    loss_rate=pair_loss,
                )
                add_unicast_path(
                    submodel, "ack", pid, peer, t_send, t_net_unicast, t_receive,
                    delivery_effect=_counter_effect(f"p{peer}.ack_count"),
                    loss_rate=pair_loss,
                )
                add_unicast_path(
                    submodel, "nack", pid, peer, t_send, t_net_unicast, t_receive,
                    delivery_effect=_counter_effect(f"p{peer}.nack_count"),
                    loss_rate=pair_loss,
                )
            destinations = [
                peer
                for peer in range(n_processes)
                if peer != pid and parameters.connected(pid, peer)
            ]
            add_broadcast_path(
                submodel, "prop", pid, destinations, t_send, t_net_broadcast, t_receive,
                delivery_effect_for=lambda dst: _counter_effect(f"p{dst}.prop_pending"),
                loss_rate=parameters.loss_rate,
            )
            add_broadcast_path(
                submodel, "dec", pid, destinations, t_send, t_net_broadcast, t_receive,
                delivery_effect_for=_decision_effect,
                loss_rate=parameters.loss_rate,
            )
        submodels.append(submodel)

    scenario = "crash" if crashed_set else ("qos-fd" if fd_settings else "no-failure")
    return join(f"consensus-n{n_processes}-{scenario}{name_suffix}", submodels)


@dataclass
class SANLatencyResult:
    """Latency statistics produced by a SAN experiment."""

    latencies_ms: list[float]
    mean_ms: float
    interval: ConfidenceInterval
    replications: int
    undecided: int
    solver_result: SolverResult = field(repr=False, default=None)

    def cdf(self) -> EmpiricalCDF:
        """Empirical CDF of the per-replication latencies."""
        return EmpiricalCDF(self.latencies_ms)


class ConsensusSANExperiment:
    """A SAN simulation experiment for one scenario.

    Parameters
    ----------
    n_processes:
        Number of processes.
    parameters:
        Network-model parameters (defaults to the paper's calibrated fit).
    crashed:
        Initially crashed processes (class 2).
    fd_settings:
        QoS-driven failure-detector settings (class 3), or ``None``.
    seed:
        Master seed of the replication streams.
    max_time_ms:
        Per-replication time horizon (a safety bound; replications normally
        end at the first decision).
    confidence:
        Confidence level of the reported interval (the paper uses 0.90).
    strategy:
        Executor strategy of the simulative solver: ``"scalar"`` loops the
        replications, ``"batched"`` advances them lock-step
        (:class:`~repro.san.batched.BatchedSANExecutor`), ``None``
        (default) defers to the process execution policy
        (:mod:`repro.san.execution`).  Replication seeds and named
        streams are identical under both, so the results are
        bit-identical -- the strategy only changes throughput.
    batch_size:
        Replications per lock-step batch under the batched strategy: a
        count, ``"auto"`` (sized from the compiled model), or ``None``
        (default) to defer to the process execution policy.  Never
        changes results.
    """

    def __init__(
        self,
        n_processes: int,
        parameters: Optional[SANParameters] = None,
        crashed: Sequence[int] = (),
        fd_settings: Optional[FDModelSettings] = None,
        seed: int = 0,
        max_time_ms: float = 10_000.0,
        confidence: float = 0.90,
        strategy: Optional[str] = None,
        batch_size: Optional[Union[int, str]] = None,
    ) -> None:
        self.n_processes = n_processes
        self.parameters = parameters or SANParameters()
        self.crashed: Tuple[int, ...] = tuple(crashed)
        self.fd_settings = fd_settings
        self.seed = seed
        self.max_time_ms = max_time_ms
        self.confidence = confidence
        self.strategy = strategy
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    def model_factory(self) -> SANModel:
        """Build a fresh model instance (one per replication)."""
        return build_consensus_model(
            self.n_processes,
            parameters=self.parameters,
            crashed=self.crashed,
            fd_settings=self.fd_settings,
        )

    def reward_factory(self) -> Sequence[RewardVariable]:
        """The rewards observed in each replication."""
        return [latency_reward(), ActivityCounter(name="completions")]

    def solver(self) -> SimulativeSolver:
        """The simulative solver configured for this experiment."""
        return SimulativeSolver(
            model_factory=self.model_factory,
            reward_factory=self.reward_factory,
            stop_predicate=consensus_stop_predicate,
            max_time=self.max_time_ms,
            seed=self.seed,
            confidence=self.confidence,
            # The generated consensus models are stateless (gate closures
            # only capture place names), so one instance can serve every
            # replication -- the build is a large share of a replication.
            reuse_model=True,
        )

    def run(
        self,
        replications: int = 100,
        relative_precision: Optional[float] = None,
        min_replications: int = 20,
        max_replications: int = 5_000,
        jobs: Optional[int] = 1,
        strategy: Optional[str] = None,
        batch_size: Optional[Union[int, str]] = None,
    ) -> SANLatencyResult:
        """Run the experiment and return latency statistics.

        With ``relative_precision`` set, replications continue until the
        confidence interval of the mean latency is that tight (relative to
        the mean) or ``max_replications`` is reached.  ``jobs > 1`` fans
        the replications out over worker processes with bit-identical
        results (see :meth:`SimulativeSolver.solve`).  ``strategy`` and
        ``batch_size`` override the experiment's configured values for
        this run (``None`` falls back to the experiment's, then to the
        process execution policy); like ``jobs``, they never change
        results.
        """
        solver = self.solver()
        if strategy is None:
            strategy = self.strategy
        if batch_size is None:
            batch_size = self.batch_size
        if relative_precision is None:
            result = solver.solve(
                replications=replications,
                jobs=jobs,
                strategy=strategy,
                batch_size=batch_size,
            )
        else:
            result = solver.solve(
                replications=replications,
                target_reward="latency",
                relative_precision=relative_precision,
                min_replications=min_replications,
                max_replications=max_replications,
                jobs=jobs,
                strategy=strategy,
                batch_size=batch_size,
            )
        latencies = result.values("latency")
        undecided = result.n - len(latencies)
        interval = confidence_interval(latencies, self.confidence) if latencies else (
            ConfidenceInterval(mean=float("nan"), half_width=float("nan"),
                               confidence=self.confidence, n=0)
        )
        return SANLatencyResult(
            latencies_ms=latencies,
            mean_ms=interval.mean,
            interval=interval,
            replications=result.n,
            undecided=undecided,
            solver_result=result,
        )
