"""Parameters of the SAN consensus model.

The network model of §3.3 needs three parameters: ``t_send``, ``t_receive``
(assumed constant and equal, following earlier work) and ``t_net``.  The
paper derives them from measurements: the measured end-to-end delay is
fitted with a bi-modal uniform distribution (§5.1) and
``t_net = end-to-end - 2 * t_send``; the value of ``t_send`` itself is
calibrated by matching simulated and measured latency distributions
(Figure 7b), yielding 0.025 ms on the paper's cluster.

Broadcast messages are "treated specially ... in the model they appear as a
single broadcast message, with a higher parameter t_network than unicast
messages" (§5.1); the broadcast end-to-end fit is therefore separate and
depends on the number of destinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.faults.spec import partition_group_index, validate_partition_groups
from repro.stats.distributions import (
    BimodalUniform,
    Constant,
    Distribution,
    Mixture,
    Uniform,
)
from repro.stats.fitting import fit_bimodal_uniform


@dataclass(frozen=True)
class BimodalFit:
    """The parameters of a bi-modal uniform end-to-end delay fit (in ms)."""

    low1: float = 0.1
    high1: float = 0.13
    low2: float = 0.145
    high2: float = 0.35
    p1: float = 0.8

    def distribution(self) -> BimodalUniform:
        """The fitted end-to-end delay distribution."""
        return BimodalUniform(
            low1=self.low1, high1=self.high1, low2=self.low2, high2=self.high2, p1=self.p1
        )

    def shifted(self, offset: float) -> Distribution:
        """The fit shifted left by ``offset`` (clamped at zero).

        Used to derive ``t_net`` from the end-to-end fit by subtracting
        ``2 * t_send``.
        """
        low1 = max(0.0, self.low1 - offset)
        high1 = max(low1 + 1e-9, self.high1 - offset)
        low2 = max(0.0, self.low2 - offset)
        high2 = max(low2 + 1e-9, self.high2 - offset)
        return Mixture(
            [(self.p1, Uniform(low1, high1)), (1.0 - self.p1, Uniform(low2, high2))]
        )

    def scaled(self, factor: float) -> "BimodalFit":
        """A fit with all bounds multiplied by ``factor``."""
        return BimodalFit(
            low1=self.low1 * factor,
            high1=self.high1 * factor,
            low2=self.low2 * factor,
            high2=self.high2 * factor,
            p1=self.p1,
        )

    @staticmethod
    def from_samples(samples: Sequence[float], body_probability: float = 0.8) -> "BimodalFit":
        """Fit the bi-modal parameters from measured delays."""
        fitted = fit_bimodal_uniform(samples, body_probability=body_probability)
        return BimodalFit(
            low1=fitted.low1,
            high1=fitted.high1,
            low2=fitted.low2,
            high2=fitted.high2,
            p1=fitted.p1,
        )


@dataclass(frozen=True)
class SANParameters:
    """All numeric parameters of the SAN consensus model.

    Attributes
    ----------
    t_send_ms / t_receive_ms:
        Constant CPU occupation for sending / receiving one message
        (the paper calibrates both to 0.025 ms, §5.2).
    unicast_fit:
        Bi-modal uniform fit of the *end-to-end* delay of unicast messages.
    broadcast_fits:
        Optional explicit fits of the broadcast end-to-end delay, keyed by
        the total number of processes n.  When absent for a given n, the
        unicast fit scaled by ``1 + broadcast_growth * (n - 2)`` is used.
    broadcast_growth:
        Per-extra-destination growth factor of the broadcast delay used when
        no explicit broadcast fit is available.
    loss_rate:
        Probability that a message is lost on the network (per unicast
        message; a broadcast loses its single SAN-side message, i.e. the
        whole frame).  Mirrors the testbed's
        :class:`~repro.faults.spec.MessageLoss` fault so that
        model-vs-measurement comparisons under fault loads stay
        apples-to-apples.
    partition:
        Static host-partition groups (as in
        :class:`~repro.faults.spec.NetworkPartition` with a whole-run
        window): messages between different groups are never delivered.
        Hosts named in no group form one implicit group.
    """

    t_send_ms: float = 0.025
    t_receive_ms: float = 0.025
    unicast_fit: BimodalFit = field(default_factory=BimodalFit)
    broadcast_fits: tuple[tuple[int, BimodalFit], ...] = ()
    broadcast_growth: float = 0.30
    loss_rate: float = 0.0
    partition: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.t_send_ms < 0 or self.t_receive_ms < 0:
            raise ValueError("t_send_ms and t_receive_ms must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        validate_partition_groups(self.partition)

    # ------------------------------------------------------------------
    def with_t_send(self, t_send_ms: float) -> "SANParameters":
        """A copy with ``t_send = t_receive = t_send_ms`` (the calibration knob)."""
        return replace(self, t_send_ms=t_send_ms, t_receive_ms=t_send_ms)

    def with_faults(
        self,
        loss_rate: Optional[float] = None,
        partition: Optional[Sequence[Sequence[int]]] = None,
    ) -> "SANParameters":
        """A copy with fault-load knobs replaced (``None`` keeps the current)."""
        changes: dict = {}
        if loss_rate is not None:
            changes["loss_rate"] = loss_rate
        if partition is not None:
            changes["partition"] = tuple(tuple(group) for group in partition)
        return replace(self, **changes) if changes else self

    def connected(self, a: int, b: int) -> bool:
        """``True`` if processes ``a`` and ``b`` can exchange messages.

        Shares the membership rule of the testbed's
        :class:`~repro.faults.spec.NetworkPartition`, so the SAN model and
        the injector agree on connectivity by construction.
        """
        if not self.partition:
            return True
        return partition_group_index(self.partition, a) == partition_group_index(
            self.partition, b
        )

    # ------------------------------------------------------------------
    def t_send_distribution(self) -> Distribution:
        """Constant distribution for the sending-CPU stage."""
        return Constant(self.t_send_ms)

    def t_receive_distribution(self) -> Distribution:
        """Constant distribution for the receiving-CPU stage."""
        return Constant(self.t_receive_ms)

    def t_net_unicast_distribution(self) -> Distribution:
        """``t_net`` for unicast messages: end-to-end fit minus 2*t_send."""
        return self.unicast_fit.shifted(self.t_send_ms + self.t_receive_ms)

    def broadcast_fit_for(self, n_processes: int) -> BimodalFit:
        """The broadcast end-to-end fit used for ``n_processes`` processes."""
        for n, fit in self.broadcast_fits:
            if n == n_processes:
                return fit
        factor = 1.0 + self.broadcast_growth * max(0, n_processes - 2)
        return self.unicast_fit.scaled(factor)

    def t_net_broadcast_distribution(self, n_processes: int) -> Distribution:
        """``t_net`` for broadcast messages to ``n_processes - 1`` destinations."""
        fit = self.broadcast_fit_for(n_processes)
        return fit.shifted(self.t_send_ms + self.t_receive_ms)

    # ------------------------------------------------------------------
    @staticmethod
    def from_measured_delays(
        unicast_delays: Sequence[float],
        broadcast_delays_by_n: Optional[dict[int, Sequence[float]]] = None,
        t_send_ms: float = 0.025,
    ) -> "SANParameters":
        """Build parameters from measured end-to-end delays (§5.1 workflow)."""
        unicast_fit = BimodalFit.from_samples(unicast_delays)
        broadcast_fits: list[tuple[int, BimodalFit]] = []
        for n, delays in (broadcast_delays_by_n or {}).items():
            broadcast_fits.append((int(n), BimodalFit.from_samples(delays)))
        return SANParameters(
            t_send_ms=t_send_ms,
            t_receive_ms=t_send_ms,
            unicast_fit=unicast_fit,
            broadcast_fits=tuple(sorted(broadcast_fits)),
        )
