"""The paper's SAN models, built on :mod:`repro.san`.

The paper models the ◇S consensus algorithm and its environment as a
composed Stochastic Activity Network (§3):

* one submodel per process implementing the state machine of a round
  (coordinator actions P1C, participant actions P1A1/P1A2a/P1A2b, round
  advancement P1A3) -- :mod:`repro.sanmodels.process_model`;
* a contention-aware network model with one shared network resource and one
  CPU resource per host, parameterised by ``t_send``, ``t_receive`` and
  ``t_net`` (§3.3) -- :mod:`repro.sanmodels.network_model`;
* a two-state failure-detector model per (monitor, monitored) pair driven by
  the measured QoS metrics (§3.4) -- :mod:`repro.sanmodels.fd_model`;
* the composition of all of the above into a single model per scenario,
  together with the latency reward variable and a simulative-solver facade
  -- :mod:`repro.sanmodels.consensus_model`.
"""

from repro.sanmodels.consensus_model import (
    ConsensusSANExperiment,
    build_consensus_model,
    build_consensus_model_from_distributions,
    consensus_stop_predicate,
    latency_reward,
)
from repro.sanmodels.exponential import (
    exponential_consensus_model,
    exponential_fd_pair_model,
    exponential_stage_distributions,
    exponential_unicast_burst_model,
    exponentialized,
)
from repro.sanmodels.fd_model import FDModelSettings, add_failure_detector_pair
from repro.sanmodels.network_model import add_broadcast_path, add_unicast_path
from repro.sanmodels.parameters import SANParameters
from repro.sanmodels.process_model import add_process_state_machine

__all__ = [
    "ConsensusSANExperiment",
    "FDModelSettings",
    "SANParameters",
    "add_broadcast_path",
    "add_failure_detector_pair",
    "add_process_state_machine",
    "add_unicast_path",
    "build_consensus_model",
    "build_consensus_model_from_distributions",
    "consensus_stop_predicate",
    "exponential_consensus_model",
    "exponential_fd_pair_model",
    "exponential_stage_distributions",
    "exponential_unicast_burst_model",
    "exponentialized",
    "latency_reward",
]
