"""The contention-aware network submodel (§3.3 of the paper).

The transmission of a message from process ``i`` to process ``j`` uses three
resources in sequence -- the sender's CPU, the single shared network medium
and the receiver's CPU -- and queues in front of each (Fig. 3 of the paper).
In SAN terms each stage is modelled with the classical *seize / hold /
release* idiom:

* an **instantaneous** "seize" activity moves the message token together
  with the resource token into an "in service" place (so mutual exclusion is
  enforced by the actual removal of the resource token), and
* a **timed** "hold" activity keeps it there for the stage's duration and
  then releases the resource token and forwards the message token to the
  next stage.

Unicast messages have one chain of three stages; broadcast messages (the
proposal and the decision, §5.1) occupy the sender CPU and the network once
-- with a larger ``t_net`` -- and then fan out into one receiving-CPU stage
per destination.

Place naming convention (all created by these helpers):

``msg.<type>.<i>.<j>.<stage>``  for unicast messages from i to j,
``msg.<type>.<i>.<stage>``      for the shared stages of broadcasts from i,

with stages ``sendq`` / ``sending`` / ``netq`` / ``neting`` / ``recvq`` /
``recving``.  The shared resources are the places ``p<i>.cpu`` (one per
process, one token) and ``network`` (one token), created by the caller.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.san.activities import Case, InstantaneousActivity, TimedActivity
from repro.san.gates import InputGate, OutputGate
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.places import Place
from repro.stats.distributions import Distribution

#: Place holding the single shared network-medium token.
NETWORK_PLACE = "network"

#: Rank offsets keeping the seize activities after the protocol's own
#: instantaneous activities (which use ranks 0-9).
SEIZE_SEND_RANK = 10
SEIZE_NET_RANK = 11
SEIZE_RECV_RANK = 12

DeliveryEffect = Callable[[Marking], None]


def cpu_place(process_id: int) -> str:
    """Name of the CPU-resource place of process ``process_id``."""
    return f"p{process_id}.cpu"


def crashed_place(process_id: int) -> str:
    """Name of the crashed-flag place of process ``process_id``."""
    return f"p{process_id}.crashed"


def unicast_send_queue(msg_type: str, src: int, dst: int) -> str:
    """Entry place of the unicast path ``msg_type`` from ``src`` to ``dst``."""
    return f"msg.{msg_type}.{src}.{dst}.sendq"


def broadcast_send_queue(msg_type: str, src: int) -> str:
    """Entry place of the broadcast path ``msg_type`` from ``src``."""
    return f"msg.{msg_type}.{src}.sendq"


def _not_crashed_gate(dst: int) -> InputGate:
    place = crashed_place(dst)
    return InputGate(
        name=f"not_crashed.{dst}",
        predicate=lambda marking, _place=place: marking[_place] == 0,
        watched_places=(place,),
    )


def _transmit_cases(
    base: str, success_arcs: Sequence[str], loss_rate: float
) -> list[Case]:
    """Cases of a transmit activity: delivery, plus a loss branch.

    The loss case releases the network token but forwards the message token
    nowhere -- the SAN-side mirror of the testbed transport dropping a copy
    at the wire stage.  ``loss_rate=1`` models a partitioned pair.
    """
    success = Case.build(
        probability=1.0 - loss_rate, output_arcs=list(success_arcs)
    )
    if loss_rate <= 0.0:
        return [success]
    return [
        success,
        Case.build(
            probability=loss_rate, output_arcs=[NETWORK_PLACE], label=f"{base}.lost"
        ),
    ]


def add_unicast_path(
    model: SANModel,
    msg_type: str,
    src: int,
    dst: int,
    t_send: Distribution,
    t_net: Distribution,
    t_receive: Distribution,
    delivery_effect: DeliveryEffect,
    loss_rate: float = 0.0,
) -> None:
    """Add the three-stage unicast transmission path for one (type, src, dst).

    ``delivery_effect`` is applied to the marking when the message finally
    reaches the destination process (step 7 of Fig. 3) -- e.g. incrementing
    the coordinator's estimate counter.  ``loss_rate`` adds a probabilistic
    loss branch to the network stage (fault-load scenarios; ``1.0`` models
    a partitioned pair whose messages never arrive).
    """
    base = f"msg.{msg_type}.{src}.{dst}"
    stages = ["sendq", "sending", "netq", "neting", "recvq", "recving"]
    for stage in stages:
        model.add_place(Place(f"{base}.{stage}", 0))

    # Stage 1: sender CPU.
    model.add_activity(
        InstantaneousActivity(
            name=f"{base}.seize_send",
            input_arcs=[f"{base}.sendq", cpu_place(src)],
            cases=[Case.build(output_arcs=[f"{base}.sending"])],
            rank=SEIZE_SEND_RANK,
        )
    )
    model.add_activity(
        TimedActivity(
            name=f"{base}.send",
            distribution=t_send,
            input_arcs=[f"{base}.sending"],
            cases=[Case.build(output_arcs=[f"{base}.netq", cpu_place(src)])],
        )
    )

    # Stage 2: shared network medium.
    model.add_activity(
        InstantaneousActivity(
            name=f"{base}.seize_net",
            input_arcs=[f"{base}.netq", NETWORK_PLACE],
            cases=[Case.build(output_arcs=[f"{base}.neting"])],
            rank=SEIZE_NET_RANK,
        )
    )
    model.add_activity(
        TimedActivity(
            name=f"{base}.transmit",
            distribution=t_net,
            input_arcs=[f"{base}.neting"],
            cases=_transmit_cases(
                base, [f"{base}.recvq", NETWORK_PLACE], loss_rate
            ),
        )
    )

    # Stage 3: receiver CPU (skipped forever if the destination crashed).
    model.add_activity(
        InstantaneousActivity(
            name=f"{base}.seize_recv",
            input_arcs=[f"{base}.recvq", cpu_place(dst)],
            input_gates=[_not_crashed_gate(dst)],
            cases=[Case.build(output_arcs=[f"{base}.recving"])],
            rank=SEIZE_RECV_RANK,
        )
    )
    model.add_activity(
        TimedActivity(
            name=f"{base}.receive",
            distribution=t_receive,
            input_arcs=[f"{base}.recving"],
            cases=[
                Case.build(
                    output_arcs=[cpu_place(dst)],
                    output_gates=[
                        OutputGate(name=f"{base}.deliver", function=delivery_effect)
                    ],
                )
            ],
        )
    )


def add_broadcast_path(
    model: SANModel,
    msg_type: str,
    src: int,
    destinations: Sequence[int],
    t_send: Distribution,
    t_net_broadcast: Distribution,
    t_receive: Distribution,
    delivery_effect_for: Callable[[int], DeliveryEffect],
    loss_rate: float = 0.0,
) -> None:
    """Add the broadcast transmission path for one (type, src).

    The sender-CPU and network stages are traversed once (the SAN model's
    single-broadcast-message simplification, §5.1); the receive stage is
    replicated per destination, each applying its own delivery effect.
    ``loss_rate`` loses the whole broadcast frame (all destinations at
    once) -- consistent with the single-message simplification; callers
    model partitions by excluding unreachable peers from ``destinations``.
    """
    base = f"msg.{msg_type}.{src}"
    for stage in ["sendq", "sending", "netq", "neting"]:
        model.add_place(Place(f"{base}.{stage}", 0))
    for dst in destinations:
        model.add_place(Place(f"{base}.{dst}.recvq", 0))
        model.add_place(Place(f"{base}.{dst}.recving", 0))

    model.add_activity(
        InstantaneousActivity(
            name=f"{base}.seize_send",
            input_arcs=[f"{base}.sendq", cpu_place(src)],
            cases=[Case.build(output_arcs=[f"{base}.sending"])],
            rank=SEIZE_SEND_RANK,
        )
    )
    model.add_activity(
        TimedActivity(
            name=f"{base}.send",
            distribution=t_send,
            input_arcs=[f"{base}.sending"],
            cases=[Case.build(output_arcs=[f"{base}.netq", cpu_place(src)])],
        )
    )
    model.add_activity(
        InstantaneousActivity(
            name=f"{base}.seize_net",
            input_arcs=[f"{base}.netq", NETWORK_PLACE],
            cases=[Case.build(output_arcs=[f"{base}.neting"])],
            rank=SEIZE_NET_RANK,
        )
    )
    fanout = [*(f"{base}.{dst}.recvq" for dst in destinations), NETWORK_PLACE]
    model.add_activity(
        TimedActivity(
            name=f"{base}.transmit",
            distribution=t_net_broadcast,
            input_arcs=[f"{base}.neting"],
            cases=_transmit_cases(base, fanout, loss_rate),
        )
    )
    for dst in destinations:
        model.add_activity(
            InstantaneousActivity(
                name=f"{base}.{dst}.seize_recv",
                input_arcs=[f"{base}.{dst}.recvq", cpu_place(dst)],
                input_gates=[_not_crashed_gate(dst)],
                cases=[Case.build(output_arcs=[f"{base}.{dst}.recving"])],
                rank=SEIZE_RECV_RANK,
            )
        )
        model.add_activity(
            TimedActivity(
                name=f"{base}.{dst}.receive",
                distribution=t_receive,
                input_arcs=[f"{base}.{dst}.recving"],
                cases=[
                    Case.build(
                        output_arcs=[cpu_place(dst)],
                        output_gates=[
                            OutputGate(
                                name=f"{base}.{dst}.deliver",
                                function=delivery_effect_for(dst),
                            )
                        ],
                    )
                ],
            )
        )
