"""Exponential (Markovian) variants of the paper's SAN submodels.

The paper's models use fitted non-exponential distributions (bi-modal
uniform ``t_net``, constant ``t_send``), which forces simulative solution
(§5).  The variants here keep the *exact same structure* -- places,
activities, gates, topology -- but replace every stage distribution with
an exponential of the **same mean**.  That puts the models in the
Markovian corner of the model space, where the analytic solver
(:mod:`repro.san.analytic`) produces exact answers, so:

* small-model sweeps run orders of magnitude faster than replication, and
* the test suite gains an exact oracle to cross-validate the simulative
  solver against (same model, two solution methods).

The exponential variants are *validation* models: their means match the
calibrated parameters but their variances do not (an exponential has
CV = 1, the fitted bi-modal uniform much less), so their latencies are not
the paper's latencies -- they are the common ground on which the two
solvers must agree.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.san.model import SANModel
from repro.san.places import Place
from repro.sanmodels.consensus_model import (
    build_consensus_model_from_distributions,
)
from repro.sanmodels.fd_model import FDModelSettings, add_failure_detector_pair
from repro.sanmodels.network_model import (
    NETWORK_PLACE,
    add_unicast_path,
    cpu_place,
    crashed_place,
    unicast_send_queue,
)
from repro.sanmodels.parameters import SANParameters
from repro.stats.distributions import Distribution, Exponential

#: Place counting messages delivered end-to-end in the unicast burst model.
DELIVERED_PLACE = "delivered"


def exponentialized(distribution: Distribution) -> Exponential:
    """An exponential distribution with the same mean as ``distribution``.

    Raises ``ValueError`` for zero-mean distributions (an exponential needs
    a strictly positive mean).
    """
    mean = float(distribution.mean())
    if mean <= 0:
        raise ValueError(
            f"cannot exponentialize a distribution with mean {mean}"
        )
    return Exponential(mean)


def exponential_stage_distributions(
    parameters: SANParameters, n_processes: int
) -> Tuple[Exponential, Exponential, Exponential, Exponential]:
    """The four stage distributions, exponentialized with matching means.

    Returns ``(t_send, t_receive, t_net_unicast, t_net_broadcast)``.
    """
    return (
        exponentialized(parameters.t_send_distribution()),
        exponentialized(parameters.t_receive_distribution()),
        exponentialized(parameters.t_net_unicast_distribution()),
        exponentialized(parameters.t_net_broadcast_distribution(n_processes)),
    )


def exponential_consensus_model(
    n_processes: int,
    parameters: Optional[SANParameters] = None,
    crashed: Sequence[int] = (),
    fd_settings: Optional[FDModelSettings] = None,
) -> SANModel:
    """The consensus model with every stage distribution exponentialized.

    Structure (and loss/partition topology, via ``parameters``) is
    identical to :func:`~repro.sanmodels.consensus_model.build_consensus_model`;
    only the timing laws differ.  ``fd_settings`` must use exponential
    sojourn times if given.
    """
    parameters = parameters or SANParameters()
    if fd_settings is not None and fd_settings.kind != "exponential":
        raise ValueError(
            "exponential_consensus_model requires exponential FD sojourn "
            f"times, got kind={fd_settings.kind!r}"
        )
    t_send, t_receive, t_net_unicast, t_net_broadcast = (
        exponential_stage_distributions(parameters, n_processes)
    )
    return build_consensus_model_from_distributions(
        n_processes,
        t_send=t_send,
        t_receive=t_receive,
        t_net_unicast=t_net_unicast,
        t_net_broadcast=t_net_broadcast,
        parameters=parameters,
        crashed=crashed,
        fd_settings=fd_settings,
        name_suffix="-exp",
    )


def exponential_fd_pair_model(settings: FDModelSettings) -> SANModel:
    """A single failure-detector module with exponential sojourn times.

    The two-state trust/suspect process of §3.4 (Fig. 5) in isolation: an
    ergodic two-state CTMC whose stationary suspect probability is known in
    closed form (``T_M / T_MR``), which makes it the sharpest possible
    cross-validation model -- analytic solver vs simulative solver vs
    closed form.
    """
    if settings.kind != "exponential":
        raise ValueError(
            f"exponential_fd_pair_model requires kind='exponential', "
            f"got {settings.kind!r}"
        )
    model = SANModel("fd-pair-exp")
    add_failure_detector_pair(model, monitor=0, monitored=1, settings=settings)
    return model


def exponential_unicast_burst_model(
    messages: int = 3,
    mean_send_ms: float = 0.025,
    mean_net_ms: float = 0.0915,
    mean_receive_ms: float = 0.025,
    loss_rate: float = 0.0,
) -> SANModel:
    """A burst of unicast messages through the three-stage network model.

    ``messages`` tokens start in the send queue of a single ``0 -> 1``
    unicast path (§3.3 / Fig. 3) and contend for the sender CPU, the
    shared network and the receiver CPU; the ``delivered`` place counts
    completions.  The default ``mean_net_ms`` is the mean of the paper's
    unicast ``t_net`` fit.  A first-passage reward on "all messages
    delivered" exercises resource contention, probabilistic loss cases
    (``loss_rate``) and the seize/hold/release idiom in a model small
    enough to enumerate in milliseconds.

    With ``loss_rate > 0`` lost messages never reach ``delivered``, so
    full delivery is not guaranteed -- useful for exercising the solver's
    handling of non-almost-sure first passages.
    """
    if messages < 1:
        raise ValueError(f"messages must be >= 1, got {messages}")
    model = SANModel("unicast-burst-exp")
    model.add_place(Place(cpu_place(0), 1))
    model.add_place(Place(cpu_place(1), 1))
    model.add_place(Place(crashed_place(1), 0))
    model.add_place(Place(NETWORK_PLACE, 1))
    model.add_place(Place(DELIVERED_PLACE, 0))

    def deliver(marking) -> None:
        marking.add(DELIVERED_PLACE)

    add_unicast_path(
        model,
        "burst",
        src=0,
        dst=1,
        t_send=Exponential(mean_send_ms),
        t_net=Exponential(mean_net_ms),
        t_receive=Exponential(mean_receive_ms),
        delivery_effect=deliver,
        loss_rate=loss_rate,
    )
    # The send queue is created by add_unicast_path with no tokens; the
    # burst is injected by replacing the place's initial marking.
    model.set_initial(unicast_send_queue("burst", 0, 1), messages)
    return model
