"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    python -m repro EXPERIMENT [options]
    python -m repro all [options]
    python -m repro --list

Subcommands are **discovered from the experiment registry**
(:mod:`repro.experiments.registry`) -- adding a new experiment module that
registers an :class:`~repro.experiments.registry.ExperimentSpec` makes it
appear here automatically; ``--list`` shows what is available and ``all``
iterates the whole registry in name order.

Options:

* ``--scale smoke|quick|full`` selects the experiment scale (default:
  ``REPRO_EXPERIMENT_SCALE`` or ``quick``).
* ``--jobs N`` fans the independent points of each sweep out over N worker
  processes through :mod:`repro.experiments.runner` (``--jobs 0`` uses one
  worker per CPU); the output is bit-for-bit identical to a serial run.
* ``--cache-dir DIR`` memoises per-point results on disk so that
  re-rendering a figure (or resuming after an interrupt) only recomputes
  missing points.
* ``--strategy scalar|batched`` and ``--batch-size N|auto`` select the SAN
  solver executor for every simulative point (any SAN-backed subcommand)
  by activating the process execution policy
  (:mod:`repro.san.execution`); both are pure throughput knobs -- results
  are bit-identical -- so they share cached results with any other run.
* ``--format text|json|csv`` chooses the stdout rendering: the
  paper-faithful text (default), the schema-valid JSON artifact envelope
  (run manifest included), or the experiment's tabular series as CSV.
* ``--output DIR`` additionally writes every artifact --
  ``report.txt``, ``result.json``, ``result.csv`` (for tabular
  experiments) and ``manifest.json`` -- under ``DIR/<experiment>/``.

The textual output mirrors the corresponding table or figure of the paper;
the same generators back the benchmark suite in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.experiments import registry
from repro.experiments.artifacts import (
    dump_json,
    render_csv,
    write_experiment_artifacts,
)
from repro.experiments.settings import SCALE_PRESETS


def _build_parser() -> argparse.ArgumentParser:
    """The argument parser, with choices discovered from the registry."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the DSN 2002 paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=registry.names() + ["all"],
        help="which table/figure to regenerate ('all' runs every registered experiment)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list the registered experiments and exit",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALE_PRESETS),
        default=None,
        help="experiment scale (default: REPRO_EXPERIMENT_SCALE or 'quick')",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the base seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes per sweep (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for on-disk memoisation of per-point results",
    )
    parser.add_argument(
        "--strategy",
        choices=("scalar", "batched"),
        default=None,
        help=(
            "SAN solver executor for every simulative point: 'scalar' loops "
            "replications, 'batched' advances them lock-step; results are "
            "bit-identical (default: REPRO_SAN_STRATEGY or 'scalar')"
        ),
    )
    parser.add_argument(
        "--batch-size",
        default=None,
        metavar="N|auto",
        help=(
            "replications per lock-step batch under --strategy batched: a "
            "count or 'auto' to size from the compiled model (default: "
            "REPRO_SAN_BATCH_SIZE or 'auto'); never changes results"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        dest="output_format",
        help="stdout rendering: paper-faithful text, JSON artifact, or CSV series",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="write report.txt/result.json/result.csv/manifest.json under DIR/<experiment>/",
    )
    return parser


def _print_listing() -> None:
    """Print the registered experiments, one per line."""
    specs = registry.iter_specs()
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        print(f"{spec.name:<{width}}  {spec.description}")


def _emit(
    run: "registry.ExperimentRun",
    output_format: str,
    output_dir: Optional[str],
) -> None:
    """Render one experiment run to stdout (and to disk with ``--output``)."""
    spec = run.spec
    text = run.text()
    # Build the (potentially large) structured views exactly once, and only
    # when something consumes them.
    needs_payload = output_dir is not None or output_format == "json"
    needs_table = output_dir is not None or output_format == "csv"
    payload = run.payload() if needs_payload else None
    table = run.table() if needs_table else None
    if output_dir is not None:
        write_experiment_artifacts(
            output_dir,
            spec.name,
            text=text,
            payload=payload,
            manifest=run.manifest,
            table=table,
        )
    if output_format == "text":
        print(f"==== {spec.name} ====")
        print(text)
        print(f"[{spec.name} regenerated in {run.manifest.wall_clock_seconds:.1f} s]")
        print()
    elif output_format == "json":
        print(dump_json(payload))
    else:
        if table is None:
            print(f"# {spec.name}: no tabular series; use --format json", file=sys.stderr)
        else:
            print(render_csv(table), end="")


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro`` (and the ``repro`` console script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments:
        _print_listing()
        return 0
    if args.experiment is None:
        parser.error("an experiment name (or 'all', or --list) is required")

    options = registry.ExperimentOptions(
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        strategy=args.strategy,
        batch_size=args.batch_size,
    )
    try:
        options.validate()
        settings = options.resolve_settings()
    except ValueError as error:
        parser.error(str(error))

    names = registry.names() if args.experiment == "all" else [args.experiment]
    for name in names:
        spec = registry.get(name)
        run = registry.run_experiment(spec, options=options, settings=settings)
        _emit(run, args.output_format, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
