"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.cli figure6 [--scale smoke|quick|full] [--jobs N]
    python -m repro.cli figure7a
    python -m repro.cli figure7b
    python -m repro.cli means
    python -m repro.cli table1
    python -m repro.cli figure8
    python -m repro.cli figure9
    python -m repro.cli faultsweep
    python -m repro.cli solvercompare
    python -m repro.cli all

``--jobs N`` fans the independent points of each sweep out over N worker
processes through :mod:`repro.experiments.runner` (``--jobs 0`` uses one
worker per CPU); the output is bit-for-bit identical to a serial run.
``--cache-dir DIR`` memoises per-point results on disk so that re-rendering
a figure (or resuming after an interrupt) only recomputes missing points.

The textual output mirrors the corresponding table or figure of the paper;
the same generators back the benchmark suite in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments.fault_sweep import format_fault_sweep, run_fault_sweep
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.figure7 import (
    format_latency_means,
    run_figure7a,
    run_figure7b,
    run_latency_means,
)
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.settings import ExperimentSettings
from repro.experiments.solver_compare import (
    format_solver_compare,
    run_solver_compare,
)
from repro.experiments.table1 import format_table1, run_table1

#: A report generator: (settings, jobs, cache_dir) -> rendered text.
Report = Callable[[ExperimentSettings, Optional[int], Optional[str]], str]


def _report_figure7a(
    settings: ExperimentSettings, jobs: Optional[int], cache_dir: Optional[str]
) -> str:
    result = run_figure7a(settings, jobs=jobs, cache_dir=cache_dir)
    lines = ["Figure 7(a): latency, no failures, no suspicions",
             "n    mean [ms]   median [ms]   p90 [ms]"]
    for n in sorted(result.latencies_by_n):
        cdf = result.cdf(n)
        lines.append(
            f"{n:<4d} {cdf.mean():9.3f}   {cdf.median():11.3f}   {cdf.quantile(0.9):8.3f}"
        )
    return "\n".join(lines)


def _report_figure7b(
    settings: ExperimentSettings, jobs: Optional[int], cache_dir: Optional[str]
) -> str:
    result = run_figure7b(settings, jobs=jobs, cache_dir=cache_dir)
    lines = [
        "Figure 7(b): calibration of t_send "
        f"(measured mean {result.measured_cdf().mean():.3f} ms, n={result.n_processes})",
        "t_send [ms]   simulated mean [ms]   KS distance",
    ]
    for candidate in result.calibration.candidates:
        lines.append(
            f"{candidate.t_send_ms:11.3f}   {candidate.mean_latency_ms:19.3f}   "
            f"{candidate.ks_distance:10.3f}"
        )
    lines.append(f"calibrated t_send = {result.best_t_send_ms} ms")
    return "\n".join(lines)


REPORTS: Dict[str, Report] = {
    "figure6": lambda settings, jobs, cache_dir: format_figure6(
        run_figure6(settings, jobs=jobs, cache_dir=cache_dir)
    ),
    "figure7a": _report_figure7a,
    "figure7b": _report_figure7b,
    "means": lambda settings, jobs, cache_dir: format_latency_means(
        run_latency_means(settings, jobs=jobs, cache_dir=cache_dir)
    ),
    "table1": lambda settings, jobs, cache_dir: format_table1(
        run_table1(settings, jobs=jobs, cache_dir=cache_dir)
    ),
    "figure8": lambda settings, jobs, cache_dir: format_figure8(
        run_figure8(settings, jobs=jobs, cache_dir=cache_dir)
    ),
    "figure9": lambda settings, jobs, cache_dir: format_figure9(
        run_figure9(settings, jobs=jobs, cache_dir=cache_dir)
    ),
    "faultsweep": lambda settings, jobs, cache_dir: format_fault_sweep(
        run_fault_sweep(settings, jobs=jobs, cache_dir=cache_dir)
    ),
    "solvercompare": lambda settings, jobs, cache_dir: format_solver_compare(
        run_solver_compare(settings, jobs=jobs, cache_dir=cache_dir)
    ),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the DSN 2002 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(REPORTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "quick", "full"),
        default=None,
        help="experiment scale (default: REPRO_EXPERIMENT_SCALE or 'quick')",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the base seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes per sweep (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for on-disk memoisation of per-point results",
    )
    args = parser.parse_args(argv)

    if args.jobs < 0:
        parser.error(f"--jobs must be >= 1 (or 0 for one per CPU), got {args.jobs}")
    if args.cache_dir is not None and os.path.exists(args.cache_dir) and not os.path.isdir(args.cache_dir):
        parser.error(f"--cache-dir {args.cache_dir!r} exists and is not a directory")

    if args.scale is not None:
        settings = {
            "smoke": ExperimentSettings.smoke,
            "quick": ExperimentSettings.quick,
            "full": ExperimentSettings.full,
        }[args.scale]()
    else:
        settings = ExperimentSettings.from_environment()
    if args.seed is not None:
        from dataclasses import replace

        settings = replace(settings, seed=args.seed)

    names = sorted(REPORTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(f"==== {name} ====")
        print(REPORTS[name](settings, args.jobs, args.cache_dir))
        print(f"[{name} regenerated in {time.time() - started:.1f} s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
