"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.cli figure6 [--scale smoke|quick|full]
    python -m repro.cli figure7a
    python -m repro.cli figure7b
    python -m repro.cli means
    python -m repro.cli table1
    python -m repro.cli figure8
    python -m repro.cli figure9
    python -m repro.cli all

The textual output mirrors the corresponding table or figure of the paper;
the same generators back the benchmark suite in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.figure7 import (
    format_latency_means,
    run_figure7a,
    run_figure7b,
    run_latency_means,
)
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.settings import ExperimentSettings
from repro.experiments.table1 import format_table1, run_table1


def _report_figure7a(settings: ExperimentSettings) -> str:
    result = run_figure7a(settings)
    lines = ["Figure 7(a): latency, no failures, no suspicions",
             "n    mean [ms]   median [ms]   p90 [ms]"]
    for n in sorted(result.latencies_by_n):
        cdf = result.cdf(n)
        lines.append(
            f"{n:<4d} {cdf.mean():9.3f}   {cdf.median():11.3f}   {cdf.quantile(0.9):8.3f}"
        )
    return "\n".join(lines)


def _report_figure7b(settings: ExperimentSettings) -> str:
    result = run_figure7b(settings)
    lines = [
        "Figure 7(b): calibration of t_send "
        f"(measured mean {result.measured_cdf().mean():.3f} ms, n={result.n_processes})",
        "t_send [ms]   simulated mean [ms]   KS distance",
    ]
    for candidate in result.calibration.candidates:
        lines.append(
            f"{candidate.t_send_ms:11.3f}   {candidate.mean_latency_ms:19.3f}   "
            f"{candidate.ks_distance:10.3f}"
        )
    lines.append(f"calibrated t_send = {result.best_t_send_ms} ms")
    return "\n".join(lines)


REPORTS: Dict[str, Callable[[ExperimentSettings], str]] = {
    "figure6": lambda settings: format_figure6(run_figure6(settings)),
    "figure7a": _report_figure7a,
    "figure7b": _report_figure7b,
    "means": lambda settings: format_latency_means(run_latency_means(settings)),
    "table1": lambda settings: format_table1(run_table1(settings)),
    "figure8": lambda settings: format_figure8(run_figure8(settings)),
    "figure9": lambda settings: format_figure9(run_figure9(settings)),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the DSN 2002 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(REPORTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "quick", "full"),
        default=None,
        help="experiment scale (default: REPRO_EXPERIMENT_SCALE or 'quick')",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the base seed")
    args = parser.parse_args(argv)

    if args.scale is not None:
        settings = {
            "smoke": ExperimentSettings.smoke,
            "quick": ExperimentSettings.quick,
            "full": ExperimentSettings.full,
        }[args.scale]()
    else:
        settings = ExperimentSettings.from_environment()
    if args.seed is not None:
        from dataclasses import replace

        settings = replace(settings, seed=args.seed)

    names = sorted(REPORTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(f"==== {name} ====")
        print(REPORTS[name](settings))
        print(f"[{name} regenerated in {time.time() - started:.1f} s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
