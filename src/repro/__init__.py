"""repro: reproduction of "Performance Analysis of a Consensus Algorithm
Combining Stochastic Activity Networks and Measurements" (DSN 2002).

The package analyzes the latency of the Chandra-Toueg ◇S consensus
algorithm by combining two approaches, exactly as the paper does:

* **measurements** of the algorithm running on a (simulated) cluster of PCs
  -- :mod:`repro.cluster`, :mod:`repro.consensus`,
  :mod:`repro.failure_detectors`, orchestrated by :mod:`repro.core`;
* **simulation** of a Stochastic Activity Network model of the algorithm
  and its environment -- :mod:`repro.san` (the SAN framework) and
  :mod:`repro.sanmodels` (the paper's models).

Quick start
-----------
>>> from repro import MeasurementConfig, MeasurementRunner, Scenario
>>> from repro.cluster import ClusterConfig
>>> config = MeasurementConfig(
...     cluster=ClusterConfig(n_processes=3, seed=1),
...     scenario=Scenario.no_failures(),
...     executions=20,
... )
>>> result = MeasurementRunner(config).run()
>>> 0.0 < result.mean_latency_ms < 10.0
True
"""

from repro.core.calibration import CalibrationResult, calibrate_t_send
from repro.core.measurement import (
    MeasurementConfig,
    MeasurementResult,
    MeasurementRunner,
    measure_end_to_end_delays,
)
from repro.core.scenarios import RunClass, Scenario
from repro.core.simulation import SimulationConfig, SimulationResult, SimulationRunner
from repro.core.validation import ValidationReport, compare_results
from repro.sanmodels.parameters import SANParameters

__version__ = "1.0.0"

__all__ = [
    "CalibrationResult",
    "MeasurementConfig",
    "MeasurementResult",
    "MeasurementRunner",
    "RunClass",
    "SANParameters",
    "Scenario",
    "SimulationConfig",
    "SimulationResult",
    "SimulationRunner",
    "ValidationReport",
    "calibrate_t_send",
    "compare_results",
    "measure_end_to_end_delays",
    "__version__",
]
