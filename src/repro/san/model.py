"""The SAN model container.

A :class:`SANModel` is a named collection of places and activities.  It
performs structural validation (unique names, arcs referring to declared
places) and produces the initial marking.  Models are composed with the
operators in :mod:`repro.san.composition`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.san.activities import Activity, InstantaneousActivity, TimedActivity
from repro.san.marking import Marking
from repro.san.places import Place


class SANValidationError(ValueError):
    """Raised when a model is structurally inconsistent."""


class SANModel:
    """A Stochastic Activity Network.

    Parameters
    ----------
    name:
        Model name (used by composition and in error messages).
    places:
        The places of the model.
    activities:
        The timed and instantaneous activities.
    """

    def __init__(
        self,
        name: str,
        places: Sequence[Place] = (),
        activities: Sequence[Activity] = (),
    ) -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._activities: Dict[str, Activity] = {}
        #: Bumped on every structural change; lets per-model caches (the
        #: executor's dependency index, memoised validation) detect
        #: staleness without hashing the whole structure.
        self._version = 0
        self._validated_version: int | None = None
        for place in places:
            self.add_place(place)
        for activity in activities:
            self.add_activity(activity)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(self, place: Place) -> Place:
        """Add a place; adding an identical duplicate is a no-op."""
        existing = self._places.get(place.name)
        if existing is not None:
            if existing.initial != place.initial:
                raise SANValidationError(
                    f"model {self.name!r}: place {place.name!r} redefined with a "
                    f"different initial marking ({existing.initial} vs {place.initial})"
                )
            return existing
        self._places[place.name] = place
        self._version += 1
        return place

    def place(self, name: str, initial: int = 0) -> Place:
        """Create (or fetch) a place by name."""
        if name in self._places:
            return self._places[name]
        return self.add_place(Place(name, initial))

    def set_initial(self, name: str, initial: int) -> Place:
        """Replace the initial marking of an already-declared place.

        Model-building helpers declare their places with empty initial
        markings; callers that want tokens there at time zero (e.g. a
        burst of messages pre-loaded into a send queue) rebind the place
        rather than fighting the duplicate-place check in
        :meth:`add_place`.
        """
        if name not in self._places:
            raise SANValidationError(
                f"model {self.name!r}: cannot set initial marking of "
                f"undeclared place {name!r}"
            )
        place = Place(name, initial)
        self._places[name] = place
        self._version += 1
        return place

    def add_activity(self, activity: Activity) -> Activity:
        """Add an activity; names must be unique within the model."""
        if activity.name in self._activities:
            raise SANValidationError(
                f"model {self.name!r}: duplicate activity name {activity.name!r}"
            )
        self._activities[activity.name] = activity
        self._version += 1
        return activity

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def places(self) -> list[Place]:
        """All places, in insertion order."""
        return list(self._places.values())  # repro: ignore[DET001] insertion order is the documented API contract ("in insertion order")

    @property
    def activities(self) -> list[Activity]:
        """All activities, in insertion order."""
        return list(self._activities.values())  # repro: ignore[DET001] insertion order is the documented API contract ("in insertion order")

    @property
    def timed_activities(self) -> list[TimedActivity]:
        """Only the timed activities."""
        return [a for a in self._activities.values() if isinstance(a, TimedActivity)]  # repro: ignore[DET001] declaration order, same contract as .activities

    @property
    def instantaneous_activities(self) -> list[InstantaneousActivity]:
        """Only the instantaneous activities."""
        return [
            a
            for a in self._activities.values()  # repro: ignore[DET001] declaration order, same contract as .activities
            if isinstance(a, InstantaneousActivity)
        ]

    def has_place(self, name: str) -> bool:
        """``True`` if a place named ``name`` exists."""
        return name in self._places

    def get_place(self, name: str) -> Place:
        """Fetch a place by name, raising ``KeyError`` if absent."""
        return self._places[name]

    def get_activity(self, name: str) -> Activity:
        """Fetch an activity by name, raising ``KeyError`` if absent."""
        return self._activities[name]

    # ------------------------------------------------------------------
    # Validation and initial marking
    # ------------------------------------------------------------------
    @property
    def structure_version(self) -> int:
        """Monotone counter of structural changes (places/activities added)."""
        return self._version

    def validate(self) -> None:
        """Check that every arc refers to a declared place.

        Gates are opaque Python callables, so references inside gate bodies
        cannot be validated statically; arcs can, and modeling errors most
        often show up there.

        Validation is memoised per :attr:`structure_version`: solvers that
        reuse a model across many replications construct one executor per
        replication, and each construction validates -- rechecking an
        unchanged structure would be pure overhead.
        """
        if self._validated_version == self._version:
            return
        # sorted() so which validation error is raised first never
        # depends on declaration order (validation only raises; it cannot
        # influence simulation state).
        for activity in sorted(self._activities.values(), key=lambda a: a.name):
            for place, _weight in activity.input_arcs:
                if place not in self._places:
                    raise SANValidationError(
                        f"model {self.name!r}: activity {activity.name!r} has an "
                        f"input arc from undeclared place {place!r}"
                    )
            for case in activity.cases:
                for place, _weight in case.output_arcs:
                    if place not in self._places:
                        raise SANValidationError(
                            f"model {self.name!r}: activity {activity.name!r} has an "
                            f"output arc to undeclared place {place!r}"
                        )
        self._validated_version = self._version

    def initial_marking(self) -> Marking:
        """The initial marking declared by the places."""
        return Marking(
            {place.name: place.initial for place in self._places.values()}  # repro: ignore[DET001] marking mirrors declaration order; freeze() imposes the canonical sorted order
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A short human-readable description of the model's size."""
        return (
            f"SANModel {self.name!r}: {len(self._places)} places, "
            f"{len(self.timed_activities)} timed activities, "
            f"{len(self.instantaneous_activities)} instantaneous activities"
        )

    def __repr__(self) -> str:
        return self.summary()


def merge_places(models: Iterable[SANModel]) -> Dict[str, Place]:
    """Union of the place sets of several models, checking initial markings."""
    merged: Dict[str, Place] = {}
    for model in models:
        for place in model.places:
            existing = merged.get(place.name)
            if existing is None:
                merged[place.name] = place
            elif existing.initial != place.initial:
                raise SANValidationError(
                    f"shared place {place.name!r} has conflicting initial markings "
                    f"({existing.initial} vs {place.initial})"
                )
    return merged
