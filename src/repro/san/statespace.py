"""Reachability-graph state-space generation for Markovian SAN models.

The paper had to solve its models simulatively because the activity-time
distributions are not exponential (§5).  For the *exponential corner* of
the model space, however, a SAN is a continuous-time Markov chain and can
be solved exactly.  This module explores the reachable markings of a model
whose timed activities are all exponential and assembles the CTMC generator
matrix, which :mod:`repro.san.analytic` then solves numerically.

Semantics
---------
The generator reproduces the executor's semantics exactly
(:mod:`repro.san.executor`):

* A marking in which an instantaneous activity is enabled is *vanishing*:
  it is eliminated on the fly.  Among several enabled instantaneous
  activities the one with the lowest ``rank`` (then definition order)
  fires first -- the executor's deterministic tie-break -- and its
  probabilistic cases branch the elimination.
* A *tangible* marking (no instantaneous activity enabled) is a CTMC
  state.  Every enabled timed activity must carry an
  :class:`~repro.stats.distributions.Exponential` distribution
  (marking-dependent distributions are evaluated on the enabling marking);
  anything else raises :class:`NonMarkovianModelError`.  Case
  probabilities are evaluated on the marking at completion time, exactly
  as :meth:`~repro.san.activities.Activity.choose_case` does.
* Reactivation policies are irrelevant for *fixed* exponential
  distributions: memorylessness makes discarding and resampling a clock
  at the same rate a no-op.  For **marking-dependent** exponential rates
  the CTMC semantics used here (the rate tracks the current state
  immediately) can differ from the executor, which keeps a sampled clock
  while the activity stays enabled and only resamples on
  disable/re-enable -- the standard analytic SAN interpretation, but a
  caveat when cross-validating marking-dependent-rate models.
* A marking satisfying the ``stop_predicate`` is absorbing (the executor
  stops the replication there), as is a dead marking.  The predicate is
  checked after every completion -- including the instantaneous firings
  inside an elimination chain -- mirroring the executor.

The state key is the hashable :class:`~repro.san.marking.FrozenMarking`;
markings that agree on every nonzero place are the same state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.san.activities import Activity, Case, InstantaneousActivity, TimedActivity
from repro.san.marking import FrozenMarking, Marking
from repro.san.model import SANModel
from repro.stats.distributions import Exponential

MarkingPredicate = Callable[[Marking], bool]

#: Safety bound on the number of firings inside one vanishing-elimination
#: chain, to catch unstable (vanishing-loop) models.
MAX_VANISHING_FIRINGS = 100_000

#: Case probabilities smaller than this are treated as impossible branches.
PROBABILITY_EPSILON = 1e-15


class StateSpaceError(RuntimeError):
    """Raised when state-space generation fails."""


class NonMarkovianModelError(StateSpaceError):
    """Raised when a timed activity's distribution is not exponential."""


@dataclass(frozen=True)
class Transition:
    """One aggregated CTMC transition ``source -> target`` at ``rate``.

    ``completions`` maps activity names to the expected number of
    completions (timed firing plus any instantaneous firings of the
    elimination chain) incurred when this transition is taken; it backs the
    impulse rewards (:class:`~repro.san.rewards.ActivityCounter`).
    """

    source: int
    target: int
    rate: float
    completions: Tuple[Tuple[str, float], ...] = ()


@dataclass
class StateSpace:
    """The reachability graph of a Markovian SAN.

    Attributes
    ----------
    states:
        The tangible (and absorbing) markings, indexed by state number.
    initial_distribution:
        Probability of starting in each state (the initial marking may be
        vanishing, in which case its elimination chain branches).
    transitions:
        Aggregated transitions between states.
    absorbing:
        Boolean mask of absorbing states (stop-predicate states and dead
        markings).
    stop_mask:
        Boolean mask of the states satisfying the stop predicate (a subset
        of the absorbing states; empty when no predicate was given).
    initial_completions:
        Expected instantaneous completions fired while stabilising the
        *initial* marking (probability-weighted, by activity name).  The
        executor notifies reward variables of those firings too, so impulse
        rewards must include them.
    """

    model_name: str
    states: List[FrozenMarking]
    initial_distribution: np.ndarray
    transitions: List[Transition]
    absorbing: np.ndarray
    stop_mask: np.ndarray
    initial_completions: Dict[str, float] = field(default_factory=dict)
    _index: Dict[FrozenMarking, int] = field(default_factory=dict, repr=False)
    _generator: Optional[sparse.csr_matrix] = field(default=None, repr=False)
    _markings: Optional[List[Marking]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states in the reachability graph."""
        return len(self.states)

    def index_of(self, marking: FrozenMarking | Marking) -> int:
        """The state number of a marking, raising ``KeyError`` if unreachable."""
        key = marking.freeze() if isinstance(marking, Marking) else marking
        return self._index[key]

    def markings(self) -> List[Marking]:
        """Thawed (mutable) markings of every state, cached.

        Rate rewards and gate predicates are written against
        :class:`~repro.san.marking.Marking`, so analytic reward evaluation
        thaws each state once and reuses the copies.
        """
        if self._markings is None:
            self._markings = [state.thaw() for state in self.states]
        return self._markings

    def generator(self) -> sparse.csr_matrix:
        """The CTMC generator matrix Q (rows sum to zero), cached."""
        if self._generator is None:
            n = self.n_states
            rows, cols, rates = [], [], []
            diagonal = np.zeros(n)
            for transition in self.transitions:
                rows.append(transition.source)
                cols.append(transition.target)
                rates.append(transition.rate)
                diagonal[transition.source] -= transition.rate
            rows.extend(range(n))
            cols.extend(range(n))
            rates.extend(diagonal)
            self._generator = sparse.csr_matrix(
                (rates, (rows, cols)), shape=(n, n), dtype=float
            )
        return self._generator

    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate of each state (zero for absorbing states)."""
        return -np.asarray(self.generator().diagonal()).ravel()

    def completion_rate_matrix(
        self, activity_names: Optional[frozenset[str]] = None
    ) -> np.ndarray:
        """Expected completions per unit time in each state.

        ``activity_names=None`` counts every activity (timed completions
        plus the instantaneous firings charged to each transition), which
        is the analytic counterpart of
        :class:`~repro.san.rewards.ActivityCounter` with no filter.
        """
        rates = np.zeros(self.n_states)
        for transition in self.transitions:
            for name, count in transition.completions:
                if activity_names is None or name in activity_names:
                    rates[transition.source] += transition.rate * count
        return rates

    def summary(self) -> str:
        """A short human-readable description of the graph's size."""
        return (
            f"StateSpace of {self.model_name!r}: {self.n_states} states, "
            f"{len(self.transitions)} transitions, "
            f"{int(self.absorbing.sum())} absorbing"
        )

    def __repr__(self) -> str:
        return self.summary()


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def _exponential_rate(activity: TimedActivity, marking: Marking) -> float:
    """The exponential rate of ``activity`` in ``marking`` (or raise)."""
    dist = activity.distribution
    if callable(dist) and not hasattr(dist, "sample"):
        dist = dist(marking)
    if not isinstance(dist, Exponential):
        raise NonMarkovianModelError(
            f"timed activity {activity.name!r} has a "
            f"{type(dist).__name__} distribution; the analytic solver "
            "requires every timed activity to be Exponential -- use the "
            "simulative solver for non-Markovian models"
        )
    return dist.rate


def _case_distribution(
    activity: Activity, marking: Marking
) -> List[Tuple[Case, float]]:
    """The normalised case probabilities of ``activity`` in ``marking``."""
    weights = [case.weight(marking) for case in activity.cases]
    if any(weight < 0 for weight in weights):
        raise StateSpaceError(
            f"activity {activity.name!r}: negative case probability"
        )
    total = float(sum(weights))
    if total <= 0:
        raise StateSpaceError(
            f"activity {activity.name!r}: case probabilities sum to zero"
        )
    return [
        (case, weight / total)
        for case, weight in zip(activity.cases, weights, strict=True)
        if weight / total > PROBABILITY_EPSILON
    ]


def _stabilize(
    marking: Marking,
    instantaneous: Sequence[InstantaneousActivity],
    stop_predicate: Optional[MarkingPredicate],
) -> List[Tuple[float, Marking, Dict[str, float]]]:
    """Eliminate vanishing markings starting from ``marking``.

    Returns the distribution over terminal markings as ``(probability,
    marking, fired)`` triples, where ``fired`` counts the instantaneous
    completions along the path.  A terminal marking is tangible (no
    instantaneous activity enabled) or satisfies the stop predicate.
    """
    if stop_predicate is not None and stop_predicate(marking):
        return [(1.0, marking, {})]
    pending: List[Tuple[float, Marking, Dict[str, float]]] = [(1.0, marking, {})]
    terminal: List[Tuple[float, Marking, Dict[str, float]]] = []
    firings = 0
    while pending:
        probability, current, fired = pending.pop()
        enabled = None
        for activity in instantaneous:
            if activity.enabled(current):
                enabled = activity
                break
        if enabled is None:
            terminal.append((probability, current, fired))
            continue
        firings += 1
        if firings > MAX_VANISHING_FIRINGS:
            raise StateSpaceError(
                f"more than {MAX_VANISHING_FIRINGS} instantaneous firings "
                "while eliminating a vanishing marking -- unstable "
                "(vanishing) loop?"
            )
        cases = _case_distribution(enabled, current)
        for case, case_probability in cases:
            branch = current.copy() if len(cases) > 1 else current
            enabled.complete(branch, case)
            branch_fired = dict(fired)
            branch_fired[enabled.name] = branch_fired.get(enabled.name, 0.0) + 1.0
            branch_probability = probability * case_probability
            if stop_predicate is not None and stop_predicate(branch):
                terminal.append((branch_probability, branch, branch_fired))
            else:
                pending.append((branch_probability, branch, branch_fired))
    return terminal


def generate_state_space(
    model: SANModel,
    stop_predicate: Optional[MarkingPredicate] = None,
    initial_marking: Optional[Marking] = None,
    max_states: int = 200_000,
) -> StateSpace:
    """Explore the reachable markings of a Markovian SAN.

    Parameters
    ----------
    model:
        The model; it is validated, and every timed activity reachable
        during the exploration must have an exponential distribution.
    stop_predicate:
        Optional predicate over the marking; satisfying states are
        absorbing (the simulative executor stops there).
    initial_marking:
        Overrides the model's declared initial marking.
    max_states:
        Safety bound on the state count (raises
        :class:`StateSpaceError` beyond it).
    """
    model.validate()
    instantaneous = sorted(
        model.instantaneous_activities, key=lambda activity: activity.rank
    )
    timed = model.timed_activities

    start = (
        initial_marking.copy() if initial_marking is not None
        else model.initial_marking()
    )

    states: List[FrozenMarking] = []
    index: Dict[FrozenMarking, int] = {}
    initial_probability: Dict[int, float] = {}
    stop_flags: List[bool] = []
    frontier: List[int] = []

    def intern_state(marking: Marking, stopped: bool) -> int:
        key = marking.freeze()
        state = index.get(key)
        if state is None:
            state = len(states)
            if state >= max_states:
                raise StateSpaceError(
                    f"model {model.name!r}: state space exceeds "
                    f"max_states={max_states}"
                )
            states.append(key)
            index[key] = state
            stop_flags.append(stopped)
            if not stopped:
                frontier.append(state)
        return state

    initial_completions: Dict[str, float] = {}
    for probability, terminal, fired in _stabilize(
        start, instantaneous, stop_predicate
    ):
        stopped = stop_predicate is not None and stop_predicate(terminal)
        state = intern_state(terminal, stopped)
        initial_probability[state] = (
            initial_probability.get(state, 0.0) + probability
        )
        # sorted() so the accumulator's key order never depends on the
        # firing-dict's mutation history (each key accumulates
        # independently, so sorting cannot change any value).
        for name, count in sorted(fired.items()):
            initial_completions[name] = (
                initial_completions.get(name, 0.0) + count * probability
            )

    transitions: List[Transition] = []
    cursor = 0
    while cursor < len(frontier):
        source = frontier[cursor]
        cursor += 1
        source_marking = states[source].thaw()
        # Aggregate parallel edges: (target) -> [rate, completions].
        edges: Dict[int, Tuple[float, Dict[str, float]]] = {}
        for activity in timed:
            if not activity.enabled(source_marking):
                continue
            rate = _exponential_rate(activity, source_marking)
            for case, case_probability in _case_distribution(
                activity, source_marking
            ):
                after = source_marking.copy()
                activity.complete(after, case)
                branch_rate = rate * case_probability
                for probability, terminal, fired in _stabilize(
                    after, instantaneous, stop_predicate
                ):
                    stopped = (
                        stop_predicate is not None and stop_predicate(terminal)
                    )
                    target = intern_state(terminal, stopped)
                    edge_rate = branch_rate * probability
                    total_rate, completions = edges.get(target, (0.0, {}))
                    completions = dict(completions)
                    # Completions are per-transition expectations, so each
                    # contribution is weighted by its share of the edge.
                    completions[activity.name] = (
                        completions.get(activity.name, 0.0) + edge_rate
                    )
                    # sorted() for the same per-key-independence reason as
                    # the initial-completions accumulation above.
                    for name, count in sorted(fired.items()):
                        completions[name] = (
                            completions.get(name, 0.0) + count * edge_rate
                        )
                    edges[target] = (total_rate + edge_rate, completions)
        for target, (rate, completions) in edges.items():  # repro: ignore[DET001] keyed by interned state id; insertion order is the deterministic discovery order, and sorting would reorder downstream float accumulation
            transitions.append(
                Transition(
                    source=source,
                    target=target,
                    rate=rate,
                    # Normalise the rate-weighted counts into expected
                    # completions per transition.
                    completions=tuple(
                        sorted(
                            (name, weighted / rate)
                            for name, weighted in completions.items()
                        )
                    ),
                )
            )

    n = len(states)
    initial = np.zeros(n)
    # sorted() is free here: each state index is written exactly once.
    for state, probability in sorted(initial_probability.items()):
        initial[state] = probability
    if not math.isclose(float(initial.sum()), 1.0, rel_tol=1e-9):
        raise StateSpaceError(
            f"initial distribution sums to {initial.sum()!r}, expected 1"
        )

    has_exit = np.zeros(n, dtype=bool)
    for transition in transitions:
        if transition.target != transition.source:
            has_exit[transition.source] = True
    stop_mask = np.asarray(stop_flags, dtype=bool)
    absorbing = ~has_exit

    return StateSpace(
        model_name=model.name,
        states=states,
        initial_distribution=initial,
        transitions=transitions,
        absorbing=absorbing,
        stop_mask=stop_mask,
        initial_completions=initial_completions,
        _index=index,
    )
