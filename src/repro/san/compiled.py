"""Compilation of SAN models to index-based execution tables.

:class:`CompiledSANModel` lowers a :class:`~repro.san.model.SANModel` to
integer-indexed structures: places become column indices into a token
matrix, input/output arc effects become ``(place_index, weight)`` tuples,
and the opaque parts -- gate predicates and functions, marking-dependent
case probabilities, duration distributions -- stay as the original
closures but re-keyed by activity index.  The compiled form is what
:class:`~repro.san.batched.BatchedSANExecutor` interprets: ``B``
replications advance lock-step over a ``B x places`` token matrix instead
of ``B`` independent object-graph walks.

Like the scalar executor's ``_ModelStructure`` (PR 5), the compiled model
is derived purely from the model's immutable shape, built once and cached
on the model instance keyed by
:attr:`~repro.san.model.SANModel.structure_version`.

Ordering contracts
------------------
The compiled tables preserve every ordering the scalar executor's golden
traces pin down, so a batched row replays the scalar trajectory exactly:

* :attr:`CompiledSANModel.timed` is in model declaration order (the order
  of the initial activation walk, and the conservative ``global_timed``
  prefix of every refresh keeps it);
* :attr:`CompiledSANModel.instantaneous` is rank-sorted with declaration
  order breaking ties, so a compiled instantaneous *index* compares
  exactly like the scalar executor's ``inst_order`` precedence;
* per-place watcher tuples keep activity order, and
  :attr:`CompiledSANModel.place_sort_rank` ranks place indices by place
  *name* so the batched refresh can walk changed places in the scalar
  executor's ``sorted(changed)`` order without comparing strings.

These orderings are what make the two executors bit-identical: a
replication's random draw order (activation draws, case draws) is a pure
function of the traversal order the tables encode, so any change here
must keep the golden traces -- and therefore the determinism contract of
:mod:`repro.san.solver` -- intact.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro.san.activities import Activity, Case, TimedActivity
from repro.san.gates import InputGate, OutputGate
from repro.san.marking import FrozenMarking, Marking, PlaceRef
from repro.san.model import SANModel
from repro.stats.distributions import Constant, supports_batch

#: Duration-sampling strategies of a compiled timed activity (mirrors the
#: scalar executor's ``_make_duration_sampler`` classification).
DURATION_CONSTANT = 0
DURATION_BATCHED = 1
DURATION_GENERIC = 2

#: A duration sampler bound to one (row, activity) pair: marking -> delay.
DurationSampler = Callable[[Marking], float]


class CompiledCase:
    """One case of a compiled activity, with output effects by place index."""

    __slots__ = (
        "case",
        "output_arcs",
        "output_gates",
        "change_idx",
        "candidate_bits",
    )

    def __init__(
        self,
        case: Case,
        input_arcs: Tuple[Tuple[int, int], ...],
        output_arcs: Tuple[Tuple[int, int], ...],
        output_gates: Tuple[OutputGate, ...],
    ) -> None:
        self.case = case
        self.output_arcs = output_arcs
        self.output_gates = output_gates
        #: Place indices every completion through this case changes via
        #: arcs (weights are >= 1, so each arc write journals) -- the
        #: static part of the completion's changed set; gate writes are
        #: the dynamic remainder.
        self.change_idx: FrozenSet[int] = frozenset(
            place for place, _weight in input_arcs
        ) | frozenset(place for place, _weight in output_arcs)
        #: Candidate bitmask of the instantaneous activities affected by
        #: the static changed set (conservatives included).  Filled in by
        #: :class:`CompiledSANModel` once the dependency bit tables exist.
        self.candidate_bits: int = 0


class CompiledActivity:
    """An activity lowered to index-based enablement and completion tables.

    ``index`` is the position in the owning kind's list: declaration order
    for timed activities, rank-sorted firing precedence for instantaneous
    ones (i.e. the scalar executor's ``inst_order`` position).
    """

    __slots__ = (
        "index",
        "name",
        "timed",
        "activity",
        "input_arcs",
        "input_gates",
        "cases",
        "case_lookup",
        "single_case",
        "duration_kind",
        "constant_duration",
        "distribution",
        "duration_stream",
        "case_stream",
    )

    def __init__(
        self,
        index: int,
        activity: Activity,
        place_index: Dict[str, int],
    ) -> None:
        self.index = index
        self.name = activity.name
        self.timed = activity.timed
        self.activity = activity
        self.input_arcs: Tuple[Tuple[int, int], ...] = tuple(
            (place_index[place], weight) for place, weight in activity.input_arcs
        )
        self.input_gates: Tuple[InputGate, ...] = activity.input_gates
        self.cases: Tuple[CompiledCase, ...] = tuple(
            CompiledCase(
                case,
                self.input_arcs,
                tuple(
                    (place_index[place], weight)
                    for place, weight in case.output_arcs
                ),
                case.output_gates,
            )
            for case in activity.cases
        )
        #: ``id(case) -> compiled case``: ``Activity.choose_case`` returns
        #: one of the original :class:`Case` objects, which this maps back
        #: to its compiled effects without an index search.
        self.case_lookup: Dict[int, CompiledCase] = {
            id(compiled.case): compiled for compiled in self.cases  # repro: ignore[DET005] identity map from choose_case's returned Case object to its compiled twin; looked up by key only, never iterated or ordered
        }
        self.single_case = self.cases[0] if len(self.cases) == 1 else None
        self.duration_stream = f"san.duration.{activity.name}"
        self.case_stream = f"san.case.{activity.name}"
        self.duration_kind = DURATION_GENERIC
        self.constant_duration = 0.0
        self.distribution: object = None
        if isinstance(activity, TimedActivity):
            dist = activity.distribution
            self.distribution = dist
            if not callable(dist) or hasattr(dist, "sample"):
                if isinstance(dist, Constant):
                    self.duration_kind = DURATION_CONSTANT
                    self.constant_duration = float(dist.value)
                elif supports_batch(dist):
                    self.duration_kind = DURATION_BATCHED

    def enabled(self, tokens: Sequence[int], marking: Marking) -> bool:
        """The SAN enabling rule over one row of the token matrix."""
        for place, weight in self.input_arcs:
            if tokens[place] < weight:
                return False
        for gate in self.input_gates:
            if not gate.predicate(marking):
                return False
        return True


class CompiledSANModel:
    """A :class:`~repro.san.model.SANModel` lowered to integer indices.

    Build via :func:`compile_model`, which caches the compiled form on the
    model instance keyed by its ``structure_version``.
    """

    __slots__ = (
        "version",
        "model_name",
        "place_names",
        "place_index",
        "place_sort_rank",
        "initial_tokens",
        "timed",
        "instantaneous",
        "timed_by_place",
        "inst_by_place",
        "timed_by_unknown",
        "inst_by_unknown",
        "global_timed",
        "global_inst",
        "global_inst_indices",
        "global_inst_bits",
        "inst_bits_by_place",
        "inst_bits_by_unknown",
        "inst_flat_places",
        "inst_flat_weights",
        "inst_arc_starts",
        "inst_arc_cols",
        "n_places",
        "n_timed",
        "n_inst",
    )

    def __init__(self, model: SANModel) -> None:
        model.validate()
        self.version = model.structure_version
        self.model_name = model.name
        self.place_names: Tuple[str, ...] = tuple(
            place.name for place in model.places
        )
        self.place_index: Dict[str, int] = {
            name: index for index, name in enumerate(self.place_names)
        }
        #: Rank of each place index in *name-sorted* order: sorting changed
        #: place indices by this rank reproduces the scalar executor's
        #: ``sorted(changed)`` walk without comparing strings.
        rank_of_name = {
            name: rank for rank, name in enumerate(sorted(self.place_names))
        }
        self.place_sort_rank: Tuple[int, ...] = tuple(
            rank_of_name[name] for name in self.place_names
        )
        self.initial_tokens: Tuple[int, ...] = tuple(
            place.initial for place in model.places
        )
        self.n_places = len(self.place_names)

        self.timed: Tuple[CompiledActivity, ...] = tuple(
            CompiledActivity(index, activity, self.place_index)
            for index, activity in enumerate(model.timed_activities)
        )
        rank_sorted = sorted(
            model.instantaneous_activities, key=lambda activity: activity.rank
        )
        self.instantaneous: Tuple[CompiledActivity, ...] = tuple(
            CompiledActivity(index, activity, self.place_index)
            for index, activity in enumerate(rank_sorted)
        )
        self.n_timed = len(self.timed)

        timed_by_place: Dict[int, List[CompiledActivity]] = {}
        inst_by_place: Dict[int, List[CompiledActivity]] = {}
        timed_by_unknown: Dict[str, List[CompiledActivity]] = {}
        inst_by_unknown: Dict[str, List[CompiledActivity]] = {}
        global_timed: List[CompiledActivity] = []
        global_inst: List[CompiledActivity] = []
        for compiled in self.timed:
            self._index_activity(
                compiled, timed_by_place, timed_by_unknown, global_timed
            )
        for compiled in self.instantaneous:
            self._index_activity(
                compiled, inst_by_place, inst_by_unknown, global_inst
            )
        self.timed_by_place: Dict[int, Tuple[CompiledActivity, ...]] = {
            place: tuple(activities)
            for place, activities in timed_by_place.items()  # repro: ignore[DET001] re-keying only; the result is read by .get(key), never iterated in order
        }
        self.inst_by_place: Dict[int, Tuple[CompiledActivity, ...]] = {
            place: tuple(activities)
            for place, activities in inst_by_place.items()  # repro: ignore[DET001] re-keying only; the result is read by .get(key), never iterated in order
        }
        #: Watched place *names* not declared in the model (only reachable
        #: through gate functions writing undeclared places); kept
        #: name-keyed exactly like the scalar executor's index.
        self.timed_by_unknown: Dict[str, Tuple[CompiledActivity, ...]] = {
            name: tuple(activities)
            for name, activities in timed_by_unknown.items()  # repro: ignore[DET001] re-keying only; the result is read by .get(key), never iterated in order
        }
        self.inst_by_unknown: Dict[str, Tuple[CompiledActivity, ...]] = {
            name: tuple(activities)
            for name, activities in inst_by_unknown.items()  # repro: ignore[DET001] re-keying only; the result is read by .get(key), never iterated in order
        }
        self.global_timed: Tuple[CompiledActivity, ...] = tuple(global_timed)
        self.global_inst: Tuple[CompiledActivity, ...] = tuple(global_inst)
        self.global_inst_indices: Set[int] = {
            compiled.index for compiled in global_inst
        }

        # Bitmask twins of the instantaneous dependency indexes, for the
        # batched executor's matrix-level chain: bit ``i`` stands for
        # firing-precedence position ``i``, so OR-ing the masks of the
        # changed places rebuilds the candidate set with one integer OR
        # per place, and the *lowest set bit* of a candidate mask is the
        # next activity the scalar executor's rank-ordered walk would
        # visit.
        self.n_inst = len(self.instantaneous)
        self.global_inst_bits = self._inst_bits(self.global_inst)
        self.inst_bits_by_place: Dict[int, int] = {
            place: self._inst_bits(activities)
            for place, activities in self.inst_by_place.items()  # repro: ignore[DET001] re-keying only; the result is read by .get(key), never iterated in order
        }
        self.inst_bits_by_unknown: Dict[str, int] = {
            name: self._inst_bits(activities)
            for name, activities in self.inst_by_unknown.items()  # repro: ignore[DET001] re-keying only; the result is read by .get(key), never iterated in order
        }

        # Pre-resolve each case's static candidate bitmask (the arcs of a
        # completion are fixed per case, so its candidate set is too, up
        # to gate writes, which the executor ORs in dynamically).
        for compiled in self.timed + self.instantaneous:
            for compiled_case in compiled.cases:
                bits = self.global_inst_bits
                for place in compiled_case.change_idx:
                    bits |= self.inst_bits_by_place.get(place, 0)
                compiled_case.candidate_bits = bits

        # Flattened instantaneous input arcs, grouped by activity, for one
        # ``np.logical_and.reduceat`` arc-enablement check per chain round
        # over every chaining row at once: ``flat_places``/``flat_weights``
        # concatenate each activity's arcs, ``arc_starts`` marks the
        # segment boundaries (reduceat input), and ``arc_cols`` maps each
        # segment back to its activity index.  Arc-less activities have no
        # segment; their mask column defaults to enabled.
        flat_places: List[int] = []
        flat_weights: List[int] = []
        arc_starts: List[int] = []
        arc_cols: List[int] = []
        for compiled in self.instantaneous:
            if compiled.input_arcs:
                arc_cols.append(compiled.index)
                arc_starts.append(len(flat_places))
                for place, weight in compiled.input_arcs:
                    flat_places.append(place)
                    flat_weights.append(weight)
        self.inst_flat_places = np.asarray(flat_places, dtype=np.intp)
        self.inst_flat_weights = np.asarray(flat_weights, dtype=np.int64)
        self.inst_arc_starts = np.asarray(arc_starts, dtype=np.intp)
        self.inst_arc_cols = np.asarray(arc_cols, dtype=np.intp)

    def _inst_bits(self, activities: Sequence[CompiledActivity]) -> int:
        bits = 0
        for compiled in activities:
            bits |= 1 << compiled.index
        return bits

    def _index_activity(
        self,
        compiled: CompiledActivity,
        index: Dict[int, List[CompiledActivity]],
        unknown: Dict[str, List[CompiledActivity]],
        global_list: List[CompiledActivity],
    ) -> None:
        """Dependency index: same policy as the scalar ``_ModelStructure``.

        An activity whose gates all declare their watched places is indexed
        under every place it reads; one with an undeclared watch list is
        conservatively re-evaluated after every completion.  Watched place
        *names* outside the model (which arc validation cannot reject) go
        into the name-keyed ``unknown`` side index, mirroring the scalar
        executor exactly -- they can only be triggered by gate functions
        writing those names.
        """
        places: Set[int] = {place for place, _ in compiled.input_arcs}
        names: Set[str] = set()
        conservative = False
        for gate in compiled.input_gates:
            if not gate.watched_places:
                conservative = True
                break
            for name in gate.watched_places:
                place = self.place_index.get(name)
                if place is None:
                    names.add(name)
                else:
                    places.add(place)
        if conservative:
            global_list.append(compiled)
            return
        for place in sorted(places):
            index.setdefault(place, []).append(compiled)
        for name in sorted(names):
            unknown.setdefault(name, []).append(compiled)

    # ------------------------------------------------------------------
    def arc_enabled_mask(
        self, tokens: np.ndarray, activities: Sequence[CompiledActivity]
    ) -> np.ndarray:
        """Vectorised input-*arc* enablement over a ``B x P`` token matrix.

        Returns a ``B x len(activities)`` boolean mask; gates are not
        evaluated (see :meth:`enablement_mask`).  One numpy comparison per
        arc, amortised over all ``B`` rows.
        """
        mask = np.ones((tokens.shape[0], len(activities)), dtype=bool)
        for column, compiled in enumerate(activities):
            for place, weight in compiled.input_arcs:
                mask[:, column] &= tokens[:, place] >= weight
        return mask

    def enablement_mask(
        self,
        tokens: np.ndarray,
        activities: Sequence[CompiledActivity],
        markings: Sequence[Marking],
    ) -> np.ndarray:
        """Full vectorised enablement (arcs *and* gates) over a token matrix.

        ``markings`` supplies one marking view per row for the gate
        predicates: arc checks are pure numpy; gate closures are opaque and
        evaluated per row, but only where the arc mask already holds.
        """
        mask = self.arc_enabled_mask(tokens, activities)
        for column, compiled in enumerate(activities):
            if not compiled.input_gates:
                continue
            for row in np.flatnonzero(mask[:, column]):
                for gate in compiled.input_gates:
                    if not gate.predicate(markings[row]):
                        mask[row, column] = False
                        break
        return mask


def compile_model(model: SANModel) -> CompiledSANModel:
    """The cached :class:`CompiledSANModel` of ``model`` (rebuilt when stale).

    Same caching discipline as the scalar executor's ``_structure_for``:
    keyed by ``structure_version``, shared by every batched executor over
    the same unchanged model.
    """
    cached = getattr(model, "_compiled_model", None)
    if cached is not None and cached.version == model.structure_version:
        return cached
    compiled = CompiledSANModel(model)
    model._compiled_model = compiled  # type: ignore[attr-defined]
    return compiled


class RowMarking(Marking):
    """A :class:`~repro.san.marking.Marking` view of one token-matrix row.

    Gate closures, reward variables, case-probability callables and stop
    predicates receive this adapter, so the batched executor feeds the
    exact same callable interfaces as the scalar one.  Reads and writes
    resolve place names to row indices through the compiled place table;
    writes journal the changed *indices* (consumed by the batched
    executor's dependency walk).  Names outside the compiled model --
    reachable only through gate closures writing undeclared places, which
    arc validation cannot see -- spill into a per-row overflow mapping and
    are journalled by name, mirroring the scalar marking.
    """

    __slots__ = (
        "_compiled",
        "_index",
        "_row",
        "_mirror",
        "_overflow",
        "_changed_idx",
        "_changed_names",
    )

    def __init__(
        self,
        compiled: CompiledSANModel,
        row: List[int],
        mirror: "np.ndarray | None" = None,
    ) -> None:
        # Deliberately does NOT call Marking.__init__: token storage is the
        # shared row list, not a private dict.  Marking's derived helpers
        # (add/remove/has/set_all/__eq__) all route through the overridden
        # accessors below, and Activity.enabled's `_tokens` fast path falls
        # back to the mapping interface for this class (the slot is unset).
        #
        # ``mirror`` is an optional view of this row in the executor's
        # persistent token matrix: scalar reads stay on the fast Python
        # list, while every write is duplicated into the matrix so the
        # vectorised passes (arc masks, the matrix chain) always see
        # current state.
        self._compiled = compiled
        self._index = compiled.place_index
        self._row = row
        self._mirror = mirror
        self._overflow: Dict[str, int] = {}
        self._changed_idx: Set[int] = set()
        self._changed_names: Set[str] = set()

    # -- accessors ------------------------------------------------------
    def __getitem__(self, place: PlaceRef) -> int:
        # Fast path: string name of a declared place (the overwhelmingly
        # common call shape from gates, rewards and stop predicates).
        try:
            return self._row[self._index[place]]
        except KeyError:
            pass
        name = place if isinstance(place, str) else place.name
        index = self._index.get(name)
        if index is None:
            return self._overflow.get(name, 0)
        return self._row[index]

    def __setitem__(self, place: PlaceRef, count: int) -> None:
        name = place if isinstance(place, str) else place.name
        count = int(count)
        if count < 0:
            raise ValueError(
                f"marking of place {name!r} would become negative ({count})"
            )
        index = self._compiled.place_index.get(name)
        if index is None:
            if self._overflow.get(name, 0) != count:
                self._changed_names.add(name)
            self._overflow[name] = count
            return
        if self._row[index] != count:
            self._changed_idx.add(index)
        self._row[index] = count
        if self._mirror is not None:
            self._mirror[index] = count

    def __contains__(self, place: PlaceRef) -> bool:
        name = place if isinstance(place, str) else place.name
        return name in self._compiled.place_index or name in self._overflow

    def __iter__(self) -> Iterator[str]:
        yield from self._compiled.place_names
        yield from sorted(self._overflow)

    def __len__(self) -> int:
        return self._compiled.n_places + len(self._overflow)

    # -- journal --------------------------------------------------------
    def take_changes(self) -> Tuple[Set[int], Set[str]]:
        """Changed (place indices, overflow names) since the last call.

        An *empty* journal set is returned as-is (not replaced): it can
        only become non-empty by being the next call's own return value,
        so callers treating the result as a snapshot stay consistent
        while the hot path skips two allocations per completion.
        """
        changed_idx = self._changed_idx
        changed_names = self._changed_names
        if changed_idx:
            self._changed_idx = set()
        if changed_names:
            self._changed_names = set()
        return changed_idx, changed_names

    def consume_changes(self) -> Set[str]:
        """Changed place *names*: :class:`Marking` journal-interface parity."""
        changed_idx, changed_names = self.take_changes()
        names = {self._compiled.place_names[index] for index in changed_idx}
        return names | changed_names

    # -- snapshots ------------------------------------------------------
    def as_dict(self, drop_zeros: bool = False) -> Dict[str, int]:
        """The row as a plain dictionary (declaration order, like Marking)."""
        row = self._row
        names = self._compiled.place_names
        if drop_zeros:
            result = {
                names[index]: count for index, count in enumerate(row) if count
            }
            result.update(
                (name, count)
                for name, count in sorted(self._overflow.items())
                if count
            )
            return result
        full = dict(zip(names, row, strict=True))
        full.update(sorted(self._overflow.items()))
        return full

    def copy(self) -> Marking:
        """An independent plain :class:`Marking` snapshot of this row.

        Uses the same fast-clone idiom as :meth:`Marking.copy`: the row
        already enforces the non-negative-integer invariant, so the clone
        adopts the token dict without replaying ``__setitem__``.
        """
        clone = Marking.__new__(Marking)
        clone._tokens = self.as_dict()
        clone._changed = set()
        return clone

    def freeze(self) -> FrozenMarking:
        """An immutable :class:`FrozenMarking` snapshot of this row."""
        return FrozenMarking._from_clean_tokens(self.as_dict())

    def total_tokens(self) -> int:
        """Total token count over compiled places and the overflow dict."""
        return sum(self._row) + sum(self._overflow.values())

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in sorted(self.as_dict().items()) if v}
        return f"RowMarking({nonzero})"


__all__ = [
    "CompiledActivity",
    "CompiledCase",
    "CompiledSANModel",
    "DURATION_BATCHED",
    "DURATION_CONSTANT",
    "DURATION_GENERIC",
    "DurationSampler",
    "RowMarking",
    "compile_model",
]
