"""Lock-step batched execution of SAN replications.

:class:`BatchedSANExecutor` runs ``B`` independent replications of one
model together: the markings live in a persistent ``B x places`` token
matrix (one row per replication; per-row :class:`RowMarking` adapters
are views into it), scheduled timed completions in a ``B x timed``
completion-time matrix, and each simulation round advances every active
row by exactly one timed event -- selected with one vectorised
``min``/``argmin`` over the completion matrix instead of ``B`` binary
heaps.  Initial activation evaluates input arcs as one vectorised mask
over the whole matrix (:meth:`CompiledSANModel.arc_enabled_mask`).

The instantaneous chains that follow each round's completions run as
**one matrix-level walk across every chaining row at once**
(:meth:`_fire_chain_matrix`): candidate sets are boolean mask rows built
from the compiled model's per-place dependency masks, and each chain
round checks every candidate's input arcs for every chaining row with a
single ``np.logical_and.reduceat`` over the compiled flat-arc tables.
Only the parts the matrix cannot express stay per row -- gate
predicates, case selection and the completion effects themselves -- and
those are evaluated in exactly the scalar executor's order, only for
candidates the vectorised arc check has already passed.

Determinism contract (the *batched draw-order contract*)
--------------------------------------------------------
Every row is **bit-identical to the scalar executor** run with the same
seed, at any batch size:

* row ``r`` draws from its own ``RandomStreams(seed_r)`` with the same
  named streams (``san.duration.<activity>`` / ``san.case.<activity>``)
  the scalar executor derives from ``Simulator(seed_r)``, and batching
  never interleaves draws across rows within a stream;
* within a row, activities are walked in the scalar executor's exact
  order (declaration order at start-up; conservative gates first, then
  name-sorted changed places after each completion), so the per-row
  sequence numbers -- which break same-instant completion ties exactly
  like the scalar calendar's -- are assigned identically;
* duration draws use the same pre-drawn per-stream batches
  (:class:`~repro.san.executor._BatchedDurationSampler`), which numpy
  guarantees bit-identical to repeated scalar draws.

Consequently ``B=1`` reproduces the scalar golden traces float-for-float,
and a ``B>1`` batch produces exactly the per-replication results the
scalar replication loop would, merely faster.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.des.random import RandomStreams
from repro.des.simulator import Simulator
from repro.san.compiled import (
    DURATION_BATCHED,
    DURATION_CONSTANT,
    CompiledActivity,
    CompiledSANModel,
    DurationSampler,
    RowMarking,
    compile_model,
)
from repro.san.executor import (
    MAX_INSTANTANEOUS_CHAIN,
    ExecutionResult,
    MarkingPredicate,
    SANExecutionError,
    _BatchedDurationSampler,
)
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.rewards import RewardVariable

_INF = math.inf


class _Row:
    """Per-replication state of one row of the batch."""

    __slots__ = (
        "index",
        "tokens",
        "mirror",
        "marking",
        "streams",
        "rewards",
        "completion_hooks",
        "marking_hooks",
        "samplers",
        "case_rngs",
        "next_seq",
        "now",
        "completions",
        "stopped",
    )

    def __init__(
        self,
        index: int,
        tokens: List[int],
        mirror: np.ndarray,
        marking: RowMarking,
        streams: RandomStreams,
        rewards: List[RewardVariable],
        n_timed: int,
    ) -> None:
        self.index = index
        #: Python-list token store (fast scalar reads for gates, rewards
        #: and completion effects) ...
        self.tokens = tokens
        #: ... and its view of this row in the executor's token matrix:
        #: every write updates both, so vectorised passes read the matrix
        #: without re-assembling it.
        self.mirror = mirror
        self.marking = marking
        self.streams = streams
        self.rewards = rewards
        #: Bound per-completion hooks of the rewards that actually
        #: override them (the base-class hooks are no-ops, so skipping
        #: them is behaviour-identical; distinct rewards are independent
        #: observers of a marking that does not change between hooks, so
        #: splitting the scalar executor's per-reward interleaving into
        #: two lists is too).
        self.completion_hooks = [
            reward.on_activity_completion
            for reward in rewards
            if type(reward).on_activity_completion
            is not RewardVariable.on_activity_completion
        ]
        self.marking_hooks = [
            reward.on_marking_change
            for reward in rewards
            if type(reward).on_marking_change
            is not RewardVariable.on_marking_change
        ]
        #: Lazily-built duration samplers, indexed by timed-activity index
        #: (the scalar executor memoises per name; the index is the name).
        self.samplers: List[Optional[DurationSampler]] = [None] * n_timed
        self.case_rngs: Dict[str, np.random.Generator] = {}
        #: Mirrors the scalar calendar's sequence counter: bumped once per
        #: schedule, never on cancellation, so same-instant completions
        #: tie-break exactly like the scalar heap's ``(time, seq)`` order.
        self.next_seq = 0
        self.now = 0.0
        self.completions = 0
        self.stopped = False


class BatchedSANExecutor:
    """Executes ``B`` replications of a SAN model lock-step.

    Two construction forms:

    * **Scalar-compatible** (drop-in for :class:`~repro.san.executor.
      SANExecutor`, used by golden-trace tests and ``executor_class``
      hooks): ``BatchedSANExecutor(model, sim, rewards, initial_marking)``
      runs a single row drawing from ``sim.random``; :meth:`run` returns
      one :class:`ExecutionResult`.
    * **Batched** (:meth:`for_batch`): one row per replication seed, each
      with its own reward variables; :meth:`run_batch` returns the results
      in row order.
    """

    def __init__(
        self,
        model: SANModel,
        sim: Optional[Simulator] = None,
        rewards: Sequence[RewardVariable] = (),
        initial_marking: Optional[Marking] = None,
        *,
        streams: Optional[Sequence[RandomStreams]] = None,
        rewards_per_row: Optional[Sequence[Sequence[RewardVariable]]] = None,
        initial_markings: Optional[Sequence[Optional[Marking]]] = None,
    ) -> None:
        model.validate()
        self.model = model
        self._compiled: CompiledSANModel = compile_model(model)
        if streams is None:
            if sim is None:
                raise TypeError(
                    "BatchedSANExecutor needs a Simulator (scalar-compatible "
                    "form) or explicit per-row streams (for_batch)"
                )
            streams = [sim.random]
            rewards_per_row = [list(rewards)]
            initial_markings = [initial_marking]
        if rewards_per_row is None:
            rewards_per_row = [[] for _ in streams]
        if initial_markings is None:
            initial_markings = [None] * len(streams)
        if not (len(streams) == len(rewards_per_row) == len(initial_markings)):
            raise ValueError(
                "streams, rewards_per_row and initial_markings must have "
                "one entry per row"
            )
        n_timed = self._compiled.n_timed
        self._comp = np.full((len(streams), n_timed), _INF, dtype=np.float64)
        self._seqs = np.zeros((len(streams), n_timed), dtype=np.int64)
        #: The persistent ``B x places`` token matrix, kept in lock-step
        #: with the per-row token lists (every write mirrors into it), so
        #: vectorised passes (arc masks, the matrix chain) read current
        #: state without re-assembling anything from per-row storage.
        self._tokens = np.zeros(
            (len(streams), self._compiled.n_places), dtype=np.int64
        )
        #: Constant-duration samplers are marking- and stream-independent,
        #: so one closure per activity serves every row of the batch.
        self._constant_samplers: Dict[int, DurationSampler] = {}
        self._rows: List[_Row] = []
        for index, (row_streams, row_rewards, initial) in enumerate(
            zip(streams, rewards_per_row, initial_markings, strict=True)
        ):
            tokens, overflow = self._initial_tokens(initial)
            self._tokens[index] = tokens
            mirror = self._tokens[index]
            marking = RowMarking(self._compiled, tokens, mirror)
            if overflow:
                marking._overflow.update(overflow)
            self._rows.append(
                _Row(
                    index,
                    tokens,
                    mirror,
                    marking,
                    row_streams,
                    list(row_rewards),
                    n_timed,
                )
            )
        self._stop_predicate: Optional[MarkingPredicate] = None

    @classmethod
    def for_batch(
        cls,
        model: SANModel,
        seeds: Sequence[int],
        rewards_per_row: Sequence[Sequence[RewardVariable]],
        initial_markings: Optional[Sequence[Optional[Marking]]] = None,
    ) -> "BatchedSANExecutor":
        """One row per replication seed (``RandomStreams(seed)`` each)."""
        return cls(
            model,
            streams=[RandomStreams(seed) for seed in seeds],
            rewards_per_row=rewards_per_row,
            initial_markings=initial_markings,
        )

    # ------------------------------------------------------------------
    # Introspection (tests and cross-checks)
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        """Number of replication rows in this executor."""
        return len(self._rows)

    @property
    def completions(self) -> int:
        """Completions of row 0 (scalar-compatible introspection)."""
        return self._rows[0].completions

    @property
    def marking(self) -> Marking:
        """Marking view of row 0 (scalar-compatible introspection)."""
        return self._rows[0].marking

    def tokens_matrix(self) -> np.ndarray:
        """The current ``B x places`` token matrix (a snapshot copy)."""
        return self._tokens.copy()

    def enabled_mask(
        self, activities: Optional[Sequence[CompiledActivity]] = None
    ) -> np.ndarray:
        """Vectorised full-enablement mask over the current token matrix.

        Defaults to all activities (timed then instantaneous); a
        ``B x len(activities)`` boolean array.
        """
        if activities is None:
            activities = self._compiled.timed + self._compiled.instantaneous
        return self._compiled.enablement_mask(
            self.tokens_matrix(),
            activities,
            [row.marking for row in self._rows],
        )

    def enabled_activity_names(self, row_index: int = 0) -> Set[str]:
        """Names of every enabled activity in one row (mask-derived)."""
        activities = self._compiled.timed + self._compiled.instantaneous
        mask = self.enabled_mask(activities)[row_index]
        return {
            activity.name
            for activity, flag in zip(activities, mask, strict=True)
            if flag
        }

    def scheduled_activity_names(self, row_index: int = 0) -> Set[str]:
        """Timed activities currently scheduled to complete in one row."""
        comp_row = self._comp[row_index]
        return {
            activity.name
            for activity in self._compiled.timed
            if comp_row[activity.index] != _INF
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        stop_predicate: Optional[MarkingPredicate] = None,
    ) -> ExecutionResult:
        """Run a single-row batch (scalar-compatible form only)."""
        if len(self._rows) != 1:
            raise SANExecutionError(
                f"run() is the single-replication interface; this executor "
                f"has {len(self._rows)} rows -- use run_batch()"
            )
        return self.run_batch(until=until, stop_predicate=stop_predicate)[0]

    def run_batch(
        self,
        until: Optional[float] = None,
        stop_predicate: Optional[MarkingPredicate] = None,
    ) -> List[ExecutionResult]:
        """Run every row to termination; results in row order.

        Each row terminates exactly like a scalar replication: stop
        predicate, dead (drained) marking, or time horizon.
        """
        self._stop_predicate = stop_predicate
        compiled = self._compiled
        results: List[Optional[ExecutionResult]] = [None] * len(self._rows)

        # Start-up, mirroring SANExecutor.run: clear the journal, reset
        # rewards, check the stop predicate on the initial marking, then
        # stabilise instantaneous activities -- one matrix chain over
        # every surviving row at once, all candidates considered (the
        # scalar executor's "candidates=None" start-up chain).
        active: List[_Row] = []
        for row in self._rows:
            row.marking.take_changes()
            for reward in row.rewards:
                reward.reset(row.marking, 0.0)
            if stop_predicate is not None and stop_predicate(row.marking):
                row.stopped = True
                results[row.index] = self._finish(row, 0.0)
                continue
            active.append(row)
        if active and compiled.n_inst:
            all_candidates = (1 << compiled.n_inst) - 1
            self._fire_chain_matrix(
                active, [all_candidates] * len(active), None
            )
            still_startup: List[_Row] = []
            for row in active:
                if row.stopped:
                    results[row.index] = self._finish(row, row.now)
                else:
                    still_startup.append(row)
            active = still_startup

        # Initial activation: one vectorised arc mask over all still-active
        # rows, then per-row gate checks and scheduling in declaration
        # order (the scalar executor's seq-assignment order).
        if active:
            row_ids = [row.index for row in active]
            arc_mask = compiled.arc_enabled_mask(
                self._tokens[row_ids], compiled.timed
            )
            for position, row in enumerate(active):
                self._schedule_initial(row, arc_mask[position])

        # Lock-step rounds: one timed event per active row per round,
        # selected with a single vectorised min/argmin over the
        # completion-time matrix, in three phases -- (1) per-row timed
        # completion effects, (2) one matrix-level instantaneous chain
        # across every row that completed, (3) per-row timed refresh.
        comp = self._comp
        seqs = self._seqs
        timed = compiled.timed
        n_inst = compiled.n_inst
        refresh_memo: Dict[
            Tuple[int, FrozenSet[int], FrozenSet[str]],
            Tuple[CompiledActivity, ...],
        ] = {}
        while active:
            indices = [row.index for row in active]
            sub = comp[indices]
            mins = sub.min(axis=1)
            times = mins.tolist()
            columns = sub.argmin(axis=1).tolist()
            tie_counts = (sub == mins[:, None]).sum(axis=1).tolist()

            # Phase 1: advance each row's clock and apply its completion.
            chaining: List[_Row] = []
            chain_changes: List[Tuple[Set[int], Set[str]]] = []
            chain_masks: List[int] = []
            chain_columns: List[int] = []
            for position, row in enumerate(active):
                time = times[position]
                if time == _INF:
                    # Calendar drained: dead marking (the scalar simulator
                    # still advances the clock to the horizon, if any).
                    end = row.now if until is None else max(row.now, until)
                    results[row.index] = self._finish(row, end)
                    continue
                if until is not None and time > until:
                    results[row.index] = self._finish(row, until)
                    continue
                column = columns[position]
                if tie_counts[position] > 1:
                    # Same-instant completions: the scalar heap pops the
                    # lowest sequence number first.
                    comp_row = comp[row.index]
                    tied = np.flatnonzero(comp_row == time)
                    column = int(tied[np.argmin(seqs[row.index][tied])])
                row.now = time
                comp[row.index, column] = _INF
                activity = timed[column]
                if not activity.enabled(row.tokens, row.marking):
                    # Defensive: disabling should have cancelled this.
                    raise SANExecutionError(
                        f"timed activity {activity.name!r} fired while "
                        "disabled"
                    )
                changed_idx, changed_names, bits = self._complete(row, activity)
                if row.stopped:
                    results[row.index] = self._finish(row, row.now)
                    continue
                chaining.append(row)
                chain_changes.append((changed_idx, changed_names))
                chain_masks.append(bits)
                chain_columns.append(column)

            # Phase 2: one matrix chain across every row that completed;
            # each row's changed-set accumulators are extended in place.
            if chaining and n_inst:
                self._fire_chain_matrix(chaining, chain_masks, chain_changes)

            # Phase 3: re-evaluate the affected timed activities per row.
            # The refresh order is a pure function of (fired column,
            # changed sets), and the same few changed sets recur across
            # rows and rounds, so the resolved orders are memoised.
            still_active: List[_Row] = []
            for position, row in enumerate(chaining):
                if row.stopped:
                    results[row.index] = self._finish(row, row.now)
                    continue
                changed_idx, changed_names = chain_changes[position]
                column = chain_columns[position]
                key = (
                    column,
                    frozenset(changed_idx),
                    frozenset(changed_names),
                )
                order = refresh_memo.get(key)
                if order is None:
                    affected = self._affected_timed(
                        changed_idx, changed_names
                    )
                    if column not in affected:
                        affected[column] = timed[column]
                    order = tuple(affected.values())  # repro: ignore[DET001] insertion order is the documented refresh-order contract of _affected_timed
                    refresh_memo[key] = order
                self._refresh_timed(row, order)
                still_active.append(row)
            active = still_active
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Row initialisation
    # ------------------------------------------------------------------
    def _initial_tokens(
        self, initial: Optional[Marking]
    ) -> Tuple[List[int], Dict[str, int]]:
        """One token row (plus undeclared-name overflow) for a marking."""
        compiled = self._compiled
        if initial is None:
            return list(compiled.initial_tokens), {}
        tokens = [0] * compiled.n_places
        overflow: Dict[str, int] = {}
        for name, count in initial.as_dict().items():  # repro: ignore[DET001] row assembly; each name writes an independent slot
            index = compiled.place_index.get(name)
            if index is None:
                overflow[name] = int(count)
            else:
                tokens[index] = int(count)
        return tokens, overflow

    def _schedule_initial(self, row: _Row, arc_mask: np.ndarray) -> None:
        """Schedule the initially-enabled timed activities of one row."""
        marking = row.marking
        comp_row = self._comp[row.index]
        seq_row = self._seqs[row.index]
        for activity in self._compiled.timed:
            if not arc_mask[activity.index]:
                continue
            enabled = True
            for gate in activity.input_gates:
                if not gate.predicate(marking):
                    enabled = False
                    break
            if not enabled:
                continue
            sampler = row.samplers[activity.index]
            if sampler is None:
                sampler = self._make_sampler(row, activity)
                row.samplers[activity.index] = sampler
            comp_row[activity.index] = row.now + sampler(marking)
            seq_row[activity.index] = row.next_seq
            row.next_seq += 1

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def _complete(
        self, row: _Row, activity: CompiledActivity
    ) -> Tuple[Set[int], Set[str], int]:
        """Apply one completion.

        Returns the changed ``(indices, names)`` plus the candidate
        bitmask of the instantaneous activities those changes affect --
        the case's precompiled static mask ORed with the masks of any
        gate-written places.
        """
        marking = row.marking
        case = activity.single_case
        if case is None:
            rng = row.case_rngs.get(activity.name)
            if rng is None:
                rng = row.streams.stream(activity.case_stream)
                row.case_rngs[activity.name] = rng
            chosen = activity.activity.choose_case(marking, rng)
            case = activity.case_lookup[id(chosen)]  # repro: ignore[DET005] identity lookup of the exact Case object choose_case returned; no ordering involved
        tokens = row.tokens
        mirror = row.mirror
        # SAN completion order: input arcs, input gate functions, output
        # arcs of the chosen case, output gate functions.  Arc weights are
        # >= 1, so every arc write changes its place's count -- the case's
        # precompiled ``change_idx`` matches the scalar marking's
        # value-diff journal for the arc writes; gate writes journal
        # through the marking and are merged below.
        for place, weight in activity.input_arcs:
            value = tokens[place] - weight
            if value < 0:
                raise ValueError(
                    f"marking of place "
                    f"{self._compiled.place_names[place]!r} would become "
                    f"negative ({value})"
                )
            tokens[place] = value
            mirror[place] = value
        for gate in activity.input_gates:
            gate.apply(marking)
        for place, weight in case.output_arcs:
            value = tokens[place] + weight
            tokens[place] = value
            mirror[place] = value
        for out_gate in case.output_gates:
            out_gate.apply(marking)
        gate_idx, changed_names = marking.take_changes()
        changed_idx = set(case.change_idx)
        bits = case.candidate_bits
        if gate_idx:
            changed_idx |= gate_idx
            by_place = self._compiled.inst_bits_by_place
            for place in gate_idx:
                bits |= by_place.get(place, 0)
        if changed_names:
            by_unknown = self._compiled.inst_bits_by_unknown
            for name in changed_names:
                bits |= by_unknown.get(name, 0)
        row.completions += 1
        now = row.now
        name = activity.name
        for hook in row.completion_hooks:
            hook(name, marking, now)
        for hook in row.marking_hooks:
            hook(marking, now)
        predicate = self._stop_predicate
        if predicate is not None and predicate(marking):
            row.stopped = True
        return changed_idx, changed_names, bits

    def _fire_chain_matrix(
        self,
        rows: List[_Row],
        masks: List[int],
        changes: Optional[List[Tuple[Set[int], Set[str]]]],
    ) -> None:
        """Fire every row's instantaneous chain, lock-step, until drained.

        ``masks`` holds one candidate bitmask per row (bit ``i`` = firing
        precedence position ``i``; mutated in place); ``changes``
        optionally holds per-row ``(changed_idx, changed_names)``
        accumulator sets that are extended **in place** (``None`` at
        start-up, where the changes feed nothing: initial activation
        re-evaluates everything).

        Each chain round makes *one* vectorised arc-enablement pass over
        every still-chaining row -- a ``tokens >= weight`` comparison on
        the flattened arc tables followed by ``np.logical_and.reduceat``
        per arc segment, packed into one arc bitmask per row -- then walks
        each row's arc-enabled candidates from the lowest set bit upward,
        evaluating gate predicates per row until the first fully-enabled
        candidate fires.  That is exactly the scalar chain's walk order
        and gate-call sequence: the marking is constant during a round's
        walk, so checking arcs up front observes the same state the
        scalar's interleaved walk does.

        Like the per-row chain this replaces, a candidate *verified*
        disabled (by arcs or a gate) is dropped from its row's mask: it
        can only become enabled again through a marking change, and every
        change re-adds the activities indexed under the changed places
        (conservative ones are re-added after every completion) -- so the
        drop never changes which activity fires next.  The vectorised arc
        pass also verifies candidates *beyond* the round's firing point,
        which the scalar walk never reached; dropping those is sound by
        the same argument, since input-arc places are always part of an
        activity's dependency index.  A row leaves the chain when no
        candidate fires (drained) or its stop predicate triggers.
        """
        compiled = self._compiled
        instantaneous = compiled.instantaneous
        tokens_matrix = self._tokens
        flat_places = compiled.inst_flat_places
        flat_weights = compiled.inst_flat_weights
        arc_starts = compiled.inst_arc_starts
        arc_cols = compiled.inst_arc_cols
        n_inst = compiled.n_inst
        have_arcs = flat_places.size > 0
        # Arc-less activities are always arc-enabled; the packed arc
        # verdicts leave their bits zero, so OR their bits back in.
        arcless_bits = ((1 << n_inst) - 1) & ~sum(
            1 << int(column) for column in arc_cols
        )
        stride = (n_inst + 7) // 8
        # Up to 62 instantaneous activities the per-row arc verdicts fit
        # an int64, so one matmul with the column bit weights replaces the
        # packbits round-trip (the wide fallback keeps packbits).
        narrow = n_inst <= 62
        if narrow and have_arcs:
            col_weights = np.asarray(
                [1 << int(column) for column in arc_cols], dtype=np.int64
            )
        complete = self._complete
        positions = [
            position for position in range(len(rows)) if masks[position]
        ]
        for _ in range(MAX_INSTANTANEOUS_CHAIN):
            if not positions:
                return
            if have_arcs:
                row_ids = np.fromiter(
                    (rows[position].index for position in positions),
                    dtype=np.intp,
                    count=len(positions),
                )
                arc_seg = np.logical_and.reduceat(
                    tokens_matrix[np.ix_(row_ids, flat_places)]
                    >= flat_weights,
                    arc_starts,
                    axis=1,
                )
                # Pack each row's per-activity arc verdicts into one
                # bitmask (arc-less activities are always arc-enabled), so
                # the per-row bookkeeping below is pure integer bit
                # arithmetic.
                if narrow:
                    arc_words = (arc_seg @ col_weights).tolist()
                else:
                    arc_ok = np.zeros((len(positions), n_inst), dtype=bool)
                    arc_ok[:, arc_cols] = arc_seg
                    packed = np.packbits(
                        arc_ok, axis=1, bitorder="little"
                    ).tobytes()
            next_positions: List[int] = []
            offset = 0
            for ordinal, position in enumerate(positions):
                viable = masks[position]
                if have_arcs:
                    if narrow:
                        arc_bits = arcless_bits | arc_words[ordinal]
                    else:
                        arc_bits = arcless_bits | int.from_bytes(
                            packed[offset : offset + stride], "little"
                        )
                        offset += stride
                    # Arc-disabled candidates are verified disabled: drop.
                    viable &= arc_bits
                    masks[position] = viable
                if not viable:
                    continue
                row = rows[position]
                marking = row.marking
                fired = None
                while viable:
                    low = viable & -viable
                    candidate = instantaneous[low.bit_length() - 1]
                    enabled = True
                    for gate in candidate.input_gates:
                        if not gate.predicate(marking):
                            enabled = False
                            break
                    if enabled:
                        fired = candidate
                        break
                    # Gate-refused: verified disabled, drop.
                    masks[position] &= ~low
                    viable &= ~low
                if fired is None:
                    continue
                step_idx, step_names, step_bits = complete(row, fired)
                if changes is not None:
                    changed_idx, changed_names = changes[position]
                    changed_idx |= step_idx
                    changed_names |= step_names
                if row.stopped:
                    continue
                masks[position] |= step_bits
                next_positions.append(position)
            positions = next_positions
        raise SANExecutionError(
            f"model {self.model.name!r}: more than {MAX_INSTANTANEOUS_CHAIN} "
            "consecutive instantaneous firings -- unstable (vanishing) loop?"
        )

    # ------------------------------------------------------------------
    # Dependency walks (index-based mirrors of the scalar executor's)
    # ------------------------------------------------------------------
    def _affected_timed(
        self, changed_idx: Set[int], changed_names: Set[str]
    ) -> Dict[int, CompiledActivity]:
        """Timed activities to re-evaluate, in the scalar executor's order.

        Conservative (undeclared-watch) activities first in declaration
        order, then the changed places walked in *name-sorted* order --
        the insertion order of this dict is the refresh (and therefore
        seq-assignment) order, exactly like the scalar ``_affected_timed``.
        """
        compiled = self._compiled
        affected: Dict[int, CompiledActivity] = {
            activity.index: activity for activity in compiled.global_timed
        }
        timed_by_place = compiled.timed_by_place
        if changed_names:
            # Slow path (gate wrote an undeclared place): fall back to the
            # scalar executor's literal name-sorted walk over all changed
            # names, declared and undeclared interleaved.
            names = {
                compiled.place_names[index] for index in changed_idx
            } | changed_names
            place_index = compiled.place_index
            timed_by_unknown = compiled.timed_by_unknown
            for name in sorted(names):
                index = place_index.get(name)
                bucket = (
                    timed_by_place.get(index, ())
                    if index is not None
                    else timed_by_unknown.get(name, ())
                )
                for activity in bucket:
                    affected[activity.index] = activity
            return affected
        sort_rank = compiled.place_sort_rank
        for place in sorted(changed_idx, key=sort_rank.__getitem__):
            for activity in timed_by_place.get(place, ()):
                affected[activity.index] = activity
        return affected

    def _refresh_timed(
        self, row: _Row, affected: Sequence[CompiledActivity]
    ) -> None:
        """Re-evaluate enablement of the affected timed activities.

        ``affected`` is ordered: the refresh (and therefore
        seq-assignment) order is :meth:`_affected_timed`'s insertion
        order, the scalar executor's contract.
        """
        tokens = row.tokens
        marking = row.marking
        comp_row = self._comp[row.index]
        seq_row = self._seqs[row.index]
        samplers = row.samplers
        for activity in affected:
            index = activity.index
            scheduled = comp_row[index] != _INF
            if activity.enabled(tokens, marking):
                if not scheduled:
                    sampler = samplers[index]
                    if sampler is None:
                        sampler = self._make_sampler(row, activity)
                        samplers[index] = sampler
                    comp_row[index] = row.now + sampler(marking)
                    seq_row[index] = row.next_seq
                    row.next_seq += 1
            elif scheduled:
                comp_row[index] = _INF

    # ------------------------------------------------------------------
    # Duration sampling
    # ------------------------------------------------------------------
    def _make_sampler(
        self, row: _Row, activity: CompiledActivity
    ) -> DurationSampler:
        """Per-(row, activity) duration sampler; scalar classification.

        Constants never touch their stream (in the scalar executor the
        stream object is created but never drawn from -- stream derivation
        is a pure function of (seed, name), so not creating it here is
        draw-for-draw identical); batchable fixed distributions share the
        scalar executor's pre-drawing sampler; everything else falls back
        to the generic one-draw-per-call path.
        """
        kind = activity.duration_kind
        if kind == DURATION_CONSTANT:
            shared = self._constant_samplers.get(activity.index)
            if shared is not None:
                return shared
            constant = activity.constant_duration
            if constant < 0:
                raise ValueError(
                    f"activity {activity.name!r}: sampled a negative "
                    f"duration {constant}"
                )

            def constant_sampler(_marking: Marking, _value: float = constant) -> float:
                return _value

            self._constant_samplers[activity.index] = constant_sampler
            return constant_sampler
        rng = row.streams.stream(activity.duration_stream)
        if kind == DURATION_BATCHED:
            return _BatchedDurationSampler(
                activity.distribution, rng, activity.name
            )
        timed_activity = activity.activity

        def generic_sampler(marking: Marking) -> float:
            return timed_activity.sample_duration(marking, rng)  # type: ignore[attr-defined]

        return generic_sampler

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def _finish(self, row: _Row, end_time: float) -> ExecutionResult:
        row.now = end_time
        for reward in row.rewards:
            reward.finalize(row.marking, end_time)
        dead = not row.stopped and not bool(
            np.isfinite(self._comp[row.index]).any()
        )
        return ExecutionResult(
            end_time=end_time,
            stopped_by_predicate=row.stopped,
            dead_marking=dead,
            completions=row.completions,
            final_marking=row.marking.copy(),
        )


__all__ = ["BatchedSANExecutor"]
