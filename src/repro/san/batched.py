"""Lock-step batched execution of SAN replications.

:class:`BatchedSANExecutor` runs ``B`` independent replications of one
model together: the markings live in a ``B x places`` token matrix (one
row per replication), scheduled timed completions in a ``B x timed``
completion-time matrix, and each simulation round advances every active
row by exactly one timed event -- selected with one vectorised
``min``/``argmin`` over the completion matrix instead of ``B`` binary
heaps.  Initial activation evaluates input arcs as one vectorised mask
over the whole matrix (:meth:`CompiledSANModel.arc_enabled_mask`).

Determinism contract (the *batched draw-order contract*)
--------------------------------------------------------
Every row is **bit-identical to the scalar executor** run with the same
seed, at any batch size:

* row ``r`` draws from its own ``RandomStreams(seed_r)`` with the same
  named streams (``san.duration.<activity>`` / ``san.case.<activity>``)
  the scalar executor derives from ``Simulator(seed_r)``, and batching
  never interleaves draws across rows within a stream;
* within a row, activities are walked in the scalar executor's exact
  order (declaration order at start-up; conservative gates first, then
  name-sorted changed places after each completion), so the per-row
  sequence numbers -- which break same-instant completion ties exactly
  like the scalar calendar's -- are assigned identically;
* duration draws use the same pre-drawn per-stream batches
  (:class:`~repro.san.executor._BatchedDurationSampler`), which numpy
  guarantees bit-identical to repeated scalar draws.

Consequently ``B=1`` reproduces the scalar golden traces float-for-float,
and a ``B>1`` batch produces exactly the per-replication results the
scalar replication loop would, merely faster.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.des.random import RandomStreams
from repro.des.simulator import Simulator
from repro.san.compiled import (
    DURATION_BATCHED,
    DURATION_CONSTANT,
    CompiledActivity,
    CompiledSANModel,
    DurationSampler,
    RowMarking,
    compile_model,
)
from repro.san.executor import (
    MAX_INSTANTANEOUS_CHAIN,
    ExecutionResult,
    MarkingPredicate,
    SANExecutionError,
    _BatchedDurationSampler,
)
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.rewards import RewardVariable

_INF = math.inf


class _Row:
    """Per-replication state of one row of the batch."""

    __slots__ = (
        "index",
        "tokens",
        "marking",
        "streams",
        "rewards",
        "samplers",
        "case_rngs",
        "next_seq",
        "now",
        "completions",
        "stopped",
    )

    def __init__(
        self,
        index: int,
        tokens: List[int],
        marking: RowMarking,
        streams: RandomStreams,
        rewards: List[RewardVariable],
        n_timed: int,
    ) -> None:
        self.index = index
        self.tokens = tokens
        self.marking = marking
        self.streams = streams
        self.rewards = rewards
        #: Lazily-built duration samplers, indexed by timed-activity index
        #: (the scalar executor memoises per name; the index is the name).
        self.samplers: List[Optional[DurationSampler]] = [None] * n_timed
        self.case_rngs: Dict[str, np.random.Generator] = {}
        #: Mirrors the scalar calendar's sequence counter: bumped once per
        #: schedule, never on cancellation, so same-instant completions
        #: tie-break exactly like the scalar heap's ``(time, seq)`` order.
        self.next_seq = 0
        self.now = 0.0
        self.completions = 0
        self.stopped = False


class BatchedSANExecutor:
    """Executes ``B`` replications of a SAN model lock-step.

    Two construction forms:

    * **Scalar-compatible** (drop-in for :class:`~repro.san.executor.
      SANExecutor`, used by golden-trace tests and ``executor_class``
      hooks): ``BatchedSANExecutor(model, sim, rewards, initial_marking)``
      runs a single row drawing from ``sim.random``; :meth:`run` returns
      one :class:`ExecutionResult`.
    * **Batched** (:meth:`for_batch`): one row per replication seed, each
      with its own reward variables; :meth:`run_batch` returns the results
      in row order.
    """

    def __init__(
        self,
        model: SANModel,
        sim: Optional[Simulator] = None,
        rewards: Sequence[RewardVariable] = (),
        initial_marking: Optional[Marking] = None,
        *,
        streams: Optional[Sequence[RandomStreams]] = None,
        rewards_per_row: Optional[Sequence[Sequence[RewardVariable]]] = None,
        initial_markings: Optional[Sequence[Optional[Marking]]] = None,
    ) -> None:
        model.validate()
        self.model = model
        self._compiled: CompiledSANModel = compile_model(model)
        if streams is None:
            if sim is None:
                raise TypeError(
                    "BatchedSANExecutor needs a Simulator (scalar-compatible "
                    "form) or explicit per-row streams (for_batch)"
                )
            streams = [sim.random]
            rewards_per_row = [list(rewards)]
            initial_markings = [initial_marking]
        if rewards_per_row is None:
            rewards_per_row = [[] for _ in streams]
        if initial_markings is None:
            initial_markings = [None] * len(streams)
        if not (len(streams) == len(rewards_per_row) == len(initial_markings)):
            raise ValueError(
                "streams, rewards_per_row and initial_markings must have "
                "one entry per row"
            )
        n_timed = self._compiled.n_timed
        self._comp = np.full((len(streams), n_timed), _INF, dtype=np.float64)
        self._seqs = np.zeros((len(streams), n_timed), dtype=np.int64)
        self._rows: List[_Row] = []
        for index, (row_streams, row_rewards, initial) in enumerate(
            zip(streams, rewards_per_row, initial_markings, strict=True)
        ):
            tokens, overflow = self._initial_tokens(initial)
            marking = RowMarking(self._compiled, tokens)
            if overflow:
                marking._overflow.update(overflow)
            self._rows.append(
                _Row(
                    index,
                    tokens,
                    marking,
                    row_streams,
                    list(row_rewards),
                    n_timed,
                )
            )
        self._stop_predicate: Optional[MarkingPredicate] = None

    @classmethod
    def for_batch(
        cls,
        model: SANModel,
        seeds: Sequence[int],
        rewards_per_row: Sequence[Sequence[RewardVariable]],
        initial_markings: Optional[Sequence[Optional[Marking]]] = None,
    ) -> "BatchedSANExecutor":
        """One row per replication seed (``RandomStreams(seed)`` each)."""
        return cls(
            model,
            streams=[RandomStreams(seed) for seed in seeds],
            rewards_per_row=rewards_per_row,
            initial_markings=initial_markings,
        )

    # ------------------------------------------------------------------
    # Introspection (tests and cross-checks)
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        """Number of replication rows in this executor."""
        return len(self._rows)

    @property
    def completions(self) -> int:
        """Completions of row 0 (scalar-compatible introspection)."""
        return self._rows[0].completions

    @property
    def marking(self) -> Marking:
        """Marking view of row 0 (scalar-compatible introspection)."""
        return self._rows[0].marking

    def tokens_matrix(self) -> np.ndarray:
        """The current ``B x places`` token matrix (a snapshot copy)."""
        return np.array([row.tokens for row in self._rows], dtype=np.int64)

    def enabled_mask(
        self, activities: Optional[Sequence[CompiledActivity]] = None
    ) -> np.ndarray:
        """Vectorised full-enablement mask over the current token matrix.

        Defaults to all activities (timed then instantaneous); a
        ``B x len(activities)`` boolean array.
        """
        if activities is None:
            activities = self._compiled.timed + self._compiled.instantaneous
        return self._compiled.enablement_mask(
            self.tokens_matrix(),
            activities,
            [row.marking for row in self._rows],
        )

    def enabled_activity_names(self, row_index: int = 0) -> Set[str]:
        """Names of every enabled activity in one row (mask-derived)."""
        activities = self._compiled.timed + self._compiled.instantaneous
        mask = self.enabled_mask(activities)[row_index]
        return {
            activity.name
            for activity, flag in zip(activities, mask, strict=True)
            if flag
        }

    def scheduled_activity_names(self, row_index: int = 0) -> Set[str]:
        """Timed activities currently scheduled to complete in one row."""
        comp_row = self._comp[row_index]
        return {
            activity.name
            for activity in self._compiled.timed
            if comp_row[activity.index] != _INF
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        stop_predicate: Optional[MarkingPredicate] = None,
    ) -> ExecutionResult:
        """Run a single-row batch (scalar-compatible form only)."""
        if len(self._rows) != 1:
            raise SANExecutionError(
                f"run() is the single-replication interface; this executor "
                f"has {len(self._rows)} rows -- use run_batch()"
            )
        return self.run_batch(until=until, stop_predicate=stop_predicate)[0]

    def run_batch(
        self,
        until: Optional[float] = None,
        stop_predicate: Optional[MarkingPredicate] = None,
    ) -> List[ExecutionResult]:
        """Run every row to termination; results in row order.

        Each row terminates exactly like a scalar replication: stop
        predicate, dead (drained) marking, or time horizon.
        """
        self._stop_predicate = stop_predicate
        compiled = self._compiled
        results: List[Optional[ExecutionResult]] = [None] * len(self._rows)

        # Start-up, mirroring SANExecutor.run: clear the journal, reset
        # rewards, check the stop predicate on the initial marking, then
        # stabilise instantaneous activities.
        active: List[_Row] = []
        for row in self._rows:
            row.marking.take_changes()
            for reward in row.rewards:
                reward.reset(row.marking, 0.0)
            if stop_predicate is not None and stop_predicate(row.marking):
                row.stopped = True
                results[row.index] = self._finish(row, 0.0)
                continue
            self._fire_chain(row, None)
            if row.stopped:
                results[row.index] = self._finish(row, row.now)
                continue
            active.append(row)

        # Initial activation: one vectorised arc mask over all still-active
        # rows, then per-row gate checks and scheduling in declaration
        # order (the scalar executor's seq-assignment order).
        if active:
            tokens_matrix = np.array(
                [row.tokens for row in active], dtype=np.int64
            )
            arc_mask = compiled.arc_enabled_mask(tokens_matrix, compiled.timed)
            for position, row in enumerate(active):
                self._schedule_initial(row, arc_mask[position])

        # Lock-step rounds: one timed event per active row per round,
        # selected with a single vectorised min/argmin over the
        # completion-time matrix.
        comp = self._comp
        seqs = self._seqs
        while active:
            indices = [row.index for row in active]
            sub = comp[indices]
            times = sub.min(axis=1)
            columns = sub.argmin(axis=1)
            tie_counts = (sub == times[:, None]).sum(axis=1)
            still_active: List[_Row] = []
            for position, row in enumerate(active):
                time = float(times[position])
                if time == _INF:
                    # Calendar drained: dead marking (the scalar simulator
                    # still advances the clock to the horizon, if any).
                    end = row.now if until is None else max(row.now, until)
                    results[row.index] = self._finish(row, end)
                    continue
                if until is not None and time > until:
                    results[row.index] = self._finish(row, until)
                    continue
                column = int(columns[position])
                if tie_counts[position] > 1:
                    # Same-instant completions: the scalar heap pops the
                    # lowest sequence number first.
                    comp_row = comp[row.index]
                    tied = np.flatnonzero(comp_row == time)
                    column = int(tied[np.argmin(seqs[row.index][tied])])
                row.now = time
                self._fire_timed(row, column)
                if row.stopped:
                    results[row.index] = self._finish(row, row.now)
                else:
                    still_active.append(row)
            active = still_active
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Row initialisation
    # ------------------------------------------------------------------
    def _initial_tokens(
        self, initial: Optional[Marking]
    ) -> Tuple[List[int], Dict[str, int]]:
        """One token row (plus undeclared-name overflow) for a marking."""
        compiled = self._compiled
        if initial is None:
            return list(compiled.initial_tokens), {}
        tokens = [0] * compiled.n_places
        overflow: Dict[str, int] = {}
        for name, count in initial.as_dict().items():  # repro: ignore[DET001] row assembly; each name writes an independent slot
            index = compiled.place_index.get(name)
            if index is None:
                overflow[name] = int(count)
            else:
                tokens[index] = int(count)
        return tokens, overflow

    def _schedule_initial(self, row: _Row, arc_mask: np.ndarray) -> None:
        """Schedule the initially-enabled timed activities of one row."""
        marking = row.marking
        comp_row = self._comp[row.index]
        seq_row = self._seqs[row.index]
        for activity in self._compiled.timed:
            if not arc_mask[activity.index]:
                continue
            enabled = True
            for gate in activity.input_gates:
                if not gate.predicate(marking):
                    enabled = False
                    break
            if not enabled:
                continue
            sampler = row.samplers[activity.index]
            if sampler is None:
                sampler = self._make_sampler(row, activity)
                row.samplers[activity.index] = sampler
            comp_row[activity.index] = row.now + sampler(marking)
            seq_row[activity.index] = row.next_seq
            row.next_seq += 1

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def _fire_timed(self, row: _Row, column: int) -> None:
        """Complete the scheduled timed activity in ``column`` of a row."""
        self._comp[row.index][column] = _INF
        activity = self._compiled.timed[column]
        if not activity.enabled(row.tokens, row.marking):
            # Defensive: disabling should have cancelled the completion.
            raise SANExecutionError(
                f"timed activity {activity.name!r} fired while disabled"
            )
        changed_idx, changed_names = self._complete(row, activity)
        if row.stopped:
            return
        chain_idx, chain_names = self._fire_chain(
            row, self._affected_instantaneous(changed_idx, changed_names)
        )
        changed_idx |= chain_idx
        changed_names |= chain_names
        if row.stopped:
            return
        affected = self._affected_timed(changed_idx, changed_names)
        if column not in affected:
            affected[column] = activity
        self._refresh_timed(row, affected)

    def _complete(
        self, row: _Row, activity: CompiledActivity
    ) -> Tuple[Set[int], Set[str]]:
        """Apply one completion; returns the changed (indices, names)."""
        marking = row.marking
        case = activity.single_case
        if case is None:
            rng = row.case_rngs.get(activity.name)
            if rng is None:
                rng = row.streams.stream(activity.case_stream)
                row.case_rngs[activity.name] = rng
            chosen = activity.activity.choose_case(marking, rng)
            case = activity.case_lookup[id(chosen)]  # repro: ignore[DET005] identity lookup of the exact Case object choose_case returned; no ordering involved
        tokens = row.tokens
        place_names = self._compiled.place_names
        changed_idx: Set[int] = set()
        # SAN completion order: input arcs, input gate functions, output
        # arcs of the chosen case, output gate functions.  Arc weights are
        # >= 1, so every arc write changes its place's count -- journalling
        # unconditionally matches the scalar marking's value-diff journal.
        for place, weight in activity.input_arcs:
            value = tokens[place] - weight
            if value < 0:
                raise ValueError(
                    f"marking of place {place_names[place]!r} would become "
                    f"negative ({value})"
                )
            tokens[place] = value
            changed_idx.add(place)
        for gate in activity.input_gates:
            gate.apply(marking)
        for place, weight in case.output_arcs:
            tokens[place] += weight
            changed_idx.add(place)
        for out_gate in case.output_gates:
            out_gate.apply(marking)
        gate_idx, changed_names = marking.take_changes()
        changed_idx |= gate_idx
        row.completions += 1
        now = row.now
        name = activity.name
        for reward in row.rewards:
            reward.on_activity_completion(name, marking, now)
            reward.on_marking_change(marking, now)
        predicate = self._stop_predicate
        if predicate is not None and predicate(marking):
            row.stopped = True
        return changed_idx, changed_names

    def _fire_chain(
        self, row: _Row, candidates: Optional[Set[int]]
    ) -> Tuple[Set[int], Set[str]]:
        """Fire enabled instantaneous activities until none remains.

        ``candidates`` holds firing-precedence positions (``None`` means
        "consider all", used at start-up); each round fires the
        lowest-positioned enabled candidate, exactly like the scalar
        executor's rank/definition-order chain.

        Unlike the scalar chain, a candidate found *disabled* is dropped
        from the set: it can only become enabled again through a marking
        change, and every change re-adds the activities indexed under the
        changed places (conservative ones are re-added after every
        completion) -- so the drop never changes which activity fires
        next, it just stops re-checking stale candidates every round.
        """
        compiled = self._compiled
        instantaneous = compiled.instantaneous
        if candidates is None:
            candidates = set(range(len(instantaneous)))
        tokens = row.tokens
        marking = row.marking
        changed_idx: Set[int] = set()
        changed_names: Set[str] = set()
        for _ in range(MAX_INSTANTANEOUS_CHAIN):
            if not candidates:
                return changed_idx, changed_names
            fired = None
            for position in sorted(candidates):
                candidate = instantaneous[position]
                enabled = True
                for place, weight in candidate.input_arcs:
                    if tokens[place] < weight:
                        enabled = False
                        break
                if enabled:
                    for gate in candidate.input_gates:
                        if not gate.predicate(marking):
                            enabled = False
                            break
                if enabled:
                    fired = candidate
                    break
                candidates.discard(position)
            if fired is None:
                return changed_idx, changed_names
            step_idx, step_names = self._complete(row, fired)
            changed_idx |= step_idx
            changed_names |= step_names
            if row.stopped:
                return changed_idx, changed_names
            candidates |= self._affected_instantaneous(step_idx, step_names)
        raise SANExecutionError(
            f"model {self.model.name!r}: more than {MAX_INSTANTANEOUS_CHAIN} "
            "consecutive instantaneous firings -- unstable (vanishing) loop?"
        )

    # ------------------------------------------------------------------
    # Dependency walks (index-based mirrors of the scalar executor's)
    # ------------------------------------------------------------------
    def _affected_instantaneous(
        self, changed_idx: Set[int], changed_names: Set[str]
    ) -> Set[int]:
        compiled = self._compiled
        positions = set(compiled.global_inst_indices)
        inst_by_place = compiled.inst_by_place
        for place in changed_idx:
            for activity in inst_by_place.get(place, ()):
                positions.add(activity.index)
        if changed_names:
            inst_by_unknown = compiled.inst_by_unknown
            for name in changed_names:
                for activity in inst_by_unknown.get(name, ()):
                    positions.add(activity.index)
        return positions

    def _affected_timed(
        self, changed_idx: Set[int], changed_names: Set[str]
    ) -> Dict[int, CompiledActivity]:
        """Timed activities to re-evaluate, in the scalar executor's order.

        Conservative (undeclared-watch) activities first in declaration
        order, then the changed places walked in *name-sorted* order --
        the insertion order of this dict is the refresh (and therefore
        seq-assignment) order, exactly like the scalar ``_affected_timed``.
        """
        compiled = self._compiled
        affected: Dict[int, CompiledActivity] = {
            activity.index: activity for activity in compiled.global_timed
        }
        timed_by_place = compiled.timed_by_place
        if changed_names:
            # Slow path (gate wrote an undeclared place): fall back to the
            # scalar executor's literal name-sorted walk over all changed
            # names, declared and undeclared interleaved.
            names = {
                compiled.place_names[index] for index in changed_idx
            } | changed_names
            place_index = compiled.place_index
            timed_by_unknown = compiled.timed_by_unknown
            for name in sorted(names):
                index = place_index.get(name)
                bucket = (
                    timed_by_place.get(index, ())
                    if index is not None
                    else timed_by_unknown.get(name, ())
                )
                for activity in bucket:
                    affected[activity.index] = activity
            return affected
        sort_rank = compiled.place_sort_rank
        for place in sorted(changed_idx, key=sort_rank.__getitem__):
            for activity in timed_by_place.get(place, ()):
                affected[activity.index] = activity
        return affected

    def _refresh_timed(
        self, row: _Row, affected: Dict[int, CompiledActivity]
    ) -> None:
        """Re-evaluate enablement of the affected timed activities."""
        tokens = row.tokens
        marking = row.marking
        comp_row = self._comp[row.index]
        seq_row = self._seqs[row.index]
        samplers = row.samplers
        for activity in affected.values():  # repro: ignore[DET001] insertion order is the documented refresh-order contract of _affected_timed
            index = activity.index
            scheduled = comp_row[index] != _INF
            if activity.enabled(tokens, marking):
                if not scheduled:
                    sampler = samplers[index]
                    if sampler is None:
                        sampler = self._make_sampler(row, activity)
                        samplers[index] = sampler
                    comp_row[index] = row.now + sampler(marking)
                    seq_row[index] = row.next_seq
                    row.next_seq += 1
            elif scheduled:
                comp_row[index] = _INF

    # ------------------------------------------------------------------
    # Duration sampling
    # ------------------------------------------------------------------
    def _make_sampler(
        self, row: _Row, activity: CompiledActivity
    ) -> DurationSampler:
        """Per-(row, activity) duration sampler; scalar classification.

        Constants never touch their stream (in the scalar executor the
        stream object is created but never drawn from -- stream derivation
        is a pure function of (seed, name), so not creating it here is
        draw-for-draw identical); batchable fixed distributions share the
        scalar executor's pre-drawing sampler; everything else falls back
        to the generic one-draw-per-call path.
        """
        kind = activity.duration_kind
        if kind == DURATION_CONSTANT:
            constant = activity.constant_duration
            if constant < 0:
                raise ValueError(
                    f"activity {activity.name!r}: sampled a negative "
                    f"duration {constant}"
                )

            def constant_sampler(_marking: Marking, _value: float = constant) -> float:
                return _value

            return constant_sampler
        rng = row.streams.stream(activity.duration_stream)
        if kind == DURATION_BATCHED:
            return _BatchedDurationSampler(
                activity.distribution, rng, activity.name
            )
        timed_activity = activity.activity

        def generic_sampler(marking: Marking) -> float:
            return timed_activity.sample_duration(marking, rng)  # type: ignore[attr-defined]

        return generic_sampler

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def _finish(self, row: _Row, end_time: float) -> ExecutionResult:
        row.now = end_time
        for reward in row.rewards:
            reward.finalize(row.marking, end_time)
        dead = not row.stopped and not bool(
            np.isfinite(self._comp[row.index]).any()
        )
        return ExecutionResult(
            end_time=end_time,
            stopped_by_predicate=row.stopped,
            dead_marking=dead,
            completions=row.completions,
            final_marking=row.marking.copy(),
        )


__all__ = ["BatchedSANExecutor"]
