"""Reward variables.

UltraSAN evaluates *performance variables* defined as reward structures on
the model.  The paper's key variable is the consensus latency: the time
from the start of the execution until the first process decides -- a
first-passage-time reward.  This module provides that plus the other two
classical kinds (instant-of-time and interval-of-time rewards) and an
activity-completion counter.

A reward variable observes the executor: it is notified of every marking
change and every activity completion, and produces a scalar value at the
end of a replication.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.san.marking import Marking

MarkingPredicate = Callable[[Marking], bool]
MarkingRate = Callable[[Marking], float]


class RewardVariable:
    """Base class: observers notified by the :class:`~repro.san.executor.SANExecutor`."""

    name: str = "reward"

    def reset(self, marking: Marking, time: float) -> None:
        """Called at the start of a replication with the initial marking."""

    def on_marking_change(self, marking: Marking, time: float) -> None:
        """Called after every activity completion (marking already updated)."""

    def on_activity_completion(
        self, activity_name: str, marking: Marking, time: float
    ) -> None:
        """Called after an activity completes (before ``on_marking_change``)."""

    def finalize(self, marking: Marking, time: float) -> None:
        """Called when the replication ends (end time reached or model dead)."""

    def value(self) -> float:
        """The scalar value of this reward for the finished replication."""
        raise NotImplementedError


class FirstPassageTime(RewardVariable):
    """Time at which a marking predicate first becomes true.

    This is the paper's latency variable: the predicate is "some process has
    decided".  If the predicate never becomes true during the replication
    the value is ``nan`` (and :attr:`reached` is ``False``).
    """

    def __init__(self, predicate: MarkingPredicate, name: str = "first_passage") -> None:
        self.name = name
        self._predicate = predicate
        self._start = 0.0
        self._hit_time: Optional[float] = None

    @property
    def predicate(self) -> MarkingPredicate:
        """The watched predicate (read by the analytic solver)."""
        return self._predicate

    @property
    def reached(self) -> bool:
        """``True`` if the predicate became true during the replication."""
        return self._hit_time is not None

    def reset(self, marking: Marking, time: float) -> None:
        self._start = time
        self._hit_time = None
        if self._predicate(marking):
            self._hit_time = time

    def on_marking_change(self, marking: Marking, time: float) -> None:
        if self._hit_time is None and self._predicate(marking):
            self._hit_time = time

    def value(self) -> float:
        if self._hit_time is None:
            return math.nan
        return self._hit_time - self._start


class InstantOfTime(RewardVariable):
    """The value of a marking function at a fixed instant.

    The executor evaluates the function at the first marking whose time is
    >= ``at_time`` (or at the final marking if the replication ends first).
    """

    def __init__(
        self, at_time: float, function: MarkingRate, name: str = "instant_of_time"
    ) -> None:
        self.name = name
        self.at_time = float(at_time)
        self._function = function
        self._value: Optional[float] = None
        self._last_marking: Optional[Marking] = None

    @property
    def function(self) -> MarkingRate:
        """The marking function (read by the analytic solver)."""
        return self._function

    def reset(self, marking: Marking, time: float) -> None:
        self._value = None
        self._last_marking = marking.copy()
        if time >= self.at_time:
            self._value = float(self._function(marking))

    def on_marking_change(self, marking: Marking, time: float) -> None:
        if self._value is None and time >= self.at_time:
            # The marking *before* this change was in force at ``at_time``.
            self._value = float(self._function(self._last_marking))
        self._last_marking = marking.copy()

    def finalize(self, marking: Marking, time: float) -> None:
        if self._value is None:
            self._value = float(self._function(marking))

    def value(self) -> float:
        return math.nan if self._value is None else self._value


class IntervalOfTime(RewardVariable):
    """Integral of a marking-dependent rate over the replication.

    With ``normalize=True`` the integral is divided by the elapsed time,
    yielding a time-average (e.g. the fraction of time a failure detector
    spends in the *suspect* state, which is how the FD quality-of-service is
    expressed as a reward).
    """

    def __init__(
        self,
        rate: MarkingRate,
        normalize: bool = False,
        name: str = "interval_of_time",
    ) -> None:
        self.name = name
        self._rate = rate
        self._normalize = normalize
        self._accumulated = 0.0
        self._start = 0.0
        self._last_time = 0.0
        self._last_rate = 0.0

    @property
    def rate(self) -> MarkingRate:
        """The integrated rate function (read by the analytic solver)."""
        return self._rate

    @property
    def normalize(self) -> bool:
        """``True`` if the integral is divided by the elapsed time."""
        return self._normalize

    def reset(self, marking: Marking, time: float) -> None:
        self._accumulated = 0.0
        self._start = time
        self._last_time = time
        self._last_rate = float(self._rate(marking))

    def on_marking_change(self, marking: Marking, time: float) -> None:
        self._accumulated += self._last_rate * (time - self._last_time)
        self._last_time = time
        self._last_rate = float(self._rate(marking))

    def finalize(self, marking: Marking, time: float) -> None:
        self._accumulated += self._last_rate * (time - self._last_time)
        self._last_time = time

    def value(self) -> float:
        if not self._normalize:
            return self._accumulated
        elapsed = self._last_time - self._start
        if elapsed <= 0:
            return 0.0
        return self._accumulated / elapsed


class ActivityCounter(RewardVariable):
    """Counts completions of a set of activities (impulse reward)."""

    def __init__(self, activity_names: set[str] | None = None, name: str = "completions") -> None:
        self.name = name
        self._activity_names = set(activity_names) if activity_names else None
        self._count = 0

    @property
    def activity_names(self) -> Optional[frozenset[str]]:
        """The counted activities (``None`` = all; read by the analytic solver)."""
        return frozenset(self._activity_names) if self._activity_names else None

    def reset(self, marking: Marking, time: float) -> None:
        self._count = 0

    def on_activity_completion(
        self, activity_name: str, marking: Marking, time: float
    ) -> None:
        if self._activity_names is None or activity_name in self._activity_names:
            self._count += 1

    def value(self) -> float:
        return float(self._count)
