"""Input and output gates.

Gates are what make SANs more expressive than plain stochastic Petri nets
(§3.1 of the paper):

* an **input gate** has an *enabling predicate* over the marking and an
  *input function* that transforms the marking when the connected activity
  completes;
* an **output gate** has only an *output function*, applied after the
  chosen case's output arcs.

In this framework the predicate and functions are ordinary Python callables
over a :class:`~repro.san.marking.Marking`, which is precisely how UltraSAN
gates are written (as C fragments over the marking variables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.san.marking import Marking, PlaceRef

Predicate = Callable[[Marking], bool]
MarkingFunction = Callable[[Marking], None]


def _identity(_: Marking) -> None:
    """The default gate function: leave the marking unchanged."""


@dataclass(frozen=True)
class InputGate:
    """An input gate: enabling predicate plus marking transformation.

    Parameters
    ----------
    name:
        Gate name (used in error messages and model summaries).
    predicate:
        Callable returning ``True`` when the gate enables its activity.
    function:
        Marking transformation applied when the activity completes.  It runs
        *before* the chosen case's output arcs and gates, matching SAN
        completion rules.
    watched_places:
        The places the predicate reads.  Declaring them lets the executor
        re-evaluate the gate only when one of those places changes; a gate
        with an empty watch list is conservatively re-evaluated after every
        completion.
    """

    name: str
    predicate: Predicate
    function: MarkingFunction = field(default=_identity)
    watched_places: tuple[str, ...] = ()

    def enabled(self, marking: Marking) -> bool:
        """Evaluate the enabling predicate."""
        return bool(self.predicate(marking))

    def apply(self, marking: Marking) -> None:
        """Apply the input function to ``marking``."""
        self.function(marking)

    def renamed(self, prefix: str, rename: Callable[[str], str]) -> "InputGate":
        """A renamed copy for model replication.

        The predicate and function are wrapped so that they see a *view* of
        the marking in which unprefixed place names resolve to the prefixed
        ones.  This keeps hand-written gates reusable across replicas.
        """
        return InputGate(
            name=f"{prefix}{self.name}",
            predicate=_wrap_predicate(self.predicate, rename),
            function=_wrap_function(self.function, rename),
            watched_places=tuple(rename(place) for place in self.watched_places),
        )


@dataclass(frozen=True)
class OutputGate:
    """An output gate: a marking transformation applied on completion."""

    name: str
    function: MarkingFunction

    def apply(self, marking: Marking) -> None:
        """Apply the output function to ``marking``."""
        self.function(marking)

    def renamed(self, prefix: str, rename: Callable[[str], str]) -> "OutputGate":
        """A renamed copy for model replication (see :meth:`InputGate.renamed`)."""
        return OutputGate(
            name=f"{prefix}{self.name}",
            function=_wrap_function(self.function, rename),
        )


class _MarkingView:
    """A thin proxy translating place names through a rename function."""

    __slots__ = ("_marking", "_rename")

    def __init__(self, marking: Marking, rename: Callable[[str], str]) -> None:
        self._marking = marking
        self._rename = rename

    def __getitem__(self, place: PlaceRef) -> int:
        return self._marking[self._translate(place)]

    def __setitem__(self, place: PlaceRef, count: int) -> None:
        self._marking[self._translate(place)] = count

    def add(self, place: PlaceRef, count: int = 1) -> None:
        self._marking.add(self._translate(place), count)

    def remove(self, place: PlaceRef, count: int = 1) -> None:
        self._marking.remove(self._translate(place), count)

    def has(self, place: PlaceRef, count: int = 1) -> bool:
        return self._marking.has(self._translate(place), count)

    def _translate(self, place: PlaceRef) -> str:
        name = place.name if hasattr(place, "name") else place
        return self._rename(name)


def _wrap_predicate(
    predicate: Predicate, rename: Optional[Callable[[str], str]]
) -> Predicate:
    if rename is None:
        return predicate

    def wrapped(marking: Marking) -> bool:
        return predicate(_MarkingView(marking, rename))  # type: ignore[arg-type]

    return wrapped


def _wrap_function(
    function: MarkingFunction, rename: Optional[Callable[[str], str]]
) -> MarkingFunction:
    if rename is None:
        return function

    def wrapped(marking: Marking) -> None:
        function(_MarkingView(marking, rename))  # type: ignore[arg-type]

    return wrapped
