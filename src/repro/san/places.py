"""SAN places.

A place holds a non-negative integer marking.  Places are identified by
name; model composition (Join / Rep) shares places across submodels by
matching names, exactly like UltraSAN's "common places".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Place:
    """A SAN place.

    Parameters
    ----------
    name:
        Unique name within a model.  Composition operators share places by
        name, so choose globally meaningful names (e.g. ``"network"``) for
        places meant to be shared and prefixed names (e.g. ``"p3.cpu"``) for
        per-submodel places.
    initial:
        Initial marking (number of tokens), non-negative.
    """

    name: str
    initial: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Place name must be non-empty")
        if self.initial < 0:
            raise ValueError(
                f"Place {self.name!r} initial marking must be >= 0, got {self.initial}"
            )

    def renamed(self, prefix: str) -> "Place":
        """A copy of this place with ``prefix`` prepended to its name."""
        return Place(name=f"{prefix}{self.name}", initial=self.initial)
