"""Simulative solution of SAN models.

The paper solves its models with UltraSAN's *simulative* solvers because the
activity-time distributions are not exponential (§5).  This module provides
the equivalent: a terminating (transient) simulation repeated over many
independent replications, reporting the mean of each reward variable with a
Student-t confidence interval, and optionally running until a relative
precision target is met.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.des.simulator import Simulator
from repro.san.executor import SANExecutor
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.rewards import RewardVariable
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import ConfidenceInterval, confidence_interval

ModelFactory = Callable[[], SANModel]
RewardFactory = Callable[[], Sequence[RewardVariable]]
MarkingPredicate = Callable[[Marking], bool]


@dataclass
class ReplicationResult:
    """Reward values observed in a single replication."""

    replication: int
    end_time: float
    stopped_by_predicate: bool
    rewards: Dict[str, float]


@dataclass
class SolverResult:
    """Aggregate result of a simulative solution."""

    replications: List[ReplicationResult] = field(default_factory=list)
    confidence: float = 0.90

    def values(self, reward_name: str) -> List[float]:
        """All finite values of the named reward across replications."""
        values = [
            rep.rewards[reward_name]
            for rep in self.replications
            if reward_name in rep.rewards and not math.isnan(rep.rewards[reward_name])
        ]
        return values

    def mean(self, reward_name: str) -> float:
        """Mean of the named reward."""
        values = self.values(reward_name)
        if not values:
            return math.nan
        return sum(values) / len(values)

    def interval(self, reward_name: str) -> ConfidenceInterval:
        """Confidence interval of the named reward's mean."""
        return confidence_interval(self.values(reward_name), self.confidence)

    def cdf(self, reward_name: str) -> EmpiricalCDF:
        """Empirical CDF of the named reward across replications."""
        return EmpiricalCDF(self.values(reward_name))

    @property
    def n(self) -> int:
        """Number of replications run."""
        return len(self.replications)


class SimulativeSolver:
    """Terminating simulation of a SAN over independent replications.

    Parameters
    ----------
    model_factory:
        Callable building a fresh model for each replication.  (Models are
        cheap to build and rebuilding avoids any state leakage between
        replications; a prebuilt model may also be passed via a lambda if it
        is genuinely stateless.)
    reward_factory:
        Callable building fresh reward variables for each replication.
    stop_predicate:
        Marking predicate that terminates a replication (e.g. "a process has
        decided").
    max_time:
        Time horizon per replication (safety bound for runs in which the
        predicate never becomes true).
    seed:
        Master seed; replication *i* uses an independent stream derived from
        it, so results are reproducible and replications are independent.
    confidence:
        Confidence level for the reported intervals (paper: 0.90).
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        reward_factory: RewardFactory,
        stop_predicate: Optional[MarkingPredicate] = None,
        max_time: float = 1_000.0,
        seed: Optional[int] = 0,
        confidence: float = 0.90,
        initial_marking_factory: Optional[Callable[[SANModel], Marking]] = None,
    ) -> None:
        self.model_factory = model_factory
        self.reward_factory = reward_factory
        self.stop_predicate = stop_predicate
        self.max_time = max_time
        self.seed = seed if seed is not None else 0
        self.confidence = confidence
        self.initial_marking_factory = initial_marking_factory

    # ------------------------------------------------------------------
    def run_replication(self, index: int) -> ReplicationResult:
        """Run a single replication with its own derived seed."""
        sim = Simulator(seed=self._replication_seed(index))
        model = self.model_factory()
        rewards = list(self.reward_factory())
        initial = (
            self.initial_marking_factory(model)
            if self.initial_marking_factory is not None
            else None
        )
        executor = SANExecutor(model, sim, rewards, initial_marking=initial)
        outcome = executor.run(until=self.max_time, stop_predicate=self.stop_predicate)
        return ReplicationResult(
            replication=index,
            end_time=outcome.end_time,
            stopped_by_predicate=outcome.stopped_by_predicate,
            rewards={reward.name: reward.value() for reward in rewards},
        )

    def solve(
        self,
        replications: int = 100,
        target_reward: Optional[str] = None,
        relative_precision: Optional[float] = None,
        min_replications: int = 20,
        max_replications: int = 10_000,
    ) -> SolverResult:
        """Run replications and aggregate the rewards.

        Parameters
        ----------
        replications:
            Number of replications when no precision target is given.
        target_reward, relative_precision:
            If both are given, keep running (between ``min_replications`` and
            ``max_replications``) until the confidence-interval half-width of
            ``target_reward`` is below ``relative_precision`` times its mean.
        """
        result = SolverResult(confidence=self.confidence)
        if target_reward is None or relative_precision is None:
            for index in range(replications):
                result.replications.append(self.run_replication(index))
            return result

        index = 0
        while index < max_replications:
            result.replications.append(self.run_replication(index))
            index += 1
            if index < min_replications:
                continue
            values = result.values(target_reward)
            if len(values) < 2:
                continue
            interval = confidence_interval(values, self.confidence)
            if interval.mean == 0:
                continue
            if interval.half_width / abs(interval.mean) <= relative_precision:
                break
        return result

    # ------------------------------------------------------------------
    def _replication_seed(self, index: int) -> int:
        return (self.seed * 1_000_003 + index * 7_919 + 1) % (2**63)
