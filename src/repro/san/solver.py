"""Simulative solution of SAN models.

The paper solves its models with UltraSAN's *simulative* solvers because the
activity-time distributions are not exponential (§5).  This module provides
the equivalent: a terminating (transient) simulation repeated over many
independent replications, reporting the mean of each reward variable with a
Student-t confidence interval, and optionally running until a relative
precision target is met.

Determinism contract
--------------------
Every replication is a pure function of ``(seed, replication index)``:
replication seeds come from :meth:`SimulativeSolver.point_seed`, and all
randomness inside a replication flows through the simulator's *named*
random streams, whose draw order is fixed by the model structure.  Any
executor (scalar :class:`~repro.san.executor.SANExecutor`, lock-step
:class:`~repro.san.batched.BatchedSANExecutor`) must preserve that
per-replication stream/draw order -- the strategy knob changes
throughput, never results.  Observers attached through the
reward-variable protocol (including the opt-in activity trace) must not
draw from any stream.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:
    from concurrent.futures import ProcessPoolExecutor

from repro.des.simulator import Simulator
from repro.san import execution
from repro.san.batched import BatchedSANExecutor
from repro.san.compiled import DURATION_GENERIC, compile_model
from repro.san.executor import SANExecutor
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.rewards import RewardVariable
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import ConfidenceInterval, confidence_interval

ModelFactory = Callable[[], SANModel]
RewardFactory = Callable[[], Sequence[RewardVariable]]
MarkingPredicate = Callable[[Marking], bool]

#: Cell budget of :func:`auto_batch_size`.  The lock-step executor's
#: per-round working set is roughly ``batch x (places + activities)``
#: matrix cells (the token matrix, enablement masks and pre-drawn
#: duration columns); sizing batches to this budget (~1 MiB of int64
#: cells) keeps that working set cache-resident without starving the
#: vectorised rounds of rows.
AUTO_BATCH_CELL_BUDGET = 131_072

#: Bounds of :func:`auto_batch_size`: below the floor the vectorised
#: bookkeeping stops amortising, above the ceiling per-row divergence
#: (finished rows idling in the lock-step batch) dominates.
MIN_AUTO_BATCH_SIZE = 32
MAX_AUTO_BATCH_SIZE = 1_024


def auto_batch_size(model: SANModel) -> int:
    """Replications per lock-step batch, from the compiled model's size.

    This is the resolution of ``batch_size="auto"``: a pure function of
    the model *structure* (places x activities, duration-kind mix), so
    the chosen size -- like any explicit size -- never changes results,
    only throughput.  Small models get wide batches (more rows amortise
    each vectorised round), large models get narrower ones (each row
    already carries many matrix cells per round).  Models dominated by
    generic-duration activities are halved: their draws happen per
    completion on the scalar path rather than in pre-drawn batch
    columns, so extra rows amortise less there.
    """
    compiled = compile_model(model)
    cells = (
        compiled.n_places + len(compiled.timed) + len(compiled.instantaneous)
    )
    size = AUTO_BATCH_CELL_BUDGET // max(1, cells)
    timed = compiled.timed
    generic = sum(
        1 for activity in timed if activity.duration_kind == DURATION_GENERIC
    )
    if timed and 2 * generic >= len(timed):
        size //= 2
    return max(MIN_AUTO_BATCH_SIZE, min(MAX_AUTO_BATCH_SIZE, size))


@dataclass(frozen=True)
class ActivityCompletion:
    """One activity completion of a traced replication."""

    time: float
    activity: str


class _ActivityTraceRecorder(RewardVariable):
    """Reward-variable observer recording every activity completion.

    Riding the executor's reward-notification protocol keeps tracing out
    of the execution hot path entirely: the recorder draws nothing and
    observes the same completion stream on any executor, so attaching it
    cannot perturb results.
    """

    name = "_activity_trace"

    def __init__(self) -> None:
        self.completions: List[ActivityCompletion] = []

    def on_activity_completion(
        self, activity_name: str, marking: Marking, time: float
    ) -> None:
        self.completions.append(ActivityCompletion(time=time, activity=activity_name))

    def value(self) -> float:
        return float(len(self.completions))


@dataclass
class ReplicationResult:
    """Reward values observed in a single replication.

    ``trace`` is ``None`` unless the solver was built with
    ``collect_traces=True``, in which case it lists every activity
    completion of the replication in completion order.
    """

    replication: int
    end_time: float
    stopped_by_predicate: bool
    rewards: Dict[str, float]
    trace: Optional[List[ActivityCompletion]] = None


@dataclass
class SolverResult:
    """Aggregate result of a simulative solution.

    Attributes
    ----------
    replications:
        Per-replication reward observations, in replication order.
    confidence:
        Confidence level of the reported intervals.
    target_reward:
        The reward the relative-precision loop targeted, if one ran.
    precision_achieved:
        ``True``/``False`` once a precision loop ran (``None`` for plain
        fixed-count solutions).  ``False`` means the loop gave up: either
        ``max_replications`` was reached or the target reward's mean was
        (still) zero, making *relative* precision undefined -- see
        :attr:`precision_note`.
    precision_note:
        Human-readable reason when ``precision_achieved`` is ``False``.
    """

    replications: List[ReplicationResult] = field(default_factory=list)
    confidence: float = 0.90
    target_reward: Optional[str] = None
    precision_achieved: Optional[bool] = None
    precision_note: Optional[str] = None

    def values(self, reward_name: str) -> List[float]:
        """All finite values of the named reward across replications."""
        values = [
            rep.rewards[reward_name]
            for rep in self.replications
            if reward_name in rep.rewards and not math.isnan(rep.rewards[reward_name])
        ]
        return values

    def sample_size(self, reward_name: str) -> int:
        """Number of NaN-filtered observations backing the named reward.

        This is the ``n`` the means and intervals are computed from; it can
        be smaller than :attr:`n` when some replications never produced the
        reward (e.g. undecided consensus executions).
        """
        return len(self.values(reward_name))

    def nan_count(self, reward_name: str) -> int:
        """Number of replications whose named reward was NaN (filtered out)."""
        return sum(
            1
            for rep in self.replications
            if reward_name in rep.rewards and math.isnan(rep.rewards[reward_name])
        )

    def mean(self, reward_name: str) -> float:
        """Mean of the named reward."""
        values = self.values(reward_name)
        if not values:
            return math.nan
        return sum(values) / len(values)

    def interval(self, reward_name: str) -> ConfidenceInterval:
        """Confidence interval of the named reward's mean."""
        return confidence_interval(self.values(reward_name), self.confidence)

    def cdf(self, reward_name: str) -> EmpiricalCDF:
        """Empirical CDF of the named reward across replications."""
        return EmpiricalCDF(self.values(reward_name))

    @property
    def n(self) -> int:
        """Number of replications run."""
        return len(self.replications)


class SimulativeSolver:
    """Terminating simulation of a SAN over independent replications.

    Parameters
    ----------
    model_factory:
        Callable building a fresh model for each replication.  (Models are
        cheap to build and rebuilding avoids any state leakage between
        replications; a prebuilt model may also be passed via a lambda if it
        is genuinely stateless.)
    reward_factory:
        Callable building fresh reward variables for each replication.
    stop_predicate:
        Marking predicate that terminates a replication (e.g. "a process has
        decided").
    max_time:
        Time horizon per replication (safety bound for runs in which the
        predicate never becomes true).
    seed:
        Master seed; replication *i* uses an independent stream derived from
        it, so results are reproducible and replications are independent.
    confidence:
        Confidence level for the reported intervals (paper: 0.90).
    batched_executor_class:
        The executor used by ``solve(..., strategy="batched")``: a class
        with :class:`~repro.san.batched.BatchedSANExecutor`'s ``for_batch``
        / ``run_batch`` interface, swappable like ``executor_class``.
    reuse_model:
        Build the model once (per process) and execute every replication
        against the same instance instead of calling ``model_factory`` per
        replication.  The executor never mutates the model (it copies the
        initial marking and keeps all run state on itself), so this is
        bit-identical for any factory whose models are *stateless*: no
        mutable state captured in gate closures or marking-dependent
        distributions.  Every builder in :mod:`repro.sanmodels` qualifies,
        and for the generated consensus models the build is a large share
        of a replication's cost.  Leave ``False`` for factories with
        stateful gates.  The cached model never crosses process boundaries
        (it is dropped on pickling), so ``jobs > 1`` still works with
        factories whose *models* are unpicklable.
    collect_traces:
        Record every activity completion of every replication on
        :attr:`ReplicationResult.trace`.  Tracing observes the reward
        notification stream only -- it consumes no randomness -- so the
        reward values stay bit-identical with tracing on or off.  The
        lock-step batched executor does not emit per-replication traces,
        so a tracing solver **falls back to the scalar strategy**
        (``solve(strategy="batched")`` and :meth:`run_batch` both run
        scalar, seed-per-seed identical as always).
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        reward_factory: RewardFactory,
        stop_predicate: Optional[MarkingPredicate] = None,
        max_time: float = 1_000.0,
        seed: Optional[int] = 0,
        confidence: float = 0.90,
        initial_marking_factory: Optional[Callable[[SANModel], Marking]] = None,
        reuse_model: bool = False,
        executor_class: type = SANExecutor,
        batched_executor_class: Optional[type] = None,
        collect_traces: bool = False,
    ) -> None:
        self.model_factory = model_factory
        self.reward_factory = reward_factory
        self.stop_predicate = stop_predicate
        self.max_time = max_time
        self.seed = seed if seed is not None else 0
        self.confidence = confidence
        self.initial_marking_factory = initial_marking_factory
        self.reuse_model = reuse_model
        #: The executor implementation (swappable so tests and benchmarks
        #: can run the reference executor through the same solver).
        self.executor_class = executor_class
        if batched_executor_class is None:
            batched_executor_class = BatchedSANExecutor
        self.batched_executor_class = batched_executor_class
        self.collect_traces = collect_traces
        self._cached_model: Optional[SANModel] = None

    def __getstate__(self) -> Dict[str, Any]:
        # The cached model may hold unpicklable gate closures; workers
        # rebuild (and re-cache) their own copy from the factory.
        state = self.__dict__.copy()
        state["_cached_model"] = None
        return state

    # ------------------------------------------------------------------
    def _model(self) -> SANModel:
        """A model for the next replication (cached when ``reuse_model``)."""
        if not self.reuse_model:
            return self.model_factory()
        if self._cached_model is None:
            self._cached_model = self.model_factory()
        return self._cached_model

    def run_replication(self, index: int) -> ReplicationResult:
        """Run a single replication with its own derived seed."""
        return self._run_with_seed(index, self._replication_seed(index))

    def _run_with_seed(self, index: int, seed: int) -> ReplicationResult:
        sim = Simulator(seed=seed)
        model = self._model()
        rewards = list(self.reward_factory())
        recorder = _ActivityTraceRecorder() if self.collect_traces else None
        observers: List[RewardVariable] = list(rewards)
        if recorder is not None:
            observers.append(recorder)
        initial = (
            self.initial_marking_factory(model)
            if self.initial_marking_factory is not None
            else None
        )
        executor = self.executor_class(model, sim, observers, initial_marking=initial)
        outcome = executor.run(until=self.max_time, stop_predicate=self.stop_predicate)
        return ReplicationResult(
            replication=index,
            end_time=outcome.end_time,
            stopped_by_predicate=outcome.stopped_by_predicate,
            rewards={reward.name: reward.value() for reward in rewards},
            trace=recorder.completions if recorder is not None else None,
        )

    def solve(
        self,
        replications: int = 100,
        target_reward: Optional[str] = None,
        relative_precision: Optional[float] = None,
        min_replications: int = 20,
        max_replications: int = 10_000,
        jobs: Optional[int] = 1,
        precision_batch: int = 10,
        strategy: Optional[str] = None,
        batch_size: Optional[Union[int, str]] = None,
    ) -> SolverResult:
        """Run replications and aggregate the rewards.

        Parameters
        ----------
        replications:
            Number of replications when no precision target is given.
        target_reward, relative_precision:
            If both are given, keep running (between ``min_replications`` and
            ``max_replications``) until the confidence-interval half-width of
            ``target_reward`` is below ``relative_precision`` times its mean.
            A target reward whose mean is zero (no finite, nonzero
            observations) makes *relative* precision undefined; the loop
            then stops with a warning and ``precision_achieved=False``
            instead of silently running to ``max_replications``.
        jobs:
            Worker processes (``1`` = in-process serial, ``0``/``None`` =
            one per CPU).  Replication ``i`` always runs with the same
            derived seed and results are aggregated in replication order,
            so any ``jobs`` value produces bit-identical results -- the
            same determinism contract as the experiment sweep engine this
            is built on (:mod:`repro.experiments.runner`).  ``jobs > 1``
            requires the model/reward factories to be picklable
            (module-level functions or methods of picklable objects).
        precision_batch:
            Replications per precision-loop chunk.  The stopping rule is
            evaluated at chunk boundaries only, so the replication count is
            a function of the seed and this value, never of ``jobs``.
        strategy:
            ``"scalar"`` loops replications through ``executor_class``;
            ``"batched"`` hands whole chunks of the replication plan to
            ``batched_executor_class``, which advances them lock-step.
            ``None`` (default) defers to the process execution policy
            (:mod:`repro.san.execution`: the ``REPRO_SAN_STRATEGY``
            environment variable, else ``"scalar"``).  Replication ``i``
            uses the same derived seed and named streams under both
            strategies, so the results are bit-identical -- the strategy
            only changes throughput.
        batch_size:
            Replications per lock-step batch under ``strategy="batched"``:
            a positive count or ``"auto"`` for the compiled-model-size
            heuristic (:func:`auto_batch_size`).  ``None`` (default)
            defers to the process execution policy (``REPRO_SAN_BATCH_SIZE``,
            else ``"auto"``).  Like ``jobs``, the value never changes
            results.
        """
        strategy = execution.resolve_strategy(strategy)
        batch_size = execution.resolve_batch_size(batch_size)
        if self.collect_traces and strategy == "batched":
            # The lock-step executor has no per-replication completion
            # stream; tracing solvers fall back to the (bit-identical)
            # scalar strategy -- documented on ``collect_traces``.
            strategy = "scalar"
        if strategy == "batched" and batch_size == execution.AUTO_BATCH_SIZE:
            # Resolve the heuristic once per solve (not per precision-loop
            # chunk): it compiles a model to measure the structure.
            batch_size = auto_batch_size(self._model())
        result = SolverResult(confidence=self.confidence)
        if target_reward is None or relative_precision is None:
            result.replications.extend(
                self._run_indices(
                    range(replications),
                    jobs,
                    strategy=strategy,
                    batch_size=batch_size,
                )
            )
            return result

        if precision_batch < 1:
            raise ValueError(f"precision_batch must be >= 1, got {precision_batch}")
        result.target_reward = target_reward
        result.precision_achieved = False
        pool = self._make_pool(jobs)
        try:
            index = 0
            while index < max_replications:
                if index < min_replications:
                    chunk = min_replications - index
                else:
                    chunk = precision_batch
                chunk = min(chunk, max_replications - index)
                result.replications.extend(
                    self._run_indices(
                        range(index, index + chunk),
                        jobs,
                        pool=pool,
                        strategy=strategy,
                        batch_size=batch_size,
                    )
                )
                index += chunk
                if index < min_replications:
                    continue
                values = result.values(target_reward)
                if len(values) < 2:
                    continue
                interval = confidence_interval(values, self.confidence)
                if interval.mean == 0:
                    # Relative precision is undefined for a zero mean; more
                    # replications cannot fix that, so stop instead of
                    # silently burning the whole max_replications budget.
                    result.precision_note = (
                        f"reward {target_reward!r} has zero mean after {index} "
                        "replications; relative precision is undefined"
                    )
                    warnings.warn(result.precision_note, stacklevel=2)
                    break
                if interval.half_width / abs(interval.mean) <= relative_precision:
                    result.precision_achieved = True
                    break
            else:
                result.precision_note = (
                    f"precision target not reached within {max_replications} "
                    "replications"
                )
        finally:
            if pool is not None:
                pool.shutdown()
        return result

    # ------------------------------------------------------------------
    def _make_pool(self, jobs: Optional[int]) -> Optional[ProcessPoolExecutor]:
        """One executor for a whole precision loop (``None`` when serial).

        The loop executes many small chunks; paying a process-pool startup
        per chunk would dwarf the replications themselves, so the pool is
        created once here and lent to every :func:`iter_plan` call.
        """
        if jobs == 1:
            return None
        from concurrent.futures import ProcessPoolExecutor

        from repro.experiments.runner import resolve_jobs

        resolved = resolve_jobs(jobs)
        if resolved == 1:
            return None
        return ProcessPoolExecutor(max_workers=resolved)

    def _run_indices(
        self,
        indices: Iterable[int],
        jobs: Optional[int],
        pool: Optional[ProcessPoolExecutor] = None,
        strategy: str = "scalar",
        batch_size: Optional[Union[int, str]] = None,
    ) -> List[ReplicationResult]:
        """Run the given replication indices, serially or on a worker pool.

        The parallel path rides on the experiment sweep engine
        (:class:`~repro.experiments.runner.ReplicationPlan`), inheriting
        its ordered streaming aggregation; the per-replication seeds are
        identical to the serial path's, so ``jobs`` never changes results.
        Under ``strategy="batched"`` the plan's unit of work is a whole
        batch of replications (one lock-step executor per batch) instead
        of a single one -- per-replication seeds are unchanged, so the
        strategy never changes results either.
        """
        indices = list(indices)
        if strategy == "batched":
            return self._run_indices_batched(indices, jobs, pool, batch_size)
        if pool is None and (jobs == 1 or len(indices) <= 1):
            return [self.run_replication(index) for index in indices]
        # Imported lazily: repro.experiments pulls in modules that themselves
        # import this one.
        from repro.experiments.runner import ReplicationPlan, SweepPoint, iter_plan

        points = tuple(
            SweepPoint.make(
                _replication_job,
                kwargs={"solver": self, "index": index},
                indices=(index,),
                label=f"replication {index}",
            )
            for index in indices
        )
        plan = ReplicationPlan(
            settings=_ReplicationSeeds(self.seed), points=points, name="san-solver"
        )
        return [
            result for _point, result in iter_plan(plan, jobs=jobs, pool=pool)
        ]

    def _run_indices_batched(
        self,
        indices: List[int],
        jobs: Optional[int],
        pool: Optional[ProcessPoolExecutor] = None,
        batch_size: Optional[Union[int, str]] = None,
    ) -> List[ReplicationResult]:
        """Run replication indices in lock-step batches.

        Each batch is one :meth:`run_batch` call; the serial path runs the
        batches in-process, the parallel path makes each batch one sweep
        point and hands workers whole *groups* of consecutive batches per
        submission (amortising submission overhead while keeping cache
        and timing bookkeeping batch-granular).  Results are aggregated
        in replication order either way.
        """
        if batch_size is None or batch_size == execution.AUTO_BATCH_SIZE:
            batch_size = auto_batch_size(self._model())
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        batches = [
            tuple(indices[start : start + batch_size])
            for start in range(0, len(indices), batch_size)
        ]
        if pool is None and (jobs == 1 or len(batches) <= 1):
            return [
                result for batch in batches for result in self.run_batch(batch)
            ]
        from repro.experiments.runner import (
            ReplicationPlan,
            SweepPoint,
            iter_plan,
            resolve_jobs,
        )

        points = tuple(
            SweepPoint.make(
                _batched_replication_job,
                kwargs={"solver": self, "indices": batch},
                indices=(batch[0],),
                label=f"replications {batch[0]}..{batch[-1]}",
            )
            for batch in batches
        )
        plan = ReplicationPlan(
            settings=_ReplicationSeeds(self.seed), points=points, name="san-solver"
        )
        # Two groups per worker: each submission carries several batches
        # (one pickled solver + one result message per group instead of
        # per batch) while still leaving the pool slack to balance load.
        # Grouping only changes the submission envelope -- per-replication
        # seeds are fixed and results stream in plan order regardless.
        group_size = max(
            1, math.ceil(len(batches) / (2 * resolve_jobs(jobs)))
        )
        return [
            result
            for _point, batch_results in iter_plan(
                plan, jobs=jobs, pool=pool, group_size=group_size
            )
            for result in batch_results
        ]

    def run_batch(self, indices: Sequence[int]) -> List[ReplicationResult]:
        """Run the given replications as one lock-step batch.

        Every replication keeps its own derived seed, named streams and
        reward variables, so each entry of the returned list is
        bit-identical to :meth:`run_replication` of the same index.
        Under ``collect_traces=True`` the batch falls back to scalar
        per-replication runs (same seeds, same results, traces attached).
        """
        indices = list(indices)
        if self.collect_traces:
            return [self.run_replication(index) for index in indices]
        model = self._model()
        rewards_rows = [list(self.reward_factory()) for _ in indices]
        initial_markings = None
        if self.initial_marking_factory is not None:
            initial_markings = [
                self.initial_marking_factory(model) for _ in indices
            ]
        executor = self.batched_executor_class.for_batch(
            model,
            [self._replication_seed(index) for index in indices],
            rewards_rows,
            initial_markings=initial_markings,
        )
        outcomes = executor.run_batch(
            until=self.max_time, stop_predicate=self.stop_predicate
        )
        return [
            ReplicationResult(
                replication=index,
                end_time=outcome.end_time,
                stopped_by_predicate=outcome.stopped_by_predicate,
                rewards={reward.name: reward.value() for reward in rewards},
            )
            for index, outcome, rewards in zip(
                indices, outcomes, rewards_rows, strict=True
            )
        ]

    def _replication_seed(self, index: int) -> int:
        return _ReplicationSeeds(self.seed).point_seed(index)


@dataclass(frozen=True)
class _ReplicationSeeds:
    """Seed derivation of :class:`SimulativeSolver` replications.

    The single definition of the derivation, satisfying the sweep engine's
    settings interface (``point_seed``); both the serial and the pooled
    path use it, so a replication's seed is a pure function of
    (master seed, replication index) whatever the ``jobs`` value.
    """

    seed: int

    def point_seed(self, *indices: int) -> int:
        (index,) = indices
        return (self.seed * 1_000_003 + index * 7_919 + 1) % (2**63)


def _replication_job(
    solver: SimulativeSolver, index: int, point_seed: int
) -> ReplicationResult:
    """Run one replication in a worker process (module-level, picklable)."""
    return solver._run_with_seed(index, point_seed)


def _batched_replication_job(
    solver: SimulativeSolver, indices: Sequence[int], point_seed: int
) -> List[ReplicationResult]:
    """Run one lock-step batch in a worker process (module-level, picklable).

    ``point_seed`` is the first replication's seed, provided by the sweep
    engine's settings interface; :meth:`SimulativeSolver.run_batch`
    re-derives every row's seed from the same :class:`_ReplicationSeeds`
    definition, so it is deliberately unused here.
    """
    del point_seed
    return solver.run_batch(indices)
