"""Process-wide execution policy for the SAN simulative solver.

:meth:`SimulativeSolver.solve` takes ``strategy`` ("scalar" / "batched")
and ``batch_size`` (a count or ``"auto"``) arguments, but most call
sites -- experiment specs, model comparison scripts, the CLI -- sit
several layers above the solver and should not have to thread executor
knobs through every signature.  This module provides the bridge: an
:class:`ExecutionPolicy` that can be *activated* for the process, and
``resolve_*`` helpers the solver consults whenever a call site passes
``None``.

Resolution order (first hit wins):

1. the explicit argument of the ``solve()`` call,
2. the activated policy (transported via ``REPRO_SAN_STRATEGY`` /
   ``REPRO_SAN_BATCH_SIZE`` environment variables),
3. the defaults: ``"scalar"`` strategy, ``"auto"`` batch sizing.

The environment is used as the store deliberately: worker processes of
pooled sweeps inherit it, so a policy activated in the parent governs
every replication wherever it runs.  The policy is **not** part of
result identity -- replication seeds and named streams do not depend on
it, both executors are bit-identical per replication, and batch size
never changes results -- so it is excluded from experiment settings
hashes and result-cache keys on purpose: flipping the strategy must hit
the cache, not invalidate it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "AUTO_BATCH_SIZE",
    "BATCH_SIZE_ENV",
    "STRATEGIES",
    "STRATEGY_ENV",
    "ExecutionPolicy",
    "activate",
    "active_policy",
    "parse_batch_size",
    "parse_strategy",
    "resolve_batch_size",
    "resolve_strategy",
]

#: Environment variable naming the executor strategy for the process.
STRATEGY_ENV = "REPRO_SAN_STRATEGY"
#: Environment variable naming the lock-step batch size for the process.
BATCH_SIZE_ENV = "REPRO_SAN_BATCH_SIZE"

#: The recognised executor strategies.
STRATEGIES = ("scalar", "batched")

#: Sentinel batch size selecting the compiled-model-size heuristic
#: (:func:`repro.san.solver.auto_batch_size`).
AUTO_BATCH_SIZE = "auto"

#: A resolved batch size: a positive replication count or ``"auto"``.
BatchSize = Union[int, str]


def parse_strategy(value: str, source: str = "strategy") -> str:
    """Validate an executor strategy name.

    ``source`` names the offending input in the error message (argument
    name or environment variable).
    """
    if value not in STRATEGIES:
        expected = " or ".join(repr(name) for name in STRATEGIES)
        raise ValueError(f"unknown {source} {value!r}: expected {expected}")
    return value


def parse_batch_size(value: BatchSize, source: str = "batch_size") -> BatchSize:
    """Validate a batch size: a positive ``int`` or the string ``"auto"``.

    String digits are accepted (and converted) so environment variables
    and CLI arguments share this single parser.
    """
    if isinstance(value, str):
        text = value.strip().lower()
        if text == AUTO_BATCH_SIZE:
            return AUTO_BATCH_SIZE
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"invalid {source} {text!r}: expected a positive integer "
                f"or {AUTO_BATCH_SIZE!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"invalid {source} {value!r}: expected a positive integer "
            f"or {AUTO_BATCH_SIZE!r}"
        )
    if value < 1:
        raise ValueError(f"{source} must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class ExecutionPolicy:
    """A (strategy, batch size) pair governing SAN solver calls.

    ``None`` fields defer to the next layer of the resolution order --
    a policy may pin the strategy while leaving batch sizing automatic.
    """

    strategy: Optional[str] = None
    batch_size: Optional[BatchSize] = None

    def __post_init__(self) -> None:
        if self.strategy is not None:
            parse_strategy(self.strategy)
        if self.batch_size is not None:
            object.__setattr__(
                self, "batch_size", parse_batch_size(self.batch_size)
            )


def activate(policy: ExecutionPolicy) -> None:
    """Install ``policy`` as the process default (and for child workers).

    ``None`` fields clear any previously activated value, so activating
    ``ExecutionPolicy()`` restores the built-in defaults.
    """
    if policy.strategy is None:
        os.environ.pop(STRATEGY_ENV, None)
    else:
        os.environ[STRATEGY_ENV] = policy.strategy
    if policy.batch_size is None:
        os.environ.pop(BATCH_SIZE_ENV, None)
    else:
        os.environ[BATCH_SIZE_ENV] = str(policy.batch_size)


def active_policy() -> ExecutionPolicy:
    """The currently activated policy (fields ``None`` when unset)."""
    strategy = os.environ.get(STRATEGY_ENV)
    if strategy is not None:
        strategy = parse_strategy(strategy, source=STRATEGY_ENV)
    batch_size: Optional[BatchSize] = os.environ.get(BATCH_SIZE_ENV)
    if batch_size is not None:
        batch_size = parse_batch_size(batch_size, source=BATCH_SIZE_ENV)
    return ExecutionPolicy(strategy=strategy, batch_size=batch_size)


def resolve_strategy(explicit: Optional[str] = None) -> str:
    """The strategy a solver call should use.

    Explicit argument beats the activated policy beats ``"scalar"``.
    """
    if explicit is not None:
        return parse_strategy(explicit)
    policy = active_policy()
    if policy.strategy is not None:
        return policy.strategy
    return STRATEGIES[0]


def resolve_batch_size(explicit: Optional[BatchSize] = None) -> BatchSize:
    """The batch size a batched solver call should use.

    Explicit argument beats the activated policy beats ``"auto"`` (the
    compiled-model-size heuristic).
    """
    if explicit is not None:
        return parse_batch_size(explicit)
    policy = active_policy()
    if policy.batch_size is not None:
        return policy.batch_size
    return AUTO_BATCH_SIZE
