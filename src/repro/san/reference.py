"""A deliberately unoptimized reference executor.

:class:`ReferenceExecutor` executes a SAN with the same semantics as
:class:`~repro.san.executor.SANExecutor` but with every performance
shortcut disabled:

* after every completion it re-evaluates **all** activities instead of
  consulting the place-to-activity dependency index;
* durations are drawn one at a time (no batched numpy draws).

It exists to pin the optimized executor down: the golden-trace tests run
both implementations and require identical trajectories, the property
tests check that the dependency index covers every enablement flip the
full re-evaluation would see, and the consensus benchmark reports the
optimized executor's speedup over this baseline.

Equivalence caveat: within one refresh pass the *set* of scheduling
decisions is identical, but the reference walks the activities in model
definition order while the optimized executor walks the affected subset in
its deterministic (conservative-first, then sorted-changed-place) order.
Two timed activities completing at exactly the same instant can therefore
fire in a different relative order.  The models used for exact-trace
comparison have continuous duration distributions (ties have probability
zero); for models with equal constant durations the comparison holds at
the level of reward values rather than event interleavings.
"""

from __future__ import annotations

from typing import Callable, List, Set

from repro.san.activities import TimedActivity
from repro.san.executor import SANExecutor
from repro.san.marking import Marking
from repro.san.model import SANModel


class ReferenceExecutor(SANExecutor):
    """Full-re-evaluation twin of :class:`~repro.san.executor.SANExecutor`."""

    def _affected_timed(self, changed: Set[str]) -> List[TimedActivity]:
        return list(self._timed)

    def _affected_instantaneous(self, changed: Set[str]) -> Set[str]:
        return set(self._inst_order)

    def _make_duration_sampler(
        self, activity: TimedActivity
    ) -> Callable[[Marking], float]:
        rng = self.sim.random.stream(f"san.duration.{activity.name}")

        def sampler(marking: Marking) -> float:
            return activity.sample_duration(marking, rng)

        return sampler


def enabled_activity_names(model: SANModel, marking: Marking) -> Set[str]:
    """Brute-force enablement: every activity checked against ``marking``.

    The reference the property tests compare the executor's incremental
    bookkeeping against.
    """
    return {
        activity.name
        for activity in model.activities
        if activity.enabled(marking)
    }
