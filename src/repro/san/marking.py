"""Markings: the state of a SAN.

A :class:`Marking` maps place names to non-negative token counts.  Gate
predicates and functions receive the marking and read or mutate it through
the mapping interface.  The marking guards against negative token counts,
the most common modeling bug.

:class:`FrozenMarking` is the immutable, hashable counterpart used as the
state key by the reachability-graph generator
(:mod:`repro.san.statespace`): two markings that agree on every nonzero
place freeze to the same key, so zero-padded and sparse representations of
the same state coincide in the state space.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Union

from repro.san.places import Place

PlaceRef = Union[str, Place]


def _name(place: PlaceRef) -> str:
    # Hot path: marking lookups happen on every enabling check, and almost
    # all callers pass plain strings, so test for that first.
    return place if isinstance(place, str) else place.name


class Marking:
    """A mutable mapping from place names to token counts.

    The marking keeps a *change journal*: every place whose token count
    actually changes is recorded until :meth:`consume_changes` is called.
    The SAN executor uses the journal to re-evaluate only the activities
    that could have been affected by a completion, which keeps large
    generated models (hundreds of activities) fast to simulate.
    """

    __slots__ = ("_tokens", "_changed")

    def __init__(self, tokens: Mapping[str, int] | None = None) -> None:
        self._tokens: Dict[str, int] = {}
        self._changed: set[str] = set()
        if tokens:
            for name, count in tokens.items():  # repro: ignore[DET001] copies the caller's mapping; a canonical sorted order is imposed at freeze()
                self[name] = count

    # ------------------------------------------------------------------
    def __getitem__(self, place: PlaceRef) -> int:
        return self._tokens.get(
            place if isinstance(place, str) else place.name, 0
        )

    def __setitem__(self, place: PlaceRef, count: int) -> None:
        name = place if isinstance(place, str) else place.name
        count = int(count)
        if count < 0:
            raise ValueError(
                f"marking of place {name!r} would become negative ({count})"
            )
        if self._tokens.get(name, 0) != count:
            self._changed.add(name)
        self._tokens[name] = count

    # ------------------------------------------------------------------
    def consume_changes(self) -> set[str]:
        """Return the places changed since the last call, and clear the journal."""
        changed = self._changed
        self._changed = set()
        return changed

    def __contains__(self, place: PlaceRef) -> bool:
        return _name(place) in self._tokens

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self.as_dict(drop_zeros=True) == other.as_dict(drop_zeros=True)
        if isinstance(other, Mapping):
            return self.as_dict(drop_zeros=True) == {
                key: value for key, value in other.items() if value  # repro: ignore[DET001] dict equality is order-insensitive
            }
        return NotImplemented

    # Markings are mutable, so they must not be hashable: the standard
    # idiom (setting ``__hash__`` to ``None``) makes ``hash()`` raise
    # ``TypeError`` and makes ``isinstance(m, collections.abc.Hashable)``
    # correctly report ``False``.  Use :meth:`freeze` to obtain a hashable
    # state key.
    __hash__ = None  # type: ignore[assignment]

    def freeze(self) -> "FrozenMarking":
        """An immutable, hashable snapshot of this marking.

        Markings already guarantee non-negative integer counts, so the
        snapshot skips :class:`FrozenMarking`'s per-item validation -- the
        state-space explorer freezes a marking per reachable state and this
        is its hot path.
        """
        return FrozenMarking._from_clean_tokens(self._tokens)

    # ------------------------------------------------------------------
    def add(self, place: PlaceRef, count: int = 1) -> None:
        """Add ``count`` tokens to ``place``."""
        self[place] = self[place] + count

    def remove(self, place: PlaceRef, count: int = 1) -> None:
        """Remove ``count`` tokens from ``place`` (raising if insufficient)."""
        self[place] = self[place] - count

    def set_all(self, places: Iterable[PlaceRef], count: int) -> None:
        """Set every place in ``places`` to ``count`` tokens."""
        for place in places:
            self[place] = count

    def has(self, place: PlaceRef, count: int = 1) -> bool:
        """``True`` if ``place`` holds at least ``count`` tokens."""
        return self[place] >= count

    def copy(self) -> "Marking":
        """An independent copy of this marking.

        The source marking already enforces the non-negative-integer
        invariant, so the copy clones the token dict directly instead of
        replaying every assignment through ``__setitem__``.  The copy
        starts with an *empty* change journal (a copy has not changed
        anything yet); the executor clears the journal at the start of a
        run anyway, so the two representations are interchangeable there.
        """
        clone = Marking.__new__(Marking)
        clone._tokens = dict(self._tokens)
        clone._changed = set()
        return clone

    def as_dict(self, drop_zeros: bool = False) -> Dict[str, int]:
        """The marking as a plain dictionary."""
        if drop_zeros:
            return {name: count for name, count in self._tokens.items() if count}  # repro: ignore[DET001] deliberately preserves this marking's own insertion order
        return dict(self._tokens)

    def total_tokens(self) -> int:
        """Total number of tokens across all places."""
        return sum(self._tokens.values())

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in sorted(self._tokens.items()) if v}
        return f"Marking({nonzero})"


class FrozenMarking:
    """An immutable, hashable marking: the state key of the state space.

    Only nonzero token counts are stored (in sorted place order), so two
    markings that differ only in explicit zeros freeze to equal keys with
    equal hashes.  The read-only part of the :class:`Marking` interface is
    supported (``[]``, ``in``, iteration, ``has``, ``as_dict``,
    ``total_tokens``), which lets gate predicates and reward rate functions
    that only *read* the marking be evaluated directly on a frozen state.
    """

    __slots__ = ("_items", "_hash", "_lookup")

    def __init__(self, tokens: Mapping[str, int] | None = None) -> None:
        items = []
        for name, count in (tokens or {}).items():  # repro: ignore[DET001] collected items are sorted two lines below
            count = int(count)
            if count < 0:
                raise ValueError(
                    f"marking of place {name!r} cannot be negative ({count})"
                )
            if count:
                items.append((str(name), count))
        self._items: tuple[tuple[str, int], ...] = tuple(sorted(items))
        self._hash = hash(self._items)  # repro: ignore[DET002] in-process memo of the canonical tuple's hash for dict keying; never ordered, persisted, or seeded
        self._lookup: Dict[str, int] | None = None

    @classmethod
    def _from_clean_tokens(cls, tokens: Mapping[str, int]) -> "FrozenMarking":
        """Freeze counts already known to be non-negative ints.

        Internal fast path for :meth:`Marking.freeze`; skips the per-item
        coercion/validation of ``__init__`` (the marking enforced it on
        every write).
        """
        frozen = cls.__new__(cls)
        frozen._items = tuple(sorted(item for item in tokens.items() if item[1]))
        frozen._hash = hash(frozen._items)  # repro: ignore[DET002] same in-process hash memo as __init__
        frozen._lookup = None
        return frozen

    # ------------------------------------------------------------------
    def __getitem__(self, place: PlaceRef) -> int:
        # Built lazily: most frozen markings are pure state keys (hashed and
        # compared, never indexed); the ones gate predicates and reward
        # functions do read are read many times, so the first read builds a
        # dict and later reads are O(1).
        lookup = self._lookup
        if lookup is None:
            lookup = self._lookup = dict(self._items)
        return lookup.get(_name(place), 0)

    def __contains__(self, place: PlaceRef) -> bool:
        lookup = self._lookup
        if lookup is None:
            lookup = self._lookup = dict(self._items)
        return _name(place) in lookup

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenMarking):
            return self._items == other._items
        if isinstance(other, (Marking, Mapping)):
            return self.as_dict() == (
                other.as_dict(drop_zeros=True)
                if isinstance(other, Marking)
                else {k: v for k, v in other.items() if v}  # repro: ignore[DET001] dict equality is order-insensitive
            )
        return NotImplemented

    # ------------------------------------------------------------------
    def has(self, place: PlaceRef, count: int = 1) -> bool:
        """``True`` if ``place`` holds at least ``count`` tokens."""
        return self[place] >= count

    def as_dict(self) -> Dict[str, int]:
        """The nonzero token counts as a plain dictionary."""
        return dict(self._items)

    def items(self) -> Iterable[tuple[str, int]]:
        """The nonzero ``(place, count)`` pairs in sorted place order."""
        return self._items

    def total_tokens(self) -> int:
        """Total number of tokens across all places."""
        return sum(count for _, count in self._items)

    def thaw(self) -> Marking:
        """A fresh mutable :class:`Marking` with the same token counts."""
        return Marking(dict(self._items))

    @staticmethod
    def from_marking(marking: Marking) -> "FrozenMarking":
        """Freeze a mutable marking (equivalent to :meth:`Marking.freeze`)."""
        return marking.freeze()

    def __repr__(self) -> str:
        return f"FrozenMarking({dict(self._items)})"
