"""Markings: the state of a SAN.

A :class:`Marking` maps place names to non-negative token counts.  Gate
predicates and functions receive the marking and read or mutate it through
the mapping interface.  The marking guards against negative token counts,
the most common modeling bug.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Union

from repro.san.places import Place

PlaceRef = Union[str, Place]


def _name(place: PlaceRef) -> str:
    return place.name if isinstance(place, Place) else place


class Marking:
    """A mutable mapping from place names to token counts.

    The marking keeps a *change journal*: every place whose token count
    actually changes is recorded until :meth:`consume_changes` is called.
    The SAN executor uses the journal to re-evaluate only the activities
    that could have been affected by a completion, which keeps large
    generated models (hundreds of activities) fast to simulate.
    """

    __slots__ = ("_tokens", "_changed")

    def __init__(self, tokens: Mapping[str, int] | None = None) -> None:
        self._tokens: Dict[str, int] = {}
        self._changed: set[str] = set()
        if tokens:
            for name, count in tokens.items():
                self[name] = count

    # ------------------------------------------------------------------
    def __getitem__(self, place: PlaceRef) -> int:
        return self._tokens.get(_name(place), 0)

    def __setitem__(self, place: PlaceRef, count: int) -> None:
        name = _name(place)
        count = int(count)
        if count < 0:
            raise ValueError(
                f"marking of place {name!r} would become negative ({count})"
            )
        if self._tokens.get(name, 0) != count:
            self._changed.add(name)
        self._tokens[name] = count

    # ------------------------------------------------------------------
    def consume_changes(self) -> set[str]:
        """Return the places changed since the last call, and clear the journal."""
        changed = self._changed
        self._changed = set()
        return changed

    def __contains__(self, place: PlaceRef) -> bool:
        return _name(place) in self._tokens

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self.as_dict(drop_zeros=True) == other.as_dict(drop_zeros=True)
        if isinstance(other, Mapping):
            return self.as_dict(drop_zeros=True) == {
                key: value for key, value in other.items() if value
            }
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - markings are mutable
        raise TypeError("Marking objects are mutable and unhashable")

    # ------------------------------------------------------------------
    def add(self, place: PlaceRef, count: int = 1) -> None:
        """Add ``count`` tokens to ``place``."""
        self[place] = self[place] + count

    def remove(self, place: PlaceRef, count: int = 1) -> None:
        """Remove ``count`` tokens from ``place`` (raising if insufficient)."""
        self[place] = self[place] - count

    def set_all(self, places: Iterable[PlaceRef], count: int) -> None:
        """Set every place in ``places`` to ``count`` tokens."""
        for place in places:
            self[place] = count

    def has(self, place: PlaceRef, count: int = 1) -> bool:
        """``True`` if ``place`` holds at least ``count`` tokens."""
        return self[place] >= count

    def copy(self) -> "Marking":
        """An independent copy of this marking."""
        return Marking(dict(self._tokens))

    def as_dict(self, drop_zeros: bool = False) -> Dict[str, int]:
        """The marking as a plain dictionary."""
        if drop_zeros:
            return {name: count for name, count in self._tokens.items() if count}
        return dict(self._tokens)

    def total_tokens(self) -> int:
        """Total number of tokens across all places."""
        return sum(self._tokens.values())

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in sorted(self._tokens.items()) if v}
        return f"Marking({nonzero})"
