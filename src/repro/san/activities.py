"""SAN activities.

Activities are the transitions of a SAN.  A **timed activity** has a
duration distribution (possibly marking-dependent) and one or more
probabilistic **cases**; an **instantaneous activity** completes as soon as
it is enabled.  The paper's models use both: timed activities for message
transmission stages and failure-detector state changes, instantaneous
activities for control-flow branching (e.g. choosing the initial FD state,
§3.4 / Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

from repro.san.gates import InputGate, OutputGate
from repro.san.marking import Marking
from repro.san.places import Place
from repro.stats.distributions import Distribution

PlaceRef = Union[str, Place]
DistributionLike = Union[Distribution, Callable[[Marking], Distribution]]
ProbabilityLike = Union[float, Callable[[Marking], float]]


def _place_name(place: PlaceRef) -> str:
    return place.name if isinstance(place, Place) else place


@dataclass(frozen=True)
class Case:
    """One probabilistic outcome of an activity completion.

    Parameters
    ----------
    probability:
        Either a fixed probability or a callable evaluated on the marking at
        completion time (UltraSAN's marking-dependent case probabilities).
        Probabilities of all cases of an activity are normalised at
        selection time, so specifying relative weights is acceptable.
    output_arcs:
        Places receiving tokens when this case is chosen, as ``(place,
        weight)`` pairs or bare places (weight 1).
    output_gates:
        Output gates applied (in order) after the output arcs.
    label:
        Optional human-readable description of the outcome.
    """

    probability: ProbabilityLike = 1.0
    output_arcs: tuple[tuple[str, int], ...] = ()
    output_gates: tuple[OutputGate, ...] = ()
    label: str = ""

    @staticmethod
    def build(
        probability: ProbabilityLike = 1.0,
        output_arcs: Sequence[Union[PlaceRef, tuple[PlaceRef, int]]] = (),
        output_gates: Sequence[OutputGate] = (),
        label: str = "",
    ) -> "Case":
        """Build a case, normalising arc specifications."""
        arcs: list[tuple[str, int]] = []
        for arc in output_arcs:
            if isinstance(arc, tuple):
                place, weight = arc
                arcs.append((_place_name(place), int(weight)))
            else:
                arcs.append((_place_name(arc), 1))
        return Case(
            probability=probability,
            output_arcs=tuple(arcs),
            output_gates=tuple(output_gates),
            label=label,
        )

    def weight(self, marking: Marking) -> float:
        """Evaluate the (possibly marking-dependent) case weight."""
        if callable(self.probability):
            return float(self.probability(marking))
        return float(self.probability)


class Activity:
    """Common behaviour of timed and instantaneous activities.

    Parameters
    ----------
    name:
        Unique activity name within a model.
    input_arcs:
        Places consumed on completion, as ``(place, weight)`` pairs or bare
        places (weight 1).  An activity is enabled only if every input arc
        place holds at least its weight in tokens.
    input_gates:
        Input gates; all predicates must hold for the activity to be
        enabled, and all gate functions run on completion.
    cases:
        Probabilistic outcomes.  If omitted, a single case with no output
        arcs is used (useful when output gates on the single implicit case
        do all the work).
    """

    def __init__(
        self,
        name: str,
        input_arcs: Sequence[Union[PlaceRef, tuple[PlaceRef, int]]] = (),
        input_gates: Sequence[InputGate] = (),
        cases: Sequence[Case] = (),
    ) -> None:
        if not name:
            raise ValueError("Activity name must be non-empty")
        self.name = name
        arcs: list[tuple[str, int]] = []
        for arc in input_arcs:
            if isinstance(arc, tuple):
                place, weight = arc
                if weight < 1:
                    raise ValueError(
                        f"activity {name!r}: arc weight must be >= 1, got {weight}"
                    )
                arcs.append((_place_name(place), int(weight)))
            else:
                arcs.append((_place_name(arc), 1))
        self.input_arcs = tuple(arcs)
        self.input_gates: tuple[InputGate, ...] = tuple(input_gates)
        self.cases: tuple[Case, ...] = tuple(cases) if cases else (Case(),)

    # ------------------------------------------------------------------
    @property
    def timed(self) -> bool:
        """``True`` for timed activities, ``False`` for instantaneous ones."""
        raise NotImplementedError

    def enabled(self, marking: Marking) -> bool:
        """SAN enabling rule: all input arcs satisfied and all gates true."""
        # Hottest call in the executor: read the token dict directly when
        # given a plain Marking (arc places are stored as strings), falling
        # back to the mapping interface for frozen markings and views.
        tokens = getattr(marking, "_tokens", None)
        if tokens is not None:
            get = tokens.get
            for place, weight in self.input_arcs:
                if get(place, 0) < weight:
                    return False
        else:
            for place, weight in self.input_arcs:
                if marking[place] < weight:
                    return False
        for gate in self.input_gates:
            if not gate.enabled(marking):
                return False
        return True

    def choose_case(self, marking: Marking, rng: np.random.Generator) -> Case:
        """Select one case according to the (normalised) case weights."""
        if len(self.cases) == 1:
            return self.cases[0]
        weights = np.asarray([case.weight(marking) for case in self.cases], dtype=float)
        if np.any(weights < 0):
            raise ValueError(f"activity {self.name!r}: negative case probability")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError(
                f"activity {self.name!r}: case probabilities sum to zero"
            )
        index = int(rng.choice(len(self.cases), p=weights / total))
        return self.cases[index]

    def complete(self, marking: Marking, case: Case) -> None:
        """Apply the SAN completion rule for the chosen case.

        Order (standard SAN semantics): consume input arcs, run input gate
        functions, add output arc tokens, run output gate functions.
        """
        for place, weight in self.input_arcs:
            marking.remove(place, weight)
        for gate in self.input_gates:
            gate.apply(marking)
        for place, weight in case.output_arcs:
            marking.add(place, weight)
        for gate in case.output_gates:
            gate.apply(marking)

    def __repr__(self) -> str:
        kind = "timed" if self.timed else "instantaneous"
        return f"{type(self).__name__}(name={self.name!r}, kind={kind})"


class TimedActivity(Activity):
    """A timed activity with a (possibly marking-dependent) duration.

    Parameters
    ----------
    distribution:
        Either a :class:`~repro.stats.distributions.Distribution` or a
        callable mapping the enabling marking to one (UltraSAN's
        marking-dependent activity-time distributions).
    reactivation:
        If ``True`` (the default, matching UltraSAN), an activity that is
        disabled before completing discards its sampled completion time and
        samples a fresh one when next enabled.
    """

    def __init__(
        self,
        name: str,
        distribution: DistributionLike,
        input_arcs: Sequence[Union[PlaceRef, tuple[PlaceRef, int]]] = (),
        input_gates: Sequence[InputGate] = (),
        cases: Sequence[Case] = (),
        reactivation: bool = True,
    ) -> None:
        super().__init__(name, input_arcs, input_gates, cases)
        self.distribution = distribution
        self.reactivation = reactivation

    @property
    def timed(self) -> bool:
        return True

    def sample_duration(self, marking: Marking, rng: np.random.Generator) -> float:
        """Sample an activation-to-completion delay for the current marking."""
        dist = self.distribution
        if callable(dist) and not hasattr(dist, "sample"):
            dist = dist(marking)
        value = dist.sample(rng)  # type: ignore[union-attr]
        if value < 0:
            raise ValueError(
                f"activity {self.name!r}: sampled a negative duration {value}"
            )
        return float(value)


class InstantaneousActivity(Activity):
    """An instantaneous activity, fired as soon as it is enabled.

    Parameters
    ----------
    rank:
        When several instantaneous activities are enabled simultaneously,
        lower rank fires first; ties are broken by definition order.
    """

    def __init__(
        self,
        name: str,
        input_arcs: Sequence[Union[PlaceRef, tuple[PlaceRef, int]]] = (),
        input_gates: Sequence[InputGate] = (),
        cases: Sequence[Case] = (),
        rank: int = 0,
    ) -> None:
        super().__init__(name, input_arcs, input_gates, cases)
        self.rank = int(rank)

    @property
    def timed(self) -> bool:
        return False
