"""Model composition: Join and Rep.

UltraSAN supports modular modeling through the ``REP`` and ``JOIN``
operators (§3.1): submodels are replicated and joined together over *common
places*.  The paper's consensus model is built exactly this way -- one
submodel per process joined over the shared network places (§3.2).

In this framework places are shared by *name*: joining models merges their
place sets (places with the same name become one), and replication renames
every non-shared place and activity with a per-replica prefix.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Set

from repro.san.activities import (
    Activity,
    Case,
    InstantaneousActivity,
    TimedActivity,
)
from repro.san.model import SANModel, SANValidationError, merge_places
from repro.san.places import Place


def join(name: str, models: Sequence[SANModel]) -> SANModel:
    """Join several models into one, sharing places with equal names.

    Activity names must remain unique across the joined models; replicate
    with distinct prefixes before joining if necessary.
    """
    if not models:
        raise SANValidationError("join() requires at least one model")
    joined = SANModel(name)
    for place in merge_places(models).values():  # repro: ignore[DET001] merge_places preserves declared model order; the joined place order is part of the model identity
        joined.add_place(place)
    for model in models:
        for activity in model.activities:
            joined.add_activity(activity)
    return joined


def rename_model(
    model: SANModel,
    prefix: str,
    shared: Set[str] | None = None,
) -> SANModel:
    """A copy of ``model`` with places and activities renamed by ``prefix``.

    Parameters
    ----------
    model:
        The model to rename.
    prefix:
        Prefix prepended to every non-shared place name and every activity
        name (e.g. ``"p3."``).
    shared:
        Place names that must *not* be renamed because they are meant to be
        shared with other replicas (UltraSAN's common places).
    """
    shared = shared or set()

    def rename(place_name: str) -> str:
        if place_name in shared:
            return place_name
        return f"{prefix}{place_name}"

    renamed = SANModel(f"{prefix}{model.name}")
    for place in model.places:
        if place.name in shared:
            renamed.add_place(place)
        else:
            renamed.add_place(Place(rename(place.name), place.initial))
    for activity in model.activities:
        renamed.add_activity(_rename_activity(activity, prefix, rename))
    return renamed


def replicate(
    model: SANModel,
    count: int,
    shared: Set[str] | None = None,
    name: str | None = None,
    prefix_format: str = "r{index}.",
) -> SANModel:
    """UltraSAN's ``REP``: ``count`` renamed copies joined over shared places.

    Parameters
    ----------
    model:
        The submodel to replicate.
    count:
        Number of replicas (>= 1).
    shared:
        Names of common places shared by all replicas.
    name:
        Name of the composed model; defaults to ``"Rep(<model>, <count>)"``.
    prefix_format:
        Format string for the per-replica prefix, receiving ``index``
        (0-based).
    """
    if count < 1:
        raise SANValidationError(f"replicate() requires count >= 1, got {count}")
    replicas = [
        rename_model(model, prefix_format.format(index=index), shared)
        for index in range(count)
    ]
    return join(name or f"Rep({model.name}, {count})", replicas)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _rename_activity(
    activity: Activity, prefix: str, rename: Callable[[str], str]
) -> Activity:
    input_arcs = [(rename(place), weight) for place, weight in activity.input_arcs]
    input_gates = [gate.renamed(prefix, rename) for gate in activity.input_gates]
    cases = [_rename_case(case, prefix, rename) for case in activity.cases]
    if isinstance(activity, TimedActivity):
        return TimedActivity(
            name=f"{prefix}{activity.name}",
            distribution=activity.distribution,
            input_arcs=input_arcs,
            input_gates=input_gates,
            cases=cases,
            reactivation=activity.reactivation,
        )
    if isinstance(activity, InstantaneousActivity):
        return InstantaneousActivity(
            name=f"{prefix}{activity.name}",
            input_arcs=input_arcs,
            input_gates=input_gates,
            cases=cases,
            rank=activity.rank,
        )
    raise SANValidationError(
        f"cannot rename activity {activity.name!r} of unknown type {type(activity)!r}"
    )


def _rename_case(case: Case, prefix: str, rename: Callable[[str], str]) -> Case:
    return Case(
        probability=case.probability,
        output_arcs=tuple((rename(place), weight) for place, weight in case.output_arcs),
        output_gates=tuple(gate.renamed(prefix, rename) for gate in case.output_gates),
        label=case.label,
    )


def shared_place_names(models: Iterable[SANModel]) -> Set[str]:
    """Place names that appear in more than one of the given models."""
    seen: Set[str] = set()
    shared: Set[str] = set()
    for model in models:
        names = {place.name for place in model.places}
        shared |= seen & names
        seen |= names
    return shared
