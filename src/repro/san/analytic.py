"""Analytical (exact) solution of Markovian SAN models.

For models whose timed activities are all exponential, the SAN is a
continuous-time Markov chain on its reachability graph
(:mod:`repro.san.statespace`).  :class:`AnalyticSolver` solves that chain
exactly -- no replications, no confidence intervals -- and evaluates the
same reward variables the simulative solver observes:

* **steady state**: a linear solve on the generator matrix,
* **transient state** at time ``t``: uniformization (Jensen's method),
* **first-passage times** and **expected sojourn times** until absorption:
  one sparse linear solve, which also yields the expected impulse counts
  (:class:`~repro.san.rewards.ActivityCounter`) and accumulated rate
  rewards (:class:`~repro.san.rewards.IntervalOfTime`) until absorption.

The solver mirrors the :class:`~repro.san.solver.SimulativeSolver`
constructor (model factory, reward factory, stop predicate, horizon,
confidence) and its :meth:`AnalyticSolver.solve` returns an
:class:`AnalyticResult` exposing the same reading interface as
:class:`~repro.san.solver.SolverResult` (``mean`` / ``interval`` /
``values`` / ``sample_size`` / ``n``), so experiments can switch solvers
transparently.  Reported intervals have zero half-width: the solution is
exact up to numerical linear algebra.

When to use which solver
------------------------
* **Analytic**: every timed activity exponential, and the state space
  small enough to enumerate.  Orders of magnitude faster than replication
  for small models, and exact -- the test suite uses it as an oracle for
  the simulative solver.
* **Simulative**: any distribution (the paper's bi-modal uniform fits,
  deterministic stages, Weibull, ...), or state spaces too large to
  enumerate.  This is why the paper itself used simulative solvers (§5).
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg
from scipy.stats import poisson

from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.rewards import (
    ActivityCounter,
    FirstPassageTime,
    InstantOfTime,
    IntervalOfTime,
    RewardVariable,
)
from repro.san.statespace import StateSpace, generate_state_space
from repro.stats.descriptive import ConfidenceInterval

ModelFactory = Callable[[], SANModel]
RewardFactory = Callable[[], Sequence[RewardVariable]]
MarkingPredicate = Callable[[Marking], bool]

#: Truncation tolerance of the uniformization (Poisson) series.
UNIFORMIZATION_EPSILON = 1e-12

#: Safety bound on uniformization series length (one sparse matrix-vector
#: product per term); roughly proportional to ``max_exit_rate * horizon``.
MAX_UNIFORMIZATION_TERMS = 1_000_000

#: Dense linear algebra below this state count, sparse above.
DENSE_STATE_LIMIT = 2_000


class AnalyticSolverError(RuntimeError):
    """Raised when a model cannot be solved analytically."""


@dataclass
class AnalyticResult:
    """Exact reward values of an analytic solution.

    Exposes the reading interface of
    :class:`~repro.san.solver.SolverResult` (``mean`` / ``interval`` /
    ``values`` / ``sample_size`` / ``n``) so downstream report code can
    consume either solver's output.  Intervals are degenerate (zero
    half-width): there is no sampling error to report.
    """

    rewards: Dict[str, float] = field(default_factory=dict)
    confidence: float = 0.90
    n_states: int = 0
    mode: str = "absorbing"
    solve_seconds: float = 0.0
    notes: Dict[str, str] = field(default_factory=dict)

    def mean(self, reward_name: str) -> float:
        """The exact value of the named reward."""
        return self.rewards.get(reward_name, math.nan)

    def values(self, reward_name: str) -> List[float]:
        """The value as a (possibly empty) list, mirroring ``SolverResult``."""
        value = self.mean(reward_name)
        return [] if math.isnan(value) else [value]

    def sample_size(self, reward_name: str) -> int:
        """1 when the reward has a finite value, 0 otherwise."""
        return len(self.values(reward_name))

    def interval(self, reward_name: str) -> ConfidenceInterval:
        """A degenerate (zero-width) interval around the exact value."""
        return ConfidenceInterval(
            mean=self.mean(reward_name),
            half_width=0.0,
            confidence=self.confidence,
            n=1,
        )

    @property
    def n(self) -> int:
        """Replication-count analogue; the analytic solution is one 'run'."""
        return 1


class AnalyticSolver:
    """Exact CTMC solution of an exponential SAN model.

    Parameters
    ----------
    model_factory:
        Callable building the model (invoked once; the analytic solution
        needs no fresh copies).
    reward_factory:
        Callable building the reward variables to evaluate.  Supported
        kinds: :class:`~repro.san.rewards.FirstPassageTime`,
        :class:`~repro.san.rewards.IntervalOfTime`,
        :class:`~repro.san.rewards.InstantOfTime` and
        :class:`~repro.san.rewards.ActivityCounter`.
    stop_predicate:
        Marking predicate terminating a run.  When given (and reachable),
        rewards are evaluated *until absorption* in a stop state -- the
        analytic analogue of the simulative replication ending at the
        predicate.  When absent, rewards are evaluated over the fixed
        horizon ``[0, max_time]``.
    max_time:
        Horizon of the fixed-horizon mode (ignored once a reachable stop
        predicate makes the run almost-surely terminating).
    seed:
        Accepted (and ignored) for signature compatibility with
        :class:`~repro.san.solver.SimulativeSolver`.
    confidence:
        Confidence level stamped on the (degenerate) reported intervals.
    initial_marking_factory:
        Optional override of the model's initial marking.
    max_states:
        Safety bound forwarded to the state-space generator.
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        reward_factory: RewardFactory,
        stop_predicate: Optional[MarkingPredicate] = None,
        max_time: float = 1_000.0,
        seed: Optional[int] = 0,
        confidence: float = 0.90,
        initial_marking_factory: Optional[Callable[[SANModel], Marking]] = None,
        max_states: int = 200_000,
    ) -> None:
        self.model_factory = model_factory
        self.reward_factory = reward_factory
        self.stop_predicate = stop_predicate
        self.max_time = max_time
        self.confidence = confidence
        self.initial_marking_factory = initial_marking_factory
        self.max_states = max_states
        self._model: Optional[SANModel] = None
        self._space: Optional[StateSpace] = None

    # ------------------------------------------------------------------
    # State space
    # ------------------------------------------------------------------
    @property
    def model(self) -> SANModel:
        """The model (built lazily, once)."""
        if self._model is None:
            self._model = self.model_factory()
        return self._model

    @property
    def state_space(self) -> StateSpace:
        """The reachability graph (generated lazily, once)."""
        if self._space is None:
            initial = (
                self.initial_marking_factory(self.model)
                if self.initial_marking_factory is not None
                else None
            )
            self._space = generate_state_space(
                self.model,
                stop_predicate=self.stop_predicate,
                initial_marking=initial,
                max_states=self.max_states,
            )
        return self._space

    # ------------------------------------------------------------------
    # Core numerics
    # ------------------------------------------------------------------
    def steady_state(self) -> np.ndarray:
        """The stationary distribution pi solving ``pi Q = 0``, ``sum pi = 1``.

        Intended for ergodic (irreducible) models such as the exponential
        failure-detector modules; on absorbing chains the result
        concentrates on the closed states reachable from the initial
        distribution.
        """
        space = self.state_space
        n = space.n_states
        q_transposed = space.generator().transpose().tocsr()
        if n <= DENSE_STATE_LIMIT:
            stacked = np.vstack([q_transposed.toarray(), np.ones((1, n))])
            rhs = np.zeros(n + 1)
            rhs[-1] = 1.0
            solution, *_ = np.linalg.lstsq(stacked, rhs, rcond=None)
        else:
            # Replace the last balance equation with the normalisation row;
            # nonsingular for irreducible chains.
            modified = q_transposed.tolil()
            modified[n - 1, :] = np.ones(n)
            rhs = np.zeros(n)
            rhs[-1] = 1.0
            solution = sparse_linalg.spsolve(modified.tocsr(), rhs)
        if not np.all(np.isfinite(solution)):
            raise AnalyticSolverError(
                "steady-state solve produced non-finite probabilities "
                "(reducible chain?)"
            )
        solution = np.clip(solution, 0.0, None)
        total = float(solution.sum())
        if total <= 0:
            raise AnalyticSolverError("steady-state solve produced a zero vector")
        return solution / total

    def transient(self, t: float) -> np.ndarray:
        """The state distribution pi(t) by uniformization."""
        return self._uniformize(t, accumulate=False)

    def accumulated(self, t: float) -> np.ndarray:
        """The expected time spent in each state over ``[0, t]``.

        This is the integral of the transient distribution; rate rewards
        over a horizon are dot products against it.
        """
        return self._uniformize(t, accumulate=True)

    def _uniformize(self, t: float, accumulate: bool) -> np.ndarray:
        if t < 0:
            raise ValueError(f"time must be >= 0, got {t}")
        space = self.state_space
        pi0 = space.initial_distribution
        if t == 0:
            return pi0 * 0.0 if accumulate else pi0.copy()
        rate = float(space.exit_rates().max(initial=0.0))
        if rate <= 0.0:
            # Every state is absorbing: the distribution never moves.
            return pi0 * t if accumulate else pi0.copy()
        # Uniformized DTMC:  P = I + Q / rate.
        p_matrix = sparse.identity(space.n_states, format="csr") + (
            space.generator() * (1.0 / rate)
        )
        poisson_mean = rate * t
        terms = int(poisson.ppf(1.0 - UNIFORMIZATION_EPSILON, poisson_mean)) + 2
        if terms > MAX_UNIFORMIZATION_TERMS:
            raise AnalyticSolverError(
                f"uniformization needs ~{terms} terms (max exit rate {rate:g} "
                f"x horizon {t:g}); shorten the horizon or use the "
                "simulative solver"
            )
        ks = np.arange(terms)
        if accumulate:
            # integral_0^t pi(s) ds = (1/rate) * sum_k P(N > k) pi0 P^k.
            weights = poisson.sf(ks, poisson_mean) / rate
        else:
            weights = poisson.pmf(ks, poisson_mean)
        vector = pi0.copy()
        result = weights[0] * vector
        for k in range(1, terms):
            vector = vector @ p_matrix
            if weights[k] > 0.0:
                result = result + weights[k] * vector
        return result

    # ------------------------------------------------------------------
    # Absorption analysis
    # ------------------------------------------------------------------
    def expected_sojourn_times(self, target_mask: np.ndarray) -> np.ndarray:
        """Expected total time spent in each non-target state before hitting
        the target set, starting from the initial distribution.

        Returns a full-length vector (zero on target states).  Non-finite
        entries mean the target set is not almost-surely reachable.
        """
        space = self.state_space
        n = space.n_states
        target_mask = np.asarray(target_mask, dtype=bool)
        if target_mask.shape != (n,):
            raise ValueError("target_mask must have one entry per state")
        transient = ~target_mask
        if not transient.any():
            return np.zeros(n)
        q_tt = space.generator()[transient][:, transient]
        p0_t = space.initial_distribution[transient]
        tau = np.full(int(transient.sum()), np.inf)
        if p0_t.sum() > 0:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")  # singular-matrix warnings
                try:
                    if q_tt.shape[0] <= DENSE_STATE_LIMIT:
                        tau = np.linalg.solve(
                            q_tt.toarray().T, -p0_t
                        )
                    else:
                        tau = sparse_linalg.spsolve(
                            q_tt.transpose().tocsr(), -p0_t
                        )
                except (np.linalg.LinAlgError, RuntimeError):
                    tau = np.full(int(transient.sum()), np.inf)
        else:
            tau = np.zeros(int(transient.sum()))
        full = np.zeros(n)
        full[transient] = tau
        return full

    def _backward_reachable(self, target_mask: np.ndarray) -> np.ndarray:
        """Mask of states from which the target set is reachable."""
        space = self.state_space
        predecessors: Dict[int, list] = {}
        for transition in space.transitions:
            if transition.source != transition.target:
                predecessors.setdefault(transition.target, []).append(
                    transition.source
                )
        reachable = np.asarray(target_mask, dtype=bool).copy()
        frontier = list(np.flatnonzero(reachable))
        while frontier:
            state = frontier.pop()
            for predecessor in predecessors.get(state, ()):
                if not reachable[predecessor]:
                    reachable[predecessor] = True
                    frontier.append(predecessor)
        return reachable

    def hitting_probability(self, target_mask: np.ndarray) -> float:
        """Probability of ever entering the target set from the start.

        Solved from the standard hitting-probability system.  States that
        cannot reach the target at all (absorbing states, closed recurrent
        classes) have probability exactly zero and are excluded up front,
        which keeps the linear system nonsingular.
        """
        space = self.state_space
        n = space.n_states
        target_mask = np.asarray(target_mask, dtype=bool)
        probability = float(space.initial_distribution[target_mask].sum())
        live = ~target_mask & ~space.absorbing & self._backward_reachable(
            target_mask
        )
        if not live.any():
            return min(probability, 1.0)
        rate_to_target = np.zeros(n)
        for transition in space.transitions:
            if live[transition.source] and target_mask[transition.target]:
                rate_to_target[transition.source] += transition.rate
        q_ll = space.generator()[live][:, live]
        if q_ll.shape[0] <= DENSE_STATE_LIMIT:
            h = np.linalg.solve(q_ll.toarray(), -rate_to_target[live])
        else:
            h = sparse_linalg.spsolve(q_ll.tocsr(), -rate_to_target[live])
        h = np.clip(h, 0.0, 1.0)
        probability += float(space.initial_distribution[live] @ h)
        return min(probability, 1.0)

    def first_passage_time(
        self, predicate: MarkingPredicate
    ) -> tuple[float, float]:
        """Mean hitting time of the predicate set and the hitting probability.

        The mean is taken from the initial distribution (zero for initial
        mass already in the set).  If the set is not almost-surely reached
        -- e.g. probability mass can be trapped in a dead marking first --
        the mean is infinite and the probability is the reachable mass.
        """
        space = self.state_space
        target_mask = np.asarray(
            [bool(predicate(marking)) for marking in space.markings()],
            dtype=bool,
        )
        if not target_mask.any():
            return math.nan, 0.0
        probability = self.hitting_probability(target_mask)
        if probability < 1.0 - 1e-9:
            warnings.warn(
                f"predicate set is reached with probability {probability:.6g} "
                "< 1; the mean first-passage time is infinite",
                stacklevel=2,
            )
            return math.inf, probability
        tau = self.expected_sojourn_times(target_mask)
        transient = ~target_mask
        if not np.all(np.isfinite(tau[transient])):
            return math.inf, probability
        return float(tau.sum()), probability

    # ------------------------------------------------------------------
    # Reward evaluation
    # ------------------------------------------------------------------
    def solve(self) -> AnalyticResult:
        """Evaluate every reward variable exactly.

        With a reachable stop predicate, rewards accumulate *until
        absorption* (the analytic analogue of a replication ending at the
        predicate); otherwise they accumulate over ``[0, max_time]``.
        """
        started = time.perf_counter()  # repro: ignore[DET004] solve_seconds diagnostic; never feeds solution values
        space = self.state_space
        rewards = list(self.reward_factory())
        absorbing_mode = bool(
            self.stop_predicate is not None and space.stop_mask.any()
        )
        result = AnalyticResult(
            confidence=self.confidence,
            n_states=space.n_states,
            mode="absorbing" if absorbing_mode else "horizon",
        )

        sojourn: Optional[np.ndarray] = None
        occupancy: Optional[np.ndarray] = None
        if absorbing_mode:
            # A replication ends at the stop predicate *or* in a dead
            # marking, so accumulated rewards are weighted by the time
            # spent before absorption of any kind -- matching the
            # executor, which finalises rewards in both cases.
            sojourn = self.expected_sojourn_times(space.absorbing)
            if not np.all(np.isfinite(sojourn)):
                result.notes["absorption"] = (
                    "absorption is not almost-sure (recurrent non-absorbing "
                    "states); until-absorption rewards are infinite"
                )
        else:
            occupancy = self.accumulated(self.max_time)

        for reward in rewards:
            result.rewards[reward.name] = self._evaluate(
                reward, absorbing_mode, sojourn, occupancy, result
            )
        result.solve_seconds = time.perf_counter() - started  # repro: ignore[DET004] solve_seconds diagnostic; never feeds solution values
        return result

    def _evaluate(
        self,
        reward: RewardVariable,
        absorbing_mode: bool,
        sojourn: Optional[np.ndarray],
        occupancy: Optional[np.ndarray],
        result: AnalyticResult,
    ) -> float:
        space = self.state_space
        markings = space.markings()

        if isinstance(reward, FirstPassageTime):
            mean, _probability = self.first_passage_time(reward.predicate)
            return mean

        if isinstance(reward, ActivityCounter):
            completion_rates = space.completion_rate_matrix(reward.activity_names)
            weights = sojourn if absorbing_mode else occupancy
            assert weights is not None
            # The executor notifies rewards of the instantaneous firings
            # that stabilise the initial marking, before any time passes.
            initial = sum(
                count
                for name, count in space.initial_completions.items()
                if reward.activity_names is None or name in reward.activity_names
            )
            return float((completion_rates * weights).sum()) + initial

        if isinstance(reward, IntervalOfTime):
            rates = np.asarray(
                [float(reward.rate(marking)) for marking in markings]
            )
            weights = sojourn if absorbing_mode else occupancy
            assert weights is not None
            integral = float((rates * weights).sum())
            if not reward.normalize:
                return integral
            elapsed = float(weights.sum()) if absorbing_mode else self.max_time
            if elapsed <= 0:
                return 0.0
            # E[A/T] is approximated by E[A]/E[T] in absorbing mode; exact
            # in horizon mode where the elapsed time is deterministic.
            return integral / elapsed

        if isinstance(reward, InstantOfTime):
            distribution = self.transient(reward.at_time)
            values = np.asarray(
                [float(reward.function(marking)) for marking in markings]
            )
            return float((distribution * values).sum())

        raise AnalyticSolverError(
            f"reward {reward.name!r} of type {type(reward).__name__} has no "
            "analytic evaluation; supported kinds are FirstPassageTime, "
            "IntervalOfTime, InstantOfTime and ActivityCounter"
        )
