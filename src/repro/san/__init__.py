"""Stochastic Activity Network (SAN) modeling and simulation framework.

This package is the repository's stand-in for UltraSAN / Möbius, the
(closed, academic) tool the paper used to build and solve its models
(§3.1).  It provides the full SAN vocabulary:

* **Places** holding non-negative integer markings
  (:class:`~repro.san.places.Place`).
* **Timed activities** with arbitrary duration distributions
  (exponential, deterministic, uniform, Weibull, the paper's bi-modal
  uniform, ...) and **instantaneous activities**, both with probabilistic
  **cases** (:mod:`repro.san.activities`).
* **Input gates** (enabling predicate + marking transformation) and
  **output gates** (marking transformation) (:mod:`repro.san.gates`).
* **Composed models** via ``Join`` and ``Rep`` with shared places
  (:mod:`repro.san.composition`), mirroring UltraSAN's composition
  operators.
* **Reward variables** (first-passage times, interval-of-time and
  instant-of-time rewards, activity counters) (:mod:`repro.san.rewards`).
* A **simulative solver** running independent replications until a target
  confidence-interval precision is reached (:mod:`repro.san.solver`)
  -- the paper had to use simulative solvers because of its
  non-exponential distributions (§5).  Replications run one at a time
  through the scalar executor (:mod:`repro.san.executor`) or lock-step
  in batches through a compiled form of the model
  (:mod:`repro.san.compiled`, :mod:`repro.san.batched`) with
  bit-identical results (``solve(..., strategy="batched")``).
* An **analytic solver** for the exponential corner of the model space:
  reachability-graph state-space generation
  (:mod:`repro.san.statespace`) and exact CTMC solution -- steady state,
  transient via uniformization, first-passage times
  (:mod:`repro.san.analytic`).  It is the exact oracle the simulative
  solver is cross-validated against.

The execution semantics follow the standard SAN definition: an activity is
enabled when every input arc is satisfied and every input-gate predicate
holds; enabled instantaneous activities fire immediately (before any timed
activity); an enabled timed activity samples an activation delay and fires
when it elapses, unless it was disabled in the meantime (in which case it is
*reactivated* -- a fresh delay is sampled the next time it becomes enabled).
On firing, a case is chosen according to the case probabilities, input arcs
and gates consume/transform the marking, then the chosen case's output arcs
and gates are applied.
"""

from repro.san.activities import Activity, Case, InstantaneousActivity, TimedActivity
from repro.san.analytic import AnalyticResult, AnalyticSolver, AnalyticSolverError
from repro.san.batched import BatchedSANExecutor
from repro.san.compiled import CompiledSANModel, RowMarking, compile_model
from repro.san.composition import join, rename_model, replicate
from repro.san.executor import SANExecutionError, SANExecutor
from repro.san.gates import InputGate, OutputGate
from repro.san.marking import FrozenMarking, Marking
from repro.san.model import SANModel, SANValidationError
from repro.san.places import Place
from repro.san.statespace import (
    NonMarkovianModelError,
    StateSpace,
    StateSpaceError,
    Transition,
    generate_state_space,
)
from repro.san.rewards import (
    ActivityCounter,
    FirstPassageTime,
    InstantOfTime,
    IntervalOfTime,
    RewardVariable,
)
from repro.san.solver import ReplicationResult, SimulativeSolver, SolverResult

__all__ = [
    "Activity",
    "ActivityCounter",
    "AnalyticResult",
    "AnalyticSolver",
    "AnalyticSolverError",
    "BatchedSANExecutor",
    "Case",
    "CompiledSANModel",
    "FirstPassageTime",
    "FrozenMarking",
    "InputGate",
    "InstantOfTime",
    "InstantaneousActivity",
    "IntervalOfTime",
    "Marking",
    "NonMarkovianModelError",
    "OutputGate",
    "Place",
    "ReplicationResult",
    "RewardVariable",
    "RowMarking",
    "SANExecutionError",
    "SANExecutor",
    "SANModel",
    "SANValidationError",
    "SimulativeSolver",
    "SolverResult",
    "StateSpace",
    "StateSpaceError",
    "TimedActivity",
    "Transition",
    "compile_model",
    "generate_state_space",
    "join",
    "rename_model",
    "replicate",
]
