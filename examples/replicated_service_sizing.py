"""Sizing an actively replicated service: how much does each replica cost?

The paper motivates consensus latency through active replication (§2.3):
client requests are atomically broadcast to all replicas, atomic broadcast
is implemented with consensus, and the first replica to decide answers the
client.  The consensus latency is therefore a lower bound on the response
time added by the replication degree.

This example sweeps the number of replicas (3, 5, 7, 9, 11 -- the paper's
range), measures the consensus latency of the crash-free case and of the
worst non-suspecting failure case (the coordinator replica is down), and
prints the latency cost of each additional pair of replicas.

Run with::

    python examples/replicated_service_sizing.py
"""

from __future__ import annotations

from repro import MeasurementConfig, MeasurementRunner, Scenario
from repro.cluster import ClusterConfig

EXECUTIONS = 150
REPLICA_COUNTS = (3, 5, 7, 9, 11)


def measure(n_replicas: int, scenario, seed: int) -> float:
    config = MeasurementConfig(
        cluster=ClusterConfig(n_processes=n_replicas, seed=seed),
        scenario=scenario,
        executions=EXECUTIONS,
    )
    return MeasurementRunner(config).run().mean_latency_ms


def main() -> None:
    print("replicas   crash-free [ms]   coordinator down [ms]   marginal cost [ms]")
    previous = None
    for index, n in enumerate(REPLICA_COUNTS):
        healthy = measure(n, Scenario.no_failures(), seed=100 + index)
        degraded = measure(n, Scenario.coordinator_crash(), seed=200 + index)
        marginal = "" if previous is None else f"{healthy - previous:+.3f}"
        print(f"{n:<10d} {healthy:15.3f}   {degraded:21.3f}   {marginal:>18}")
        previous = healthy
    print(
        "\nEach additional pair of replicas adds roughly a constant amount of"
        " latency (the paper's Fig. 7a): tolerating one more crash costs"
        " about a third of a millisecond per request on a LAN-class cluster."
    )


if __name__ == "__main__":
    main()
