"""Quickstart: measure and simulate the latency of ◇S consensus.

This example walks through the paper's combined methodology on the smallest
interesting configuration (3 processes, no failures):

1. measure the consensus latency on the simulated cluster;
2. measure the end-to-end message delays and fit the SAN network parameters;
3. simulate the SAN model of the same scenario;
4. compare the two results.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MeasurementConfig,
    MeasurementRunner,
    SANParameters,
    Scenario,
    compare_results,
    measure_end_to_end_delays,
)
from repro.cluster import ClusterConfig
from repro.sanmodels import ConsensusSANExperiment


def main() -> None:
    cluster = ClusterConfig(n_processes=3, seed=1)

    # 1. Measurement: 200 consensus executions, 10 ms apart (as in §4).
    measurement = MeasurementRunner(
        MeasurementConfig(
            cluster=cluster,
            scenario=Scenario.no_failures(),
            executions=200,
        )
    ).run()
    print("--- measurement (simulated cluster) ---")
    print(f"executions : {len(measurement.latencies_ms)}")
    print(f"mean       : {measurement.mean_latency_ms:.3f} ms")
    print(f"90% CI     : ±{measurement.summary.ci.half_width:.3f} ms")
    print(f"median     : {measurement.cdf().median():.3f} ms")

    # 2. Calibration inputs: end-to-end delays of unicast/broadcast messages.
    delays = measure_end_to_end_delays(cluster.with_seed(2), probes=500)
    parameters = SANParameters.from_measured_delays(
        unicast_delays=delays.unicast_delays,
        broadcast_delays_by_n={3: delays.broadcast_delays},
        t_send_ms=0.025,
    )
    print("\n--- SAN network parameters (fitted from measured delays) ---")
    print(f"unicast end-to-end fit : {parameters.unicast_fit}")

    # 3. SAN simulation of the same scenario.
    simulation = ConsensusSANExperiment(
        n_processes=3, parameters=parameters, seed=3
    ).run(replications=300)
    print("\n--- SAN simulation ---")
    print(f"replications : {simulation.replications}")
    print(f"mean         : {simulation.mean_ms:.3f} ms")
    print(f"90% CI       : ±{simulation.interval.half_width:.3f} ms")

    # 4. Validation: do the two approaches agree?
    report = compare_results(
        measurement.latencies_ms, simulation.latencies_ms, label="n=3, no failures"
    )
    print("\n--- validation ---")
    print(report)


if __name__ == "__main__":
    main()
