"""Crash scenarios: what does a crashed process cost? (Table 1 of the paper)

Three scenarios are measured on the simulated cluster and simulated with the
SAN model, for 3 and 5 processes:

* **no crash** -- the baseline;
* **coordinator crash** -- the first coordinator is down from the start, so
  the algorithm needs a second round (latency goes up);
* **participant crash** -- a non-coordinator is down; it sends no messages,
  so there is *less* contention and (for n >= 5) the latency goes down.

The example also reproduces the paper's n = 3 curiosity: in the
*measurements*, the participant crash is slightly slower than the crash-free
case (the coordinator's proposal to the dead participant delays the copy
sent to the live one), while the SAN *model* -- which sends the proposal as
a single broadcast -- predicts the opposite.

Run with::

    python examples/crash_scenarios.py
"""

from __future__ import annotations

from repro import MeasurementConfig, MeasurementRunner, Scenario
from repro.cluster import ClusterConfig
from repro.sanmodels import ConsensusSANExperiment

EXECUTIONS = 200
REPLICATIONS = 300

SCENARIOS = (
    ("no crash", Scenario.no_failures(), ()),
    ("coordinator crash", Scenario.coordinator_crash(), (0,)),
    ("participant crash", Scenario.participant_crash(1), (1,)),
)


def measure(n: int, scenario: Scenario, seed: int) -> float:
    config = MeasurementConfig(
        cluster=ClusterConfig(n_processes=n, seed=seed),
        scenario=scenario,
        executions=EXECUTIONS,
    )
    return MeasurementRunner(config).run().mean_latency_ms


def simulate(n: int, crashed: tuple, seed: int) -> float:
    experiment = ConsensusSANExperiment(n_processes=n, crashed=crashed, seed=seed)
    return experiment.run(replications=REPLICATIONS).mean_ms


def main() -> None:
    print("latency [ms]          n=3 meas.   n=3 sim.   n=5 meas.   n=5 sim.")
    for index, (label, scenario, crashed) in enumerate(SCENARIOS):
        cells = []
        for n in (3, 5):
            cells.append(f"{measure(n, scenario, seed=10 * index + n):9.3f}")
            cells.append(f"{simulate(n, crashed, seed=20 * index + n):9.3f}")
        print(f"{label:<20}  " + "  ".join(cells))
    print(
        "\nExpected shapes (paper, Table 1): the coordinator crash is the most"
        " expensive scenario everywhere; the participant crash is cheaper"
        " than the crash-free case for n = 5; for n = 3 the measured"
        " participant-crash latency is slightly *higher* while the simulated"
        " one is lower (single-broadcast simplification of the SAN model)."
    )


if __name__ == "__main__":
    main()
