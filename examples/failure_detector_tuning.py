"""Tuning the heartbeat failure detector: picking the timeout T.

The class-3 experiments of the paper (§5.4) expose the fundamental trade-off
of timeout-based failure detection:

* a *small* timeout detects real crashes quickly but produces frequent wrong
  suspicions (small mistake recurrence time T_MR), which force the consensus
  algorithm into extra rounds and inflate its latency;
* a *large* timeout almost never errs (T_MR grows sharply), so the
  crash-free latency is optimal -- but a real crash would go undetected for
  a long time.

This example sweeps the timeout for a 3-process cluster with the heartbeat
period fixed at Th = 0.7 T, reports the measured QoS metrics (Figure 8) and
the consensus latency (Figure 9a), and suggests the smallest timeout whose
latency is within 10% of the asymptotic (no-suspicion) latency.

Run with::

    python examples/failure_detector_tuning.py
"""

from __future__ import annotations

import math

from repro.experiments.figure8 import measure_class3_point
from repro.experiments.settings import ExperimentSettings
from repro import MeasurementConfig, MeasurementRunner, Scenario
from repro.cluster import ClusterConfig

TIMEOUTS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)
N_PROCESSES = 3


def main() -> None:
    settings = ExperimentSettings(class3_executions=60, seed=7)

    baseline = MeasurementRunner(
        MeasurementConfig(
            cluster=ClusterConfig(n_processes=N_PROCESSES, seed=99),
            scenario=Scenario.no_failures(),
            executions=100,
        )
    ).run().mean_latency_ms
    print(f"crash-free latency without suspicions: {baseline:.3f} ms\n")

    print("T [ms]   Th [ms]   T_MR [ms]   T_M [ms]   consensus latency [ms]")
    recommended = None
    for index, timeout in enumerate(TIMEOUTS_MS):
        point = measure_class3_point(
            settings, N_PROCESSES, timeout, point_seed=1000 + index
        )
        latency = (
            sum(point.latencies_ms) / len(point.latencies_ms)
            if point.latencies_ms
            else float("nan")
        )
        tmr = point.mistake_recurrence_time_ms
        tmr_text = f"{tmr:9.1f}" if math.isfinite(tmr) else "      inf"
        print(
            f"{timeout:6.1f}   {0.7 * timeout:7.2f}   {tmr_text}   "
            f"{point.mistake_duration_ms:8.2f}   {latency:22.3f}"
        )
        if recommended is None and latency <= 1.10 * baseline:
            recommended = timeout

    if recommended is not None:
        print(
            f"\nsmallest timeout whose latency stays within 10% of the"
            f" no-suspicion latency: T = {recommended:.0f} ms"
            f" (detection time after a real crash is then roughly T)"
        )


if __name__ == "__main__":
    main()
