"""Trace-intelligence walkthrough: from event logs to an explanation.

Runs the ``traceanalysis`` campaign at smoke scale -- one faulted sweep
point, re-measured over a handful of replications where every *odd*
replication additionally crashes and recovers the coordinator -- and then
walks the analysis pipeline by hand:

1. the per-replication feature vectors cluster into failure modes
   (crashed-coordinator replications separate from nominal ones);
2. the worst replication's happens-before graph is sliced backward from
   the failure detector's suspicion of the crashed coordinator, showing
   the injected crash inside the causal slice;
3. diffing the worst log against a nominal exemplar yields a short,
   ordered explanation of what the anomalous run did differently.

Trace collection is opt-in and purely observational, so the measured
latencies are bit-identical with tracing on or off.

Run with::

    PYTHONPATH=src python examples/trace_analysis.py
"""

from __future__ import annotations

from repro.experiments.settings import ExperimentSettings
from repro.experiments.trace_analysis import (
    N_PROCESSES,
    run_trace_analysis,
)
from repro.traces import CRASH, build_hb_graph
from repro.traces.diff import diff_logs


def main() -> None:
    """Run the smoke-scale campaign and explain the worst replication."""
    settings = ExperimentSettings.smoke()
    result = run_trace_analysis(settings)

    print(f"traced replications: {len(result.replications)}")
    print()

    print("discovered clusters (most anomalous first):")
    for info in result.clusters:
        members = ", ".join(str(m) for m in info["members"])
        modes = info["crash_injected"]  # distinct values among the members
        if modes == [True]:
            kind = "crashed coordinator"
        elif modes == [False]:
            kind = "nominal"
        else:
            kind = "mixed"
        print(
            f"  cluster {info['label']}: {info['size']} replications "
            f"[{members}] -- {kind} (exemplar {info['exemplar']})"
        )
    if result.noise:
        print(f"  noise: {', '.join(str(m) for m in result.noise)}")
    print()

    worst = result.replications[result.worst]
    nominal = result.replications[result.nominal_exemplar]
    print(
        f"worst replication: #{worst.replication} "
        f"(mean latency {worst.mean_latency_ms:.3f} ms, "
        f"{worst.undecided} undecided, crash injected: {worst.crash_injected})"
    )

    # Re-derive the causal slice the experiment reports, to show the API.
    graph = build_hb_graph(worst.event_log, n_processes=N_PROCESSES)
    print(
        f"anchor: {result.anchor_kind} at {result.anchor_time_ms:.3f} ms; "
        f"causal slice covers {result.slice_size} of "
        f"{len(worst.event_log)} events"
    )
    crash = graph.find_first(kind=CRASH)
    if crash is not None:
        print(
            f"injected fault in slice: {result.fault_in_slice} "
            f"(crash at {graph.events[crash].time_ms:.3f} ms)"
        )
    print()

    print(
        f"minimal explanation vs nominal replication "
        f"#{nominal.replication}:"
    )
    diff = diff_logs(worst.event_log, nominal.event_log, max_steps=10)
    for step in diff.steps:
        print(
            f"  {step.first_time_ms:9.3f} ms  "
            f"{step.description:<44s} ({step.delta:+d})"
        )


if __name__ == "__main__":
    main()
