"""Analytic vs simulative solution of the same SAN model.

The paper solved its models simulatively because the fitted activity-time
distributions are not exponential (§5).  In the *exponential corner* of
the model space a SAN is a continuous-time Markov chain and can be solved
exactly -- orders of magnitude faster than replication, with no
confidence-interval error at all.  This example:

1. builds the exponential (Markovian) variant of the n = 3 consensus
   model -- same places, activities and topology, exponential stage
   distributions with the calibrated means;
2. solves it analytically (reachability graph + exact first-passage
   solve) and simulatively (1000 replications);
3. checks that the exact latency falls inside the simulative 95%
   confidence interval and reports the speedup;
4. shows that the analytic solver *refuses* the paper's actual
   (bi-modal uniform) model -- the reason the paper needed simulation.

Run with::

    python examples/analytic_vs_simulative.py
"""

from __future__ import annotations

import time

from repro.san import (
    ActivityCounter,
    AnalyticSolver,
    NonMarkovianModelError,
    SimulativeSolver,
)
from repro.sanmodels import (
    build_consensus_model,
    consensus_stop_predicate,
    exponential_consensus_model,
    latency_reward,
)


def model_factory():
    return exponential_consensus_model(3)


def reward_factory():
    return [latency_reward(), ActivityCounter(name="completions")]


def main() -> None:
    # 1 + 2a. Exact solution on the reachability graph.
    analytic = AnalyticSolver(
        model_factory=model_factory,
        reward_factory=reward_factory,
        stop_predicate=consensus_stop_predicate,
        confidence=0.95,
    )
    started = time.perf_counter()
    exact = analytic.solve()
    analytic_seconds = time.perf_counter() - started
    print("--- analytic (exact CTMC) ---")
    print(analytic.state_space.summary())
    print(f"latency     : {exact.mean('latency'):.4f} ms (exact)")
    print(f"completions : {exact.mean('completions'):.2f} (expected)")
    print(f"solved in   : {analytic_seconds * 1e3:.1f} ms")

    # 2b. Simulative solution of the *same* model.
    simulative = SimulativeSolver(
        model_factory=model_factory,
        reward_factory=reward_factory,
        stop_predicate=consensus_stop_predicate,
        max_time=10_000.0,
        seed=17,
        confidence=0.95,
    )
    started = time.perf_counter()
    sampled = simulative.solve(replications=1000)
    simulative_seconds = time.perf_counter() - started
    interval = sampled.interval("latency")
    print("\n--- simulative (1000 replications) ---")
    print(f"latency     : {interval}")
    print(f"completions : {sampled.interval('completions')}")
    print(f"solved in   : {simulative_seconds:.2f} s")

    # 3. Agreement and speedup.
    print("\n--- comparison ---")
    inside = interval.contains(exact.mean("latency"))
    print(f"exact latency inside simulative 95% CI : {inside}")
    print(f"analytic speedup                       : "
          f"{simulative_seconds / analytic_seconds:.0f}x")

    # 4. The paper's actual model is not Markovian: the analytic solver
    #    refuses it with a clear error instead of a wrong answer.
    non_markovian = AnalyticSolver(
        model_factory=lambda: build_consensus_model(3),
        reward_factory=reward_factory,
        stop_predicate=consensus_stop_predicate,
    )
    print("\n--- the paper's bi-modal model ---")
    try:
        non_markovian.solve()
    except NonMarkovianModelError as error:
        print(f"analytic solver correctly refused: {error}")


if __name__ == "__main__":
    main()
