"""Fault-injection walkthrough: consensus under composable fault loads.

Runs the same consensus workload three ways:

1. fault-free (the paper's class-1 baseline);
2. under a composite fault load -- message loss, duplication, reordering
   delay-spikes and a crash-recovery of one participant -- reporting the
   transport's per-stage drop counters and the injector's fault trace;
3. the SAN model with the matching loss rate, solved **in parallel** over
   the worker pool (``jobs=2``) with bit-identical results to a serial run.

Run with::

    PYTHONPATH=src python examples/fault_injection.py
"""

from __future__ import annotations

from repro.core.measurement import MeasurementConfig, MeasurementRunner
from repro.core.scenarios import Scenario
from repro.core.simulation import SimulationConfig, SimulationRunner
from repro.experiments.settings import ExperimentSettings
from repro.faults import (
    CrashRecovery,
    DelaySpike,
    FaultLoad,
    MessageDuplication,
    MessageLoss,
)
from repro.sanmodels.parameters import SANParameters

EXECUTIONS = 60
LOSS_RATE = 0.03


def run_measurement(fault_load: FaultLoad | None) -> None:
    """One measurement experiment, with or without a fault load."""
    settings = ExperimentSettings.smoke()
    config = MeasurementConfig(
        cluster=settings.cluster_for(3, point_seed=42),
        scenario=Scenario.no_failures(),
        executions=EXECUTIONS,
        fault_load=fault_load,
    )
    runner = MeasurementRunner(config)
    result = runner.run()
    label = fault_load.label() if fault_load else "fault-free"
    print(f"--- {label} ---")
    print(f"mean latency : {result.mean_latency_ms:.3f} ms "
          f"({result.undecided} undecided)")
    print(f"messages     : {result.messages_sent} sent, "
          f"{result.messages_delivered} delivered, "
          f"{result.messages_dropped} dropped, "
          f"{result.messages_duplicated} duplicated")
    if result.drops_by_cause:
        for cause, count in sorted(result.drops_by_cause.items()):
            print(f"  drop {cause:<26s} {count}")
    if result.fault_stats is not None:
        counters = {k: v for k, v in result.fault_stats.as_dict().items() if v}
        print(f"fault stats  : {counters}")
        events = runner.cluster.fault_injector.events
        print(f"fault trace  : {len(events)} events; first few:")
        for event in events[:5]:
            print(f"  t={event.time_ms:8.3f} ms  {event.kind:<14s} {event.detail}")
    print()


def run_san_parallel() -> None:
    """SAN model with the matching loss rate, solved on a worker pool."""
    config = SimulationConfig(
        n_processes=3,
        scenario=Scenario.no_failures(),
        parameters=SANParameters().with_faults(loss_rate=LOSS_RATE),
        replications=60,
        seed=7,
    )
    serial = SimulationRunner(config).run(jobs=1)
    parallel = SimulationRunner(config).run(jobs=2)
    print("--- SAN model, loss_rate matched to the testbed ---")
    print(f"mean latency : {parallel.mean_latency_ms:.3f} ms "
          f"({parallel.undecided} undecided replications)")
    identical = serial.latencies_ms == parallel.latencies_ms
    print(f"jobs=1 vs jobs=2 bit-identical: {identical}")


def main() -> None:
    run_measurement(None)
    composite = FaultLoad.of(
        MessageLoss(rate=LOSS_RATE),
        MessageDuplication(rate=0.05),
        DelaySpike(rate=0.05, extra_low_ms=0.5, extra_high_ms=3.0),
        CrashRecovery(process_id=2, crash_at_ms=200.0, recover_at_ms=400.0),
        name="loss+dup+reorder+crash-recovery",
    )
    run_measurement(composite)
    run_san_parallel()


if __name__ == "__main__":
    main()
