"""Packaging metadata for the reproduction.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so that
``pip install -e .`` works in environments whose setuptools predates
PEP 660 editable installs.  Installing exposes the ``repro`` console
script; ``python -m repro`` works as well (with ``PYTHONPATH=src`` when
not installed).
"""

import re

from setuptools import find_packages, setup


def _package_version() -> str:
    """Read ``repro.__version__`` without importing (deps may be absent)."""
    with open("src/repro/__init__.py", encoding="utf-8") as handle:
        return re.search(r'^__version__ = "(.+?)"', handle.read(), re.M).group(1)


setup(
    name="repro-dsn2002-consensus",
    version=_package_version(),
    description=(
        "Reproduction of the DSN 2002 combined measurement/SAN-simulation "
        "study of Chandra-Toueg consensus"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    extras_require={
        # One shared install step for CI jobs: `pip install -e .[test]`.
        "test": [
            "pytest",
            "hypothesis",
            "pytest-benchmark",
            "pytest-cov",
            "pytest-randomly",
        ],
        "bench": ["pytest", "pytest-benchmark"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
