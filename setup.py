"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in environments whose setuptools predates PEP 660
editable installs (it falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
