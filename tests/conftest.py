"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.config import ClusterConfig, NetworkParameters, SchedulerParameters
from repro.des.simulator import Simulator
from repro.experiments.settings import ExperimentSettings


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=12345)


@pytest.fixture
def cluster_config() -> ClusterConfig:
    """A small 3-process cluster configuration with a fixed seed."""
    return ClusterConfig(n_processes=3, seed=42)


@pytest.fixture
def cluster_config_5() -> ClusterConfig:
    """A 5-process cluster configuration with a fixed seed."""
    return ClusterConfig(n_processes=5, seed=43)


@pytest.fixture
def quiet_scheduler_config() -> ClusterConfig:
    """A cluster whose OS scheduler introduces no jitter (deterministic timers)."""
    return ClusterConfig(
        n_processes=3,
        seed=7,
        scheduler=SchedulerParameters(
            quantum_ms=10.0,
            timer_granularity_ms=0.0,
            wakeup_jitter_ms=1e-9,
            preemption_probability=0.0,
        ),
    )


@pytest.fixture
def tiny_settings() -> ExperimentSettings:
    """Minimal experiment settings for generator smoke tests."""
    return ExperimentSettings(
        executions=15,
        class3_executions=10,
        replications=15,
        measured_process_counts=(3,),
        simulated_process_counts=(3,),
        class3_process_counts=(3,),
        timeouts_ms=(2.0, 20.0),
        t_send_candidates_ms=(0.01, 0.025),
        delay_probes=60,
        seed=1,
    )


@pytest.fixture
def fast_network() -> NetworkParameters:
    """Network parameters with reduced delays to speed up protocol tests."""
    return NetworkParameters(
        cpu_send_ms=0.02,
        cpu_receive_ms=0.03,
        stack_latency_fast_low_ms=0.01,
        stack_latency_fast_high_ms=0.02,
        stack_latency_slow_low_ms=0.03,
        stack_latency_slow_high_ms=0.08,
    )
