"""Tests of the discrete-event simulation loop."""

from __future__ import annotations

import pytest

from repro.des.simulator import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_executes_callbacks_in_time_order(sim):
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(9.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_events_fire_in_fifo_order(sim):
    order = []
    for label in ("first", "second", "third"):
        sim.schedule(2.0, order.append, label)
    sim.run()
    assert order == ["first", "second", "third"]


def test_priority_breaks_ties_before_fifo(sim):
    order = []
    sim.schedule(1.0, order.append, "late", priority=5)
    sim.schedule(1.0, order.append, "early", priority=-5)
    sim.run()
    assert order == ["early", "late"]


def test_run_until_stops_the_clock_at_the_horizon(sim):
    fired = []
    sim.schedule(3.0, fired.append, "x")
    sim.schedule(10.0, fired.append, "y")
    sim.run(until=5.0)
    assert fired == ["x"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["x", "y"]


def test_schedule_at_absolute_time(sim):
    times = []
    sim.schedule_at(4.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [4.5]


def test_scheduling_in_the_past_raises(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_execution(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    assert sim.cancel(event)
    sim.run()
    assert fired == []
    assert not sim.cancel(event)  # already cancelled


def test_callbacks_can_schedule_further_events(sim):
    seen = []

    def chain(count):
        seen.append(sim.now)
        if count > 0:
            sim.schedule(1.0, chain, count - 1)

    sim.schedule(1.0, chain, 3)
    sim.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_stop_interrupts_the_run(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, lambda: sim.stop())
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    # A subsequent run resumes with the remaining events.
    sim.run()
    assert fired == ["a", "b"]


def test_max_events_limits_execution(sim):
    fired = []
    for index in range(10):
        sim.schedule(index + 1.0, fired.append, index)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_events_processed_and_pending_counts(sim):
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_processed == 2


def test_call_now_runs_at_current_time(sim):
    times = []
    sim.schedule(2.0, lambda: sim.call_now(lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_run_until_with_empty_queue_advances_clock(sim):
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_reset_clears_pending_events(sim):
    sim.schedule(1.0, lambda: None)
    sim.reset()
    assert sim.pending_events == 0
    assert sim.now == 0.0


def test_reentrant_run_raises(sim):
    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_trace_hook_sees_every_event(sim):
    seen = []
    sim.add_trace_hook(lambda event: seen.append(event.time))
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert seen == [1.0, 2.0]


def test_peek_returns_next_event_time(sim):
    assert sim.peek() is None
    sim.schedule(3.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    assert sim.peek() == 1.0


# ----------------------------------------------------------------------
# reset() regressions: a reset simulator must behave like a fresh one
# ----------------------------------------------------------------------
def test_reset_restores_the_sequence_counter(sim):
    """Regression: reset() used to keep ``_seq``, so events scheduled after
    a reset carried different tie-breaker sequence numbers than the same
    events on a fresh simulator."""
    sim.schedule(1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.reset()
    fresh = Simulator(seed=12345)
    reset_events = [sim.schedule(2.0, lambda: None) for _ in range(3)]
    fresh_events = [fresh.schedule(2.0, lambda: None) for _ in range(3)]
    assert [e.seq for e in reset_events] == [e.seq for e in fresh_events] == [0, 1, 2]


def test_reset_clears_trace_hooks(sim):
    """Regression: reset() used to keep the trace hooks, so a reused
    simulator kept firing observers registered for the previous run."""
    seen = []
    sim.add_trace_hook(lambda event: seen.append(event.time))
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert seen == [1.0]
    sim.reset()
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert seen == [1.0]  # the stale hook did not fire again


def test_reset_invalidates_stale_event_handles(sim):
    event = sim.schedule(1.0, lambda: None)
    sim.reset()
    assert sim.pending_events == 0
    assert not event.cancel()  # already discarded; must not corrupt counters
    assert sim.pending_events == 0


# ----------------------------------------------------------------------
# pending_events live counter
# ----------------------------------------------------------------------
def test_pending_events_tracks_direct_and_simulator_cancellations(sim):
    events = [sim.schedule(index + 1.0, lambda: None) for index in range(3)]
    assert sim.pending_events == 3
    events[0].cancel()  # direct cancellation, bypassing sim.cancel()
    assert sim.pending_events == 2
    assert sim.cancel(events[1])
    assert sim.pending_events == 1
    assert not events[1].cancel()  # double-cancel must not decrement again
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0


def test_pending_events_counter_survives_a_reset_cycle(sim):
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    sim.reset()
    assert sim.pending_events == 0
    sim.schedule(1.0, lambda: None)
    assert sim.pending_events == 1
