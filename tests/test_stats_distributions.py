"""Tests of the parametric duration distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.distributions import (
    BimodalUniform,
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    Shifted,
    Uniform,
    Weibull,
    distribution_from_spec,
)

RNG = np.random.default_rng(1234)


def _sample_mean(dist, n=20_000):
    rng = np.random.default_rng(99)
    return float(np.mean([dist.sample(rng) for _ in range(n)]))


def test_constant_always_returns_its_value():
    dist = Constant(0.025)
    assert dist.sample(RNG) == 0.025
    assert dist.mean() == 0.025
    assert dist.variance() == 0.0


def test_constant_rejects_negative_values():
    with pytest.raises(ValueError):
        Constant(-1.0)


def test_uniform_bounds_and_moments():
    dist = Uniform(0.1, 0.3)
    samples = [dist.sample(RNG) for _ in range(2000)]
    assert all(0.1 <= x <= 0.3 for x in samples)
    assert dist.mean() == pytest.approx(0.2)
    assert dist.variance() == pytest.approx(0.04 / 12)
    assert _sample_mean(dist) == pytest.approx(0.2, rel=0.02)


def test_uniform_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        Uniform(1.0, 0.5)


def test_exponential_mean_and_rate():
    dist = Exponential(2.5)
    assert dist.mean() == 2.5
    assert dist.rate == pytest.approx(0.4)
    assert dist.variance() == pytest.approx(6.25)
    assert _sample_mean(dist) == pytest.approx(2.5, rel=0.05)


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        Exponential(0.0)


def test_weibull_moments():
    dist = Weibull(shape=2.0, scale=1.0)
    assert dist.mean() == pytest.approx(0.8862, rel=1e-3)
    assert _sample_mean(dist) == pytest.approx(dist.mean(), rel=0.05)


def test_normal_truncation_at_zero():
    dist = Normal(mu=0.01, sigma=0.05)
    samples = [dist.sample(RNG) for _ in range(2000)]
    assert all(x >= 0.0 for x in samples)


def test_lognormal_mean():
    dist = LogNormal(mu=0.0, sigma=0.5)
    assert _sample_mean(dist) == pytest.approx(dist.mean(), rel=0.05)


def test_mixture_mean_is_weighted_average():
    mixture = Mixture([(0.8, Constant(1.0)), (0.2, Constant(6.0))])
    assert mixture.mean() == pytest.approx(2.0)
    assert _sample_mean(mixture) == pytest.approx(2.0, rel=0.05)


def test_mixture_normalises_weights():
    mixture = Mixture([(2.0, Constant(1.0)), (2.0, Constant(3.0))])
    assert list(mixture.weights) == pytest.approx([0.5, 0.5])
    assert mixture.mean() == pytest.approx(2.0)


def test_mixture_variance_uses_law_of_total_variance():
    mixture = Mixture([(0.5, Constant(0.0)), (0.5, Constant(2.0))])
    assert mixture.variance() == pytest.approx(1.0)


def test_mixture_rejects_empty_and_nonpositive_weights():
    with pytest.raises(ValueError):
        Mixture([])
    with pytest.raises(ValueError):
        Mixture([(0.0, Constant(1.0))])


def test_bimodal_uniform_defaults_match_the_paper():
    dist = BimodalUniform()
    # 0.8 * mean(U[0.1,0.13]) + 0.2 * mean(U[0.145,0.35])
    assert dist.mean() == pytest.approx(0.8 * 0.115 + 0.2 * 0.2475)
    samples = [dist.sample(RNG) for _ in range(3000)]
    assert all(0.1 <= x <= 0.35 for x in samples)
    in_body = sum(1 for x in samples if x <= 0.13) / len(samples)
    assert in_body == pytest.approx(0.8, abs=0.05)


def test_bimodal_uniform_rejects_bad_probability():
    with pytest.raises(ValueError):
        BimodalUniform(p1=1.5)


def test_shifted_distribution_adds_offset():
    dist = Shifted(0.5, Constant(1.0))
    assert dist.sample(RNG) == 1.5
    assert dist.mean() == 1.5
    assert dist.variance() == 0.0


def test_distribution_from_spec_round_trips_each_kind():
    specs = [
        ({"kind": "constant", "value": 0.1}, Constant),
        ({"kind": "uniform", "low": 0.0, "high": 1.0}, Uniform),
        ({"kind": "exponential", "mean": 2.0}, Exponential),
        ({"kind": "weibull", "shape": 1.5, "scale": 2.0}, Weibull),
        ({"kind": "normal", "mu": 1.0, "sigma": 0.1}, Normal),
        ({"kind": "lognormal", "mu": 0.0, "sigma": 0.2}, LogNormal),
        ({"kind": "bimodal_uniform"}, BimodalUniform),
    ]
    for spec, expected_type in specs:
        assert isinstance(distribution_from_spec(spec), expected_type)


def test_distribution_from_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        distribution_from_spec({"kind": "zipf"})


@settings(max_examples=30, deadline=None)
@given(
    low=st.floats(min_value=0.0, max_value=10.0),
    width=st.floats(min_value=0.001, max_value=10.0),
)
def test_uniform_samples_respect_bounds(low, width):
    dist = Uniform(low, low + width)
    rng = np.random.default_rng(0)
    assert all(low <= dist.sample(rng) <= low + width for _ in range(50))


@settings(max_examples=30, deadline=None)
@given(mean=st.floats(min_value=0.001, max_value=100.0))
def test_exponential_samples_are_nonnegative(mean):
    dist = Exponential(mean)
    rng = np.random.default_rng(0)
    assert all(dist.sample(rng) >= 0.0 for _ in range(50))


# ----------------------------------------------------------------------
# Batched sampling: the contract the SAN executor's batched duration
# draws rely on -- a batch of n values is bit-identical to n successive
# scalar draws from the same stream, and leaves the generator in the
# same state.
# ----------------------------------------------------------------------
BATCHABLE = [
    Constant(0.25),
    Uniform(0.1, 0.35),
    Exponential(2.5),
    Weibull(1.7, 0.4),
    Normal(1.0, 0.3),
    LogNormal(0.2, 0.4),
    Shifted(0.05, Exponential(0.8)),
    Shifted(0.05, Shifted(0.01, Uniform(0.0, 1.0))),
    BimodalUniform(),
    Mixture([(0.3, Uniform(0.0, 1.0)), (0.5, Uniform(2.0, 3.0)), (0.2, Uniform(5.0, 5.5))]),
    Shifted(0.05, BimodalUniform()),
]


@pytest.mark.parametrize("dist", BATCHABLE, ids=lambda d: repr(d))
def test_sample_batch_is_bit_identical_to_scalar_draws(dist):
    from repro.stats.distributions import supports_batch

    assert supports_batch(dist)
    scalar_rng = np.random.default_rng(4242)
    batch_rng = np.random.default_rng(4242)
    singles = [dist.sample(scalar_rng) for _ in range(37)]
    batch = dist.sample_batch(batch_rng, 37)
    assert [float(value) for value in batch] == singles
    assert scalar_rng.bit_generator.state == batch_rng.bit_generator.state


def test_supports_batch_rejects_nonuniform_mixtures_and_unbatchable_bases():
    from repro.stats.distributions import supports_batch

    # Mixtures batch only when every component is a Uniform: any other
    # component consumes a data-dependent number of doubles per draw, so
    # no fixed-stride batch can replay the scalar bit stream.
    exponential_mixture = Mixture([(1.0, Exponential(1.0))])
    assert not supports_batch(exponential_mixture)
    assert not supports_batch(Shifted(0.1, exponential_mixture))
    with pytest.raises(TypeError):
        exponential_mixture.sample_batch(np.random.default_rng(0), 4)
    with pytest.raises(TypeError):
        Shifted(0.1, exponential_mixture).sample_batch(
            np.random.default_rng(0), 4
        )
    # ... while the paper's bimodal delay fit (all-Uniform) does batch.
    assert supports_batch(BimodalUniform())
    assert supports_batch(Shifted(0.1, BimodalUniform()))


def test_normal_sample_batch_truncates_at_zero():
    dist = Normal(0.0, 1.0)
    values = dist.sample_batch(np.random.default_rng(7), 64)
    assert (values >= 0.0).all()
