"""Seed-sweep property tests for :mod:`repro.stats`.

Three families of statistical contracts:

* **fitting round-trips** -- fitting a bi-modal uniform to samples drawn
  from a known bi-modal uniform recovers its parameters, across seeds;
* **EmpiricalCDF invariants** -- monotonicity, [0, 1] bounds, quantile /
  evaluate consistency, on arbitrary hypothesis-generated samples;
* **confidence-interval coverage** -- across many seeded trials on known
  distributions, the 90% Student-t interval contains the true mean about
  90% of the time.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import confidence_interval
from repro.stats.distributions import (
    BimodalUniform,
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    Shifted,
    Uniform,
    Weibull,
    distribution_from_spec,
    supports_batch,
)
from repro.stats.fitting import fit_bimodal_uniform


# ----------------------------------------------------------------------
# Fitting round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_bimodal_uniform_fit_round_trips_the_paper_distribution(seed):
    rng = np.random.default_rng(seed)
    true = BimodalUniform()  # the paper's unicast fit (§5.1)
    samples = [true.sample(rng) for _ in range(4000)]
    fitted = fit_bimodal_uniform(samples, body_probability=0.8)
    assert fitted.p1 == pytest.approx(0.8)
    # The outer boundaries are recovered tightly; the split between the
    # modes is the sample 0.8-quantile, which wanders a few hundredths
    # into the true distribution's [0.13, 0.145] density gap (and past it
    # under sampling noise).
    assert fitted.low1 == pytest.approx(0.1, abs=0.005)
    assert fitted.high2 == pytest.approx(0.35, abs=0.02)
    assert fitted.high1 == pytest.approx(0.13, abs=0.035)
    assert fitted.low2 >= fitted.high1
    # The fitted distribution reproduces the true moments closely.
    assert fitted.mean() == pytest.approx(true.mean(), rel=0.10)
    assert fitted.variance() == pytest.approx(true.variance(), rel=0.35)


@pytest.mark.parametrize("seed", range(5))
def test_bimodal_uniform_fit_round_trips_scaled_variants(seed):
    rng = np.random.default_rng(1000 + seed)
    scale = 1.0 + seed
    true = BimodalUniform(
        low1=0.1 * scale, high1=0.13 * scale,
        low2=0.145 * scale, high2=0.35 * scale,
    )
    samples = [true.sample(rng) for _ in range(3000)]
    fitted = fit_bimodal_uniform(samples)
    assert fitted.mean() == pytest.approx(true.mean(), rel=0.10)
    assert fitted.variance() == pytest.approx(true.variance(), rel=0.35)


@pytest.mark.parametrize(
    "spec",
    [
        {"kind": "exponential", "mean": 2.5},
        {"kind": "uniform", "low": 1.0, "high": 3.0},
        {"kind": "weibull", "shape": 1.5, "scale": 2.0},
        {"kind": "lognormal", "mu": 0.1, "sigma": 0.4},
        {"kind": "bimodal_uniform"},
    ],
    ids=lambda spec: spec["kind"],
)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sampled_moments_match_analytic_moments_across_seeds(spec, seed):
    distribution = distribution_from_spec(spec)
    rng = np.random.default_rng(seed)
    samples = np.asarray([distribution.sample(rng) for _ in range(20_000)])
    assert samples.mean() == pytest.approx(distribution.mean(), rel=0.05)
    assert samples.var(ddof=1) == pytest.approx(
        distribution.variance(), rel=0.15
    )


# ----------------------------------------------------------------------
# EmpiricalCDF invariants (hypothesis)
# ----------------------------------------------------------------------
finite_samples = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=200,
)


@given(finite_samples)
def test_cdf_is_monotone_and_bounded(samples):
    cdf = EmpiricalCDF(samples)
    grid = sorted(set(samples)) + [cdf.max + 1.0]
    previous = 0.0
    for x in grid:
        p = cdf.evaluate(x)
        assert 0.0 <= p <= 1.0
        assert p >= previous
        previous = p
    assert cdf.evaluate(cdf.min - 1.0) == 0.0
    assert cdf.evaluate(cdf.max) == 1.0


@given(finite_samples)
def test_cdf_quantiles_are_bounded_and_consistent(samples):
    cdf = EmpiricalCDF(samples)
    for p in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
        q = cdf.quantile(p)
        assert cdf.min <= q <= cdf.max
        # The defining property: the CDF at the p-quantile covers p.
        assert cdf.evaluate(q) >= p
    assert cdf.median() == cdf.quantile(0.5)


@given(finite_samples)
def test_cdf_series_is_a_valid_step_function(samples):
    cdf = EmpiricalCDF(samples)
    xs, ps = cdf.series()
    assert len(xs) == len(ps) == cdf.n
    assert np.all(np.diff(xs) >= 0)
    assert np.all(np.diff(ps) > 0) or cdf.n == 1
    assert ps[-1] == pytest.approx(1.0)


@given(finite_samples, finite_samples)
def test_ks_distance_is_a_metric_like_statistic(a, b):
    cdf_a, cdf_b = EmpiricalCDF(a), EmpiricalCDF(b)
    d = cdf_a.ks_distance(cdf_b)
    assert 0.0 <= d <= 1.0
    assert d == pytest.approx(cdf_b.ks_distance(cdf_a))
    assert cdf_a.ks_distance(cdf_a) == 0.0


# ----------------------------------------------------------------------
# Confidence-interval coverage on known distributions
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "distribution, true_mean",
    [
        (Exponential(2.0), 2.0),
        (Uniform(0.0, 1.0), 0.5),
        (LogNormal(0.0, 0.5), LogNormal(0.0, 0.5).mean()),
    ],
    ids=["exponential", "uniform", "lognormal"],
)
def test_90_percent_interval_covers_the_true_mean_90_percent_of_the_time(
    distribution, true_mean
):
    trials, sample_size, hits = 400, 30, 0
    for trial in range(trials):
        rng = np.random.default_rng(10_000 + trial)
        samples = [distribution.sample(rng) for _ in range(sample_size)]
        if confidence_interval(samples, confidence=0.90).contains(true_mean):
            hits += 1
    coverage = hits / trials
    # Binomial(400, 0.9) has a std of ~1.5%; allow ~4 sigma (the Student-t
    # interval is slightly conservative for skewed parents, hence the
    # wider lower slack).
    assert 0.82 <= coverage <= 0.97, coverage


@pytest.mark.parametrize("confidence", [0.5, 0.9, 0.99])
def test_higher_confidence_gives_wider_intervals(confidence):
    rng = np.random.default_rng(3)
    samples = [Exponential(1.0).sample(rng) for _ in range(50)]
    narrow = confidence_interval(samples, confidence=0.5)
    wide = confidence_interval(samples, confidence=confidence)
    assert wide.half_width >= narrow.half_width
    assert wide.mean == narrow.mean


# ----------------------------------------------------------------------
# Batched sampling (hypothesis): the batched executor's duration draws
# rely on sample_batch(n) being bit-identical to n successive scalar
# draws AND leaving the generator in the same state -- for every
# batchable distribution, under arbitrary parameters, seeds and batch
# sizes, including arbitrarily nested Shifted wrappers.
# ----------------------------------------------------------------------
_finite = dict(allow_nan=False, allow_infinity=False)

_base_batchable = st.one_of(
    st.builds(Constant, st.floats(min_value=0.0, max_value=10.0, **_finite)),
    st.builds(
        lambda low, width: Uniform(low, low + width),
        st.floats(min_value=0.0, max_value=10.0, **_finite),
        st.floats(min_value=0.0, max_value=10.0, **_finite),
    ),
    st.builds(
        Exponential, st.floats(min_value=1e-3, max_value=100.0, **_finite)
    ),
    st.builds(
        Weibull,
        st.floats(min_value=0.3, max_value=5.0, **_finite),
        st.floats(min_value=1e-3, max_value=10.0, **_finite),
    ),
    st.builds(
        Normal,
        st.floats(min_value=-2.0, max_value=5.0, **_finite),
        st.floats(min_value=0.0, max_value=3.0, **_finite),
    ),
    st.builds(
        LogNormal,
        st.floats(min_value=-1.0, max_value=1.0, **_finite),
        st.floats(min_value=0.0, max_value=1.5, **_finite),
    ),
    # All-Uniform mixtures batch via the inverse-CDF scheme (PR 9).
    st.lists(
        st.tuples(
            st.floats(min_value=1e-3, max_value=10.0, **_finite),
            st.builds(
                lambda low, width: Uniform(low, low + width),
                st.floats(min_value=0.0, max_value=10.0, **_finite),
                st.floats(min_value=0.0, max_value=10.0, **_finite),
            ),
        ),
        min_size=1,
        max_size=4,
    ).map(Mixture),
)

#: Batchable distributions with 0-3 levels of Shifted nesting.
batchable_distributions = st.recursive(
    _base_batchable,
    lambda children: st.builds(
        Shifted, st.floats(min_value=0.0, max_value=5.0, **_finite), children
    ),
    max_leaves=4,
)


@given(
    dist=batchable_distributions,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    size=st.integers(min_value=0, max_value=64),
)
@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_sample_batch_bit_identity_and_state_equality(dist, seed, size):
    from repro.stats.distributions import supports_batch

    assert supports_batch(dist)
    scalar_rng = np.random.default_rng(seed)
    batch_rng = np.random.default_rng(seed)
    singles = [dist.sample(scalar_rng) for _ in range(size)]
    batch = dist.sample_batch(batch_rng, size)
    assert [float(value) for value in batch] == singles
    assert scalar_rng.bit_generator.state == batch_rng.bit_generator.state


@given(
    depth=st.integers(min_value=1, max_value=5),
    batchable=st.booleans(),
)
def test_supports_batch_refines_through_nested_shifted(depth, batchable):
    # The unbatchable base is a mixture with a non-Uniform component;
    # all-Uniform mixtures (e.g. BimodalUniform) batch since PR 9.
    dist = Exponential(1.0) if batchable else Mixture([(1.0, Exponential(1.0))])
    for _ in range(depth):
        dist = Shifted(0.1, dist)
    # supports_batch sees through any nesting depth to the base: a
    # Shifted chain batches exactly when its innermost base does.
    assert supports_batch(dist) is batchable
    if not batchable:
        with pytest.raises(TypeError, match="all-Uniform"):
            dist.sample_batch(np.random.default_rng(0), 4)
