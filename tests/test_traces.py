"""Tests of the trace intelligence layer (repro.traces)."""

from __future__ import annotations

import math

import pytest

from repro.core.measurement import MeasurementConfig, MeasurementResult, MeasurementRunner
from repro.core.scenarios import Scenario
from repro.experiments.settings import ExperimentSettings
from repro.faults import CrashRecovery, FaultLoad, MessageLoss
from repro.traces import (
    CRASH,
    DROP,
    RECEIVE,
    RECOVER,
    SEND,
    TIMER,
    EventLog,
    TraceEvent,
    build_hb_graph,
    cluster_features,
    diff_logs,
    feature_matrix,
    featurize_measurement,
)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
def _measure(collect_traces: bool, seed: int = 7) -> MeasurementResult:
    """A small faulted class-3 consensus run (crash + wire loss)."""
    settings = ExperimentSettings.smoke()
    config = MeasurementConfig(
        cluster=settings.cluster_for(3, seed),
        scenario=Scenario.wrong_suspicions(timeout_ms=5.0),
        executions=4,
        separation_ms=10.0,
        extra_time_ms=60.0,
        fault_load=FaultLoad.of(
            MessageLoss(rate=0.05),
            CrashRecovery(process_id=0, crash_at_ms=15.0, recover_at_ms=30.0),
            name="loss+crash",
        ),
        collect_traces=collect_traces,
    )
    return MeasurementRunner(config).run()


@pytest.fixture(scope="module")
def traced_run() -> MeasurementResult:
    return _measure(collect_traces=True)


def _synthetic_log() -> EventLog:
    """A hand-built log exercising every edge family of the HB graph."""
    log = EventLog()
    log.append(TraceEvent(SEND, 1.0, process=0, msg_id=1, msg_type="m",
                          sender=0, destination=1))
    log.append(TraceEvent(RECEIVE, 2.0, process=1, msg_id=1, msg_type="m",
                          sender=0, destination=1))
    log.append(TraceEvent(SEND, 3.0, process=1, msg_id=2, msg_type="m",
                          sender=1, destination=0))
    log.append(TraceEvent(DROP, 4.0, process=0, msg_id=2, msg_type="m",
                          sender=1, destination=0, detail="wire:loss"))
    log.append(TraceEvent(CRASH, 5.0, process=0, detail="crash p0"))
    log.append(TraceEvent(TIMER, 6.0, process=1, peer=0, detail="suspect"))
    log.append(TraceEvent(RECOVER, 7.0, process=0, detail="recover p0"))
    log.append(TraceEvent(TIMER, 8.0, process=1, peer=0, detail="trust"))
    return log


# ----------------------------------------------------------------------
# Event model
# ----------------------------------------------------------------------
def test_event_to_dict_omits_unset_identity_fields():
    event = TraceEvent(CRASH, 5.0, process=2, detail="crash p2")
    record = event.to_dict()
    assert record == {"kind": CRASH, "time_ms": 5.0, "process": 2, "detail": "crash p2"}


def test_event_log_sorts_stably_by_time_and_counts_kinds():
    log = EventLog()
    log.append(TraceEvent(TIMER, 2.0, process=0, peer=1, detail="suspect"))
    log.append(TraceEvent(SEND, 1.0, process=0, msg_id=1))
    log.append(TraceEvent(CRASH, 2.0, process=1))  # ties keep append order
    events = log.events()
    assert [event.kind for event in events] == [SEND, TIMER, CRASH]
    assert log.counts_by_kind()[TIMER] == 1
    assert log.of_kind(SEND)[0].msg_id == 1
    assert [event.kind for event in log.for_process(0)] == [SEND, TIMER]
    assert len(log) == 3
    assert log.to_records()[0]["kind"] == SEND


# ----------------------------------------------------------------------
# Satellite: trace-hook contract on a faulted consensus run
# ----------------------------------------------------------------------
def test_collected_log_matches_transport_counters_exactly(traced_run):
    log = traced_run.event_log
    assert log is not None
    counts = log.counts_by_kind()
    assert counts[SEND] == traced_run.messages_sent
    assert counts[RECEIVE] == traced_run.messages_delivered
    assert counts[DROP] == traced_run.messages_dropped
    assert counts[CRASH] == traced_run.fault_stats.crashes == 1
    assert counts[RECOVER] == traced_run.fault_stats.recoveries == 1
    assert counts[TIMER] == len(traced_run.fd_history)
    assert counts[DROP] > 0 and counts[TIMER] > 0  # the faults actually fired


def test_collected_drops_reproduce_the_per_cause_attribution(traced_run):
    log = traced_run.event_log
    by_cause = {}
    for event in log.of_kind(DROP):
        by_cause[event.detail] = by_cause.get(event.detail, 0) + 1
    assert by_cause == traced_run.drops_by_cause


def test_collected_events_appear_exactly_once(traced_run):
    log = traced_run.event_log
    send_ids = [event.msg_id for event in log.of_kind(SEND)]
    assert len(send_ids) == len(set(send_ids))
    # No duplication fault in the load: each copy is delivered or dropped
    # at most once, and never both.
    received = {event.msg_id for event in log.of_kind(RECEIVE)}
    dropped = {event.msg_id for event in log.of_kind(DROP)}
    assert len(received) == len(log.of_kind(RECEIVE))
    assert len(dropped) == len(log.of_kind(DROP))
    assert not received & dropped


def test_collected_timestamps_are_monotone_per_process(traced_run):
    log = traced_run.event_log
    for process in range(3):
        times = [event.time_ms for event in log.for_process(process)]
        assert times == sorted(times)
        assert all(time >= 0.0 for time in times)


def test_tracing_is_opt_in_and_bit_identical():
    traced = _measure(collect_traces=True, seed=11)
    plain = _measure(collect_traces=False, seed=11)
    assert plain.event_log is None
    assert traced.event_log is not None
    assert traced.latencies_ms == plain.latencies_ms
    assert traced.undecided == plain.undecided
    assert traced.messages_sent == plain.messages_sent
    assert traced.messages_dropped == plain.messages_dropped
    assert traced.drops_by_cause == plain.drops_by_cause
    assert len(traced.fd_history) == len(plain.fd_history)


# ----------------------------------------------------------------------
# Happens-before graph
# ----------------------------------------------------------------------
def test_hb_message_edges_connect_send_to_receive_and_drop():
    graph = build_hb_graph(_synthetic_log(), n_processes=2)
    assert graph.happens_before(0, 1)  # send m1 -> receive m1
    assert graph.happens_before(2, 3)  # send m2 -> drop m2
    assert graph.happens_before(0, 3)  # transitively via p1's program order


def test_hb_liveness_edges_reach_the_fault_behind_a_suspicion():
    graph = build_hb_graph(_synthetic_log(), n_processes=2)
    suspect = graph.find_first(kind=TIMER, detail="suspect")
    trust = graph.find_first(kind=TIMER, detail="trust")
    crash = graph.find_first(kind=CRASH)
    recover = graph.find_first(kind=RECOVER)
    assert graph.happens_before(crash, suspect)
    assert crash in graph.causal_past(suspect)
    # The trust verdict observes the *latest* liveness change: the recovery.
    assert recover in graph.predecessors[trust]


def test_hb_vector_clocks_agree_with_reachability():
    graph = build_hb_graph(_synthetic_log(), n_processes=2)
    n = len(graph.events)
    for first in range(n):
        for second in range(n):
            if first == second:
                continue
            reachable = first in graph.causal_past(second)
            assert graph.happens_before(first, second) == reachable
    # Concurrency is symmetric and excludes ordered pairs.
    assert graph.concurrent(2, 4) == graph.concurrent(4, 2)


def test_hb_causal_past_includes_the_anchor_and_is_sorted():
    graph = build_hb_graph(_synthetic_log(), n_processes=2)
    past = graph.causal_past(5)
    assert 5 in past
    assert past == sorted(past)
    with pytest.raises(IndexError):
        graph.causal_past(99)


def test_hb_infers_process_count_from_the_log():
    graph = build_hb_graph(_synthetic_log())
    assert graph.n_processes == 2
    assert all(len(clock) == 2 for clock in graph.vector_clocks)


def test_hb_find_helpers():
    graph = build_hb_graph(_synthetic_log(), n_processes=2)
    assert graph.find_first(kind=SEND) == 0
    assert graph.find_last(kind=SEND) == 2
    assert graph.find_first(kind=TIMER, process=1, detail="trust") == 7
    assert graph.find_first(kind="nope") is None
    assert graph.find_last(kind=SEND, process=9) is None


def test_hb_duplicated_copies_get_no_message_edge():
    log = EventLog()
    log.append(TraceEvent(RECEIVE, 1.0, process=1, msg_id=42, parent_id=7,
                          sender=0, destination=1))
    graph = build_hb_graph(log, n_processes=2)
    assert graph.predecessors[0] == []


# ----------------------------------------------------------------------
# Featurization and clustering
# ----------------------------------------------------------------------
def test_featurize_measurement_is_finite_and_covers_the_outcome(traced_run):
    features = featurize_measurement(traced_run)
    assert all(math.isfinite(value) for value in features.values())
    assert features["crashes"] == 1.0
    assert features["first_crash_ms"] == pytest.approx(15.0)
    assert features["fd_transitions"] == float(len(traced_run.fd_history))
    assert any(name.startswith("drops:") for name in features)


def test_feature_matrix_uses_sorted_key_union_with_zero_fill():
    matrix = feature_matrix([{"b": 1.0}, {"a": 2.0, "b": 3.0}])
    assert matrix.names == ("a", "b")
    assert matrix.rows == ((0.0, 1.0), (2.0, 3.0))
    assert matrix.n_rows == 2


def test_clustering_separates_two_obvious_modes():
    rows = (
        [{"x": 0.0 + i * 0.1, "y": 0.0} for i in range(3)]
        + [{"x": 10.0 + i * 0.1, "y": 10.0} for i in range(3)]
    )
    result = cluster_features(feature_matrix(rows))
    assert len(result.clusters) == 2
    assert result.noise == ()
    first, second = set(result.labels[:3]), set(result.labels[3:])
    assert len(first) == len(second) == 1
    assert first != second
    for info in result.clusters:
        assert info.exemplar in info.members


def test_clustering_reports_sparse_points_as_noise():
    rows = [{"x": 0.0}, {"x": 0.1}, {"x": 0.2}, {"x": 50.0}]
    result = cluster_features(feature_matrix(rows), eps=0.5)
    assert result.labels[3] == -1
    assert result.noise == (3,)
    assert result.cluster_of(0) == result.cluster_of(1) == result.cluster_of(2) >= 0


def test_clustering_is_deterministic():
    rows = [{"x": float(i % 3), "y": float(i % 2)} for i in range(12)]
    matrix = feature_matrix(rows)
    assert cluster_features(matrix).labels == cluster_features(matrix).labels


def test_clustering_empty_input():
    result = cluster_features(feature_matrix([]))
    assert result.labels == [] and result.clusters == [] and result.noise == ()


# ----------------------------------------------------------------------
# Trace diffing
# ----------------------------------------------------------------------
def test_diff_reports_only_differing_signatures_in_time_order():
    nominal = EventLog()
    nominal.append(TraceEvent(SEND, 1.0, process=0, msg_id=1, msg_type="m",
                              sender=0, destination=1))
    nominal.append(TraceEvent(RECEIVE, 2.0, process=1, msg_id=1, msg_type="m",
                              sender=0, destination=1))
    anomalous = EventLog()
    anomalous.append(TraceEvent(SEND, 1.0, process=0, msg_id=1, msg_type="m",
                                sender=0, destination=1))
    anomalous.append(TraceEvent(DROP, 1.5, process=1, msg_id=1, msg_type="m",
                                sender=0, destination=1, detail="wire:loss"))
    anomalous.append(TraceEvent(CRASH, 3.0, process=0, detail="crash p0"))
    diff = diff_logs(anomalous, nominal)
    descriptions = [step.description for step in diff.steps]
    assert descriptions == [
        "drop m p0->p1 [wire:loss]",
        "receive m p0->p1",
        "crash p0 [crash p0]",
    ]
    assert diff.steps[0].delta == 1
    assert diff.steps[1].delta == -1  # missing in the anomalous run
    assert "vs" in diff.render_text()


def test_diff_of_identical_logs_is_empty():
    log = _synthetic_log()
    diff = diff_logs(log, log)
    assert diff.steps == []
    assert "no event-class differences" in diff.render_text()


# ----------------------------------------------------------------------
# SAN solver tracing
# ----------------------------------------------------------------------
def _san_solver(collect_traces: bool):
    from repro.san.solver import SimulativeSolver
    from repro.sanmodels.consensus_model import (
        ConsensusSANExperiment,
        consensus_stop_predicate,
    )

    experiment = ConsensusSANExperiment(n_processes=3, seed=21)
    return SimulativeSolver(
        model_factory=experiment.model_factory,
        reward_factory=experiment.reward_factory,
        stop_predicate=consensus_stop_predicate,
        max_time=experiment.max_time_ms,
        seed=21,
        reuse_model=True,
        collect_traces=collect_traces,
    )


def test_san_solver_traces_are_opt_in_and_reward_identical():
    plain = _san_solver(False).run_replication(0)
    traced = _san_solver(True).run_replication(0)
    assert plain.trace is None
    assert traced.trace  # non-empty activity-completion record
    assert traced.rewards == plain.rewards
    assert traced.end_time == plain.end_time
    times = [completion.time for completion in traced.trace]
    assert times == sorted(times)
    assert times[-1] == pytest.approx(traced.end_time)


def test_san_solver_tracing_falls_back_from_batched_to_scalar():
    scalar = _san_solver(True).solve(replications=4, strategy="scalar")
    batched = _san_solver(True).solve(replications=4, strategy="batched")
    for first, second in zip(scalar.replications, batched.replications, strict=True):
        assert first.rewards == second.rewards
        assert first.trace == second.trace
        assert first.trace is not None


def test_san_solver_run_batch_preserves_traces():
    results = _san_solver(True).run_batch([0, 1])
    assert [result.replication for result in results] == [0, 1]
    assert all(result.trace for result in results)


def test_diff_truncates_to_the_largest_deltas_but_stays_chronological():
    anomalous = EventLog()
    for i in range(10):
        for _ in range(i + 1):
            anomalous.append(TraceEvent(SEND, float(i), process=0, msg_id=None,
                                        msg_type=f"t{i}", sender=0, destination=1))
    diff = diff_logs(anomalous, EventLog(), max_steps=3)
    assert len(diff.steps) == 3
    # The three largest surpluses (t7, t8, t9), reported in time order.
    assert [step.description for step in diff.steps] == [
        "send t7 p0->p1", "send t8 p0->p1", "send t9 p0->p1",
    ]
    assert "more differences" not in diff.render_text(limit=3)
