"""Tests of the parallel replication/sweep engine.

The engine's contract is determinism: a point's seed depends only on its
identity (its seed-derivation indices), results are aggregated in plan
order whatever the worker count, and the on-disk cache only ever returns a
result for an exactly identical (point, seed, settings) triple.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure7 import run_figure7a
from repro.experiments.figure8 import figure8_plan, run_figure8
from repro.experiments.runner import (
    ReplicationPlan,
    ResultCache,
    SweepPoint,
    execute_plan,
    iter_plan,
    resolve_jobs,
)
from repro.experiments.settings import ExperimentSettings


@pytest.fixture
def settings() -> ExperimentSettings:
    return ExperimentSettings(
        executions=10,
        class3_executions=6,
        replications=10,
        measured_process_counts=(3, 5),
        simulated_process_counts=(3,),
        class3_process_counts=(3,),
        timeouts_ms=(2.0, 30.0),
        t_send_candidates_ms=(0.01, 0.025),
        delay_probes=40,
        seed=7,
    )


def _echo_point(tag: str, point_seed: int) -> tuple:
    """A trivial module-level point function (picklable for the pool)."""
    return (tag, point_seed)


def _plan(settings, tags=("a", "b", "c", "d")) -> ReplicationPlan:
    points = tuple(
        SweepPoint.make(
            _echo_point,
            kwargs={"tag": tag},
            indices=(99, index),
            label=f"echo {tag}",
        )
        for index, tag in enumerate(tags)
    )
    return ReplicationPlan(settings=settings, points=points, name="echo")


# ----------------------------------------------------------------------
# Per-point seed derivation
# ----------------------------------------------------------------------
def test_point_seeds_depend_only_on_indices_not_on_plan_position(settings):
    forward = _plan(settings, tags=("a", "b", "c"))
    # The same points in a different order: every point keeps its seed.
    reordered = ReplicationPlan(
        settings=settings,
        points=tuple(reversed(forward.points)),
        name="echo-reversed",
    )
    by_indices_forward = {p.indices: p.seed(settings) for p in forward.points}
    by_indices_reordered = {p.indices: p.seed(settings) for p in reordered.points}
    assert by_indices_forward == by_indices_reordered


def test_point_seeds_match_experiment_settings_point_seed(settings):
    plan = _plan(settings)
    for point in plan.points:
        assert point.seed(settings) == settings.point_seed(*point.indices)


def test_distinct_indices_yield_distinct_seeds(settings):
    seeds = _plan(settings, tags=tuple("abcdefgh")).seeds()
    assert len(set(seeds)) == len(seeds)


def test_plans_reject_duplicate_indices(settings):
    point = SweepPoint.make(_echo_point, kwargs={"tag": "x"}, indices=(1, 2))
    clone = SweepPoint.make(_echo_point, kwargs={"tag": "y"}, indices=(1, 2))
    with pytest.raises(ValueError, match="duplicate seed indices"):
        ReplicationPlan(settings=settings, points=(point, clone))


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


# ----------------------------------------------------------------------
# Execution: serial fallback vs. process pool
# ----------------------------------------------------------------------
def test_results_stream_in_plan_order_with_seeds_injected(settings):
    plan = _plan(settings)
    results = execute_plan(plan, jobs=1)
    assert [tag for tag, _seed in results] == ["a", "b", "c", "d"]
    assert [seed for _tag, seed in results] == plan.seeds()


def test_parallel_execution_equals_serial_execution(settings):
    plan = _plan(settings)
    assert execute_plan(plan, jobs=1) == execute_plan(plan, jobs=3)


def test_figure8_sweep_is_identical_across_worker_counts(settings):
    serial = run_figure8(settings, jobs=1)
    parallel = run_figure8(settings, jobs=4)

    def flatten(result):
        return {
            key: (
                point.mistake_recurrence_time_ms,
                point.mistake_duration_ms,
                point.latencies_ms,
                point.undecided,
            )
            for key, point in result.points.items()
        }

    assert flatten(serial) == flatten(parallel)


def test_figure7a_is_bit_for_bit_identical_across_worker_counts(settings):
    serial = run_figure7a(settings, jobs=1)
    parallel = run_figure7a(settings, jobs=4)
    assert serial.latencies_by_n == parallel.latencies_by_n


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
def test_cache_serves_repeat_executions_without_recomputing(settings, tmp_path):
    plan = figure8_plan(settings)
    first = execute_plan(plan, jobs=1, cache_dir=str(tmp_path))
    cache_files = sorted(tmp_path.glob("*.pkl"))
    assert len(cache_files) == len(plan.points)
    before = {path: path.stat().st_mtime_ns for path in cache_files}
    second = execute_plan(plan, jobs=1, cache_dir=str(tmp_path))
    after = {path: path.stat().st_mtime_ns for path in sorted(tmp_path.glob("*.pkl"))}
    assert before == after  # pure cache hits: nothing was rewritten

    def flatten(points):
        return [(p.n_processes, p.timeout_ms, p.latencies_ms) for p in points]

    assert flatten(first) == flatten(second)


def test_cache_misses_on_different_seed_or_point(settings, tmp_path):
    cache = ResultCache(str(tmp_path))
    plan = _plan(settings, tags=("a", "b"))
    keys = [ResultCache.key(point, settings) for point in plan.points]
    assert keys[0] != keys[1]
    import dataclasses

    reseeded = dataclasses.replace(settings, seed=settings.seed + 1)
    assert ResultCache.key(plan.points[0], reseeded) != keys[0]
    assert cache.get(keys[0]) == (False, None)


def test_corrupt_cache_entries_count_as_misses(settings, tmp_path):
    cache = ResultCache(str(tmp_path))
    plan = _plan(settings, tags=("a",))
    key = ResultCache.key(plan.points[0], settings)
    cache.put(key, ("a", 123))
    assert cache.get(key) == (True, ("a", 123))
    (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
    assert cache.get(key) == (False, None)


def test_cached_points_are_not_resubmitted_to_the_pool(settings, tmp_path):
    plan = _plan(settings)
    execute_plan(plan, jobs=1, cache_dir=str(tmp_path))
    # A second, parallel execution must be served from the cache and still
    # deliver the results in plan order.
    results = execute_plan(plan, jobs=3, cache_dir=str(tmp_path))
    assert [tag for tag, _seed in results] == ["a", "b", "c", "d"]


# ----------------------------------------------------------------------
# Point-level timing hooks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 3])
def test_timing_hook_fires_once_per_point_in_plan_order(settings, jobs):
    plan = _plan(settings)
    seen = []
    for _point, _result in iter_plan(
        plan, jobs=jobs, timing_hook=lambda p, s, c: seen.append((p.label, s, c))
    ):
        pass
    assert [label for label, _s, _c in seen] == [p.label for p in plan.points]
    assert all(seconds >= 0 for _label, seconds, _c in seen)
    assert not any(cached for _label, _s, cached in seen)


# ----------------------------------------------------------------------
# Grouped pool submissions (group_size > 1)
# ----------------------------------------------------------------------
def test_grouped_execution_equals_serial_execution(settings):
    # 7 points across 2-3 workers with uneven group splits (3/3/1, 2/2/2/1):
    # grouping is a submission-granularity knob, never a result knob.
    plan = _plan(settings, tags=tuple("abcdefg"))
    serial = execute_plan(plan, jobs=1)
    assert execute_plan(plan, jobs=2, group_size=3) == serial
    assert execute_plan(plan, jobs=3, group_size=2) == serial
    assert execute_plan(plan, jobs=2, group_size=100) == serial  # one big group


def test_group_size_must_be_positive(settings):
    plan = _plan(settings)
    with pytest.raises(ValueError, match="group_size"):
        list(iter_plan(plan, jobs=2, group_size=0))


def test_grouped_execution_keeps_per_point_cache_and_timing(settings, tmp_path):
    plan = _plan(settings, tags=tuple("abcde"))
    cache = ResultCache(str(tmp_path))
    # Pre-warm two points so the grouped run must mix hits and misses.
    warm = ReplicationPlan(settings=settings, points=plan.points[1:3], name="echo")
    list(iter_plan(warm, jobs=1, cache=cache))

    seen = []
    results = [
        result
        for _point, result in iter_plan(
            plan,
            jobs=2,
            group_size=2,
            cache=cache,
            timing_hook=lambda p, s, c: seen.append((p.label, c)),
        )
    ]
    assert [tag for tag, _seed in results] == ["a", "b", "c", "d", "e"]
    # The hook still fires once per point, in plan order, with cache flags.
    assert seen == [
        ("echo a", False),
        ("echo b", True),
        ("echo c", True),
        ("echo d", False),
        ("echo e", False),
    ]
    # Every point (cached or grouped) landed in the cache exactly once.
    assert len(sorted(tmp_path.glob("*.pkl"))) == len(plan.points)


def test_timing_hook_marks_cache_hits(settings, tmp_path):
    plan = _plan(settings)
    cache = ResultCache(str(tmp_path))
    list(iter_plan(plan, jobs=1, cache=cache))
    seen = []
    list(
        iter_plan(
            plan, jobs=1, cache=cache, timing_hook=lambda p, s, c: seen.append((s, c))
        )
    )
    assert len(seen) == len(plan.points)
    assert all(cached and seconds == 0.0 for seconds, cached in seen)
