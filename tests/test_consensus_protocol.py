"""Tests of the Chandra-Toueg ◇S consensus protocol on the simulated cluster."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.consensus.messages import coordinator_of_round, majority_of
from repro.failure_detectors.static import StaticFailureDetector
from repro.failure_detectors.heartbeat import HeartbeatFailureDetector


# ----------------------------------------------------------------------
# Round arithmetic
# ----------------------------------------------------------------------
def test_coordinator_rotates_over_rounds():
    assert coordinator_of_round(1, 3) == 0
    assert coordinator_of_round(2, 3) == 1
    assert coordinator_of_round(3, 3) == 2
    assert coordinator_of_round(4, 3) == 0
    assert coordinator_of_round(7, 5) == 1


def test_coordinator_of_round_validates_arguments():
    with pytest.raises(ValueError):
        coordinator_of_round(0, 3)
    with pytest.raises(ValueError):
        coordinator_of_round(1, 0)


def test_majority_formula():
    assert majority_of(1) == 1
    assert majority_of(3) == 2
    assert majority_of(4) == 3
    assert majority_of(5) == 3
    assert majority_of(11) == 6


def test_majority_validates_arguments():
    with pytest.raises(ValueError):
        majority_of(0)


# ----------------------------------------------------------------------
# Protocol integration on the simulated cluster
# ----------------------------------------------------------------------
def _consensus_cluster(n=3, seed=1, crashed=(), fd_timeout=None):
    config = ClusterConfig(n_processes=n, seed=seed)
    cluster = Cluster(config)

    def stack(sim, pid):
        consensus = ChandraTouegConsensus(sim, name=f"ct{pid}")
        if fd_timeout is None:
            fd = StaticFailureDetector(sim, crashed=crashed, name=f"fd{pid}")
        else:
            fd = HeartbeatFailureDetector(sim, timeout_ms=fd_timeout, name=f"fd{pid}")
        return [consensus, fd]

    cluster.create_processes(stack)
    for pid in crashed:
        cluster.crash_process(pid)
    cluster.start_all()
    return cluster


def _propose_all(cluster, instance=0, at=1.0):
    for process in cluster.processes:
        if process.crashed:
            continue
        consensus = process.layer(ChandraTouegConsensus)
        cluster.sim.schedule_at(at, consensus.propose, instance, f"v{process.process_id}")


def _decisions(cluster, instance=0):
    result = {}
    for process in cluster.processes:
        if process.crashed:
            continue
        decision = process.layer(ChandraTouegConsensus).decision_of(instance)
        if decision is not None:
            result[process.process_id] = decision
    return result


def test_failure_free_run_terminates_and_agrees():
    cluster = _consensus_cluster(n=3, seed=2)
    _propose_all(cluster)
    cluster.run(until=100.0)
    decisions = _decisions(cluster)
    assert set(decisions) == {0, 1, 2}  # termination: every correct process decides
    values = {d.value for d in decisions.values()}
    assert len(values) == 1  # agreement
    assert values.pop() in {"v0", "v1", "v2"}  # validity
    assert all(d.round_number == 1 for d in decisions.values())


def test_coordinator_decides_first_in_failure_free_runs():
    cluster = _consensus_cluster(n=5, seed=3)
    _propose_all(cluster)
    cluster.run(until=100.0)
    decisions = _decisions(cluster)
    first = min(decisions.values(), key=lambda d: d.global_time)
    assert first.process_id == 0


def test_failure_free_run_decides_in_round_one_and_quickly():
    cluster = _consensus_cluster(n=5, seed=4)
    _propose_all(cluster, at=1.0)
    cluster.run(until=100.0)
    decisions = _decisions(cluster)
    assert all(d.round_number == 1 for d in decisions.values())
    first = min(d.global_time for d in decisions.values())
    assert first - 1.0 < 5.0  # well under the 10 ms separation used in the paper


def test_coordinator_crash_is_resolved_in_round_two():
    cluster = _consensus_cluster(n=3, seed=5, crashed=(0,))
    _propose_all(cluster)
    cluster.run(until=200.0)
    decisions = _decisions(cluster)
    assert set(decisions) == {1, 2}
    assert len({d.value for d in decisions.values()}) == 1
    assert all(d.round_number == 2 for d in decisions.values())
    # The decided value is proposed by a correct process (validity).
    assert decisions[1].value in {"v1", "v2"}


def test_participant_crash_still_decides_in_round_one():
    cluster = _consensus_cluster(n=5, seed=6, crashed=(1,))
    _propose_all(cluster)
    cluster.run(until=200.0)
    decisions = _decisions(cluster)
    assert set(decisions) == {0, 2, 3, 4}
    assert all(d.round_number == 1 for d in decisions.values())


def test_two_crashes_out_of_five_are_tolerated():
    cluster = _consensus_cluster(n=5, seed=7, crashed=(0, 1))
    _propose_all(cluster)
    cluster.run(until=500.0)
    decisions = _decisions(cluster)
    assert set(decisions) == {2, 3, 4}
    assert len({d.value for d in decisions.values()}) == 1
    # Coordinators of rounds 1 and 2 are crashed, so the decision comes in round 3.
    assert all(d.round_number == 3 for d in decisions.values())


def test_wrong_suspicions_do_not_violate_agreement_or_validity():
    cluster = _consensus_cluster(n=3, seed=8, fd_timeout=1.0)
    _propose_all(cluster)
    cluster.run(until=2000.0)
    decisions = _decisions(cluster)
    assert decisions, "at least one process must decide despite wrong suspicions"
    assert len({d.value for d in decisions.values()}) == 1
    assert next(iter(decisions.values())).value in {"v0", "v1", "v2"}


def test_multiple_instances_are_isolated_from_each_other():
    cluster = _consensus_cluster(n=3, seed=9)
    for instance in range(5):
        _propose_all(cluster, instance=instance, at=1.0 + 10.0 * instance)
    cluster.run(until=200.0)
    for instance in range(5):
        decisions = _decisions(cluster, instance)
        assert set(decisions) == {0, 1, 2}
        assert len({d.value for d in decisions.values()}) == 1


def test_single_process_consensus_decides_immediately():
    cluster = _consensus_cluster(n=1, seed=10)
    _propose_all(cluster)
    cluster.run(until=10.0)
    decision = cluster.process(0).layer(ChandraTouegConsensus).decision_of(0)
    assert decision is not None
    assert decision.value == "v0"


def test_duplicate_propose_for_the_same_instance_is_rejected():
    cluster = _consensus_cluster(n=3, seed=11)
    consensus = cluster.process(0).layer(ChandraTouegConsensus)
    consensus.propose(0, "x")
    with pytest.raises(ValueError):
        consensus.propose(0, "y")


def test_decision_callbacks_fire_once_per_process_and_instance():
    cluster = _consensus_cluster(n=3, seed=12)
    events = []

    def record(pid, instance, value, local_time, global_time):
        events.append((pid, instance))

    for process in cluster.processes:
        process.layer(ChandraTouegConsensus).add_decision_callback(record)
    _propose_all(cluster)
    cluster.run(until=100.0)
    assert sorted(events) == [(0, 0), (1, 0), (2, 0)]


def test_messages_sent_counter_increases_with_n():
    small = _consensus_cluster(n=3, seed=13)
    _propose_all(small)
    small.run(until=100.0)
    big = _consensus_cluster(n=7, seed=13)
    _propose_all(big)
    big.run(until=100.0)

    def total(cluster):
        return sum(
            p.layer(ChandraTouegConsensus).messages_sent for p in cluster.processes
        )

    assert total(big) > total(small)


def test_has_decided_and_decisions_accessors():
    cluster = _consensus_cluster(n=3, seed=14)
    consensus = cluster.process(0).layer(ChandraTouegConsensus)
    assert not consensus.has_decided(0)
    assert consensus.decision_of(0) is None
    _propose_all(cluster)
    cluster.run(until=100.0)
    assert consensus.has_decided(0)
    assert len(consensus.decisions) == 1


def test_crashed_process_never_decides():
    cluster = _consensus_cluster(n=3, seed=15, crashed=(1,))
    _propose_all(cluster)
    cluster.run(until=100.0)
    assert cluster.process(1).layer(ChandraTouegConsensus).decisions == []
