"""Optimized executor vs. reference executor.

The optimized :class:`~repro.san.executor.SANExecutor` earns its speed from
three shortcuts: the place-to-activity dependency index, per-activity
batched duration draws, and per-model cached structures.
:class:`~repro.san.reference.ReferenceExecutor` disables all of them.  These
tests hold the two to identical behaviour -- exact trajectories on the
golden model across many seeds, exact reward values on the generated
consensus model -- and check the dependency index directly: any activity
whose enablement differs between two markings must be re-evaluated when the
places on which they differ change.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.simulator import Simulator
from repro.san import SANExecutor
from repro.san.marking import Marking
from repro.san.reference import ReferenceExecutor, enabled_activity_names
from repro.san.solver import SimulativeSolver
from repro.sanmodels import ConsensusSANExperiment
from repro.sanmodels.consensus_model import (
    build_consensus_model,
    consensus_stop_predicate,
)
from tests.test_san_golden_trace import (
    TraceRecorder,
    build_golden_model,
)

#: One shared consensus model for the property tests (read-only use).
_CONSENSUS_MODEL = build_consensus_model(3)
_CONSENSUS_PLACES = sorted(place.name for place in _CONSENSUS_MODEL.places)
_CONSENSUS_EXECUTOR = SANExecutor(_CONSENSUS_MODEL, Simulator(seed=0))


def _run_both(seed: int, until: float = 25.0):
    traces = []
    for executor_class in (SANExecutor, ReferenceExecutor):
        sim = Simulator(seed=seed)
        recorder = TraceRecorder()
        executor = executor_class(build_golden_model(), sim, rewards=[recorder])
        outcome = executor.run(until=until)
        traces.append((recorder.events, outcome))
    return traces


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_reference_and_optimized_traces_agree_on_golden_model(seed):
    (events_a, outcome_a), (events_b, outcome_b) = _run_both(seed)
    assert events_a == events_b
    assert outcome_a.completions == outcome_b.completions
    assert outcome_a.end_time == outcome_b.end_time
    assert outcome_a.final_marking == outcome_b.final_marking


def test_reference_and_optimized_rewards_agree_on_consensus_model():
    experiment = ConsensusSANExperiment(n_processes=3, seed=7)
    optimized = experiment.solver()
    reference = SimulativeSolver(
        model_factory=experiment.model_factory,
        reward_factory=experiment.reward_factory,
        stop_predicate=consensus_stop_predicate,
        max_time=experiment.max_time_ms,
        seed=experiment.seed,
        executor_class=ReferenceExecutor,
    )
    for index in range(10):
        fast = optimized.run_replication(index)
        slow = reference.run_replication(index)
        assert fast.rewards == slow.rewards, index
        assert fast.end_time == slow.end_time, index


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_dependency_index_covers_every_enablement_flip(data):
    # Draw a base marking and a mutation of it over the consensus model's
    # places; every activity whose enablement flips between the two must be
    # in the affected set of the places on which they differ.
    places = data.draw(
        st.lists(
            st.sampled_from(_CONSENSUS_PLACES), min_size=1, max_size=12, unique=True
        )
    )
    base_counts = {
        place: data.draw(st.integers(min_value=0, max_value=2), label=f"base[{place}]")
        for place in places
    }
    mutated_counts = dict(base_counts)
    mutated_places = data.draw(
        st.lists(st.sampled_from(places), min_size=1, max_size=6, unique=True)
    )
    for place in mutated_places:
        mutated_counts[place] = data.draw(
            st.integers(min_value=0, max_value=3), label=f"mutated[{place}]"
        )

    base = Marking(base_counts)
    mutated = Marking(mutated_counts)
    changed = {
        place for place in places if base_counts[place] != mutated_counts[place]
    }
    affected = _CONSENSUS_EXECUTOR.affected_activity_names(changed)

    flipped = enabled_activity_names(
        _CONSENSUS_MODEL, base
    ) ^ enabled_activity_names(_CONSENSUS_MODEL, mutated)
    missed = flipped - affected
    assert not missed, (
        f"activities {sorted(missed)} changed enablement on places "
        f"{sorted(changed)} but the dependency index would not re-check them"
    )


def test_scheduled_activities_match_brute_force_enablement():
    # At any pause of the event loop the executor's scheduled set must be
    # exactly the brute-force-enabled timed activities (tangible marking:
    # no instantaneous activity still enabled).
    sim = Simulator(seed=2024)
    model = build_golden_model()
    executor = SANExecutor(model, sim)
    executor.run(until=3.0)
    timed_names = {activity.name for activity in model.timed_activities}
    enabled = enabled_activity_names(model, executor.marking)
    assert enabled <= timed_names  # tangible: no instantaneous enabled
    assert executor.scheduled_activity_names() == enabled


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_batched_enablement_mask_agrees_with_full_reevaluation(data):
    # Build a small batch of random consensus markings and check that the
    # batched executor's vectorised enablement mask matches the reference
    # full re-evaluation (enabled_activity_names) row by row.
    from repro.san.batched import BatchedSANExecutor

    batch = []
    for row in range(data.draw(st.integers(min_value=1, max_value=4))):
        places = data.draw(
            st.lists(
                st.sampled_from(_CONSENSUS_PLACES),
                min_size=1,
                max_size=12,
                unique=True,
            ),
            label=f"places[{row}]",
        )
        counts = {
            place: data.draw(
                st.integers(min_value=0, max_value=2),
                label=f"tokens[{row}][{place}]",
            )
            for place in places
        }
        batch.append(Marking(counts))

    executor = BatchedSANExecutor.for_batch(
        _CONSENSUS_MODEL,
        seeds=list(range(len(batch))),
        rewards_per_row=[[] for _ in batch],
        initial_markings=batch,
    )
    for row, marking in enumerate(batch):
        expected = enabled_activity_names(_CONSENSUS_MODEL, marking)
        assert executor.enabled_activity_names(row) == expected, row


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_matrix_instantaneous_firing_agrees_with_reference_executor(data):
    # Start a batch from random consensus markings -- many of which enable
    # instantaneous activities immediately, so the matrix-level chain
    # walker (batched.py) fires whole cascades at start-up -- and hold
    # every row to the ReferenceExecutor run of the same (marking, seed):
    # identical end time, completion count and final marking.  The
    # reference executor re-evaluates everything from scratch each step,
    # so agreement here pins the matrix chain's firing *order* contract,
    # not just its enablement bookkeeping.
    from repro.san.batched import BatchedSANExecutor

    batch = []
    for row in range(data.draw(st.integers(min_value=1, max_value=3))):
        places = data.draw(
            st.lists(
                st.sampled_from(_CONSENSUS_PLACES),
                min_size=1,
                max_size=12,
                unique=True,
            ),
            label=f"places[{row}]",
        )
        counts = {
            place: data.draw(
                st.integers(min_value=0, max_value=2),
                label=f"tokens[{row}][{place}]",
            )
            for place in places
        }
        batch.append(Marking(counts))
    seeds = [
        data.draw(
            st.integers(min_value=0, max_value=2**31 - 1), label=f"seed[{row}]"
        )
        for row in range(len(batch))
    ]

    executor = BatchedSANExecutor.for_batch(
        _CONSENSUS_MODEL,
        seeds=seeds,
        rewards_per_row=[[] for _ in batch],
        initial_markings=batch,
    )
    outcomes = executor.run_batch(until=5.0)

    for row, (marking, seed, outcome) in enumerate(
        zip(batch, seeds, outcomes, strict=True)
    ):
        reference = ReferenceExecutor(
            _CONSENSUS_MODEL, Simulator(seed=seed), initial_marking=marking
        )
        expected = reference.run(until=5.0)
        assert outcome.end_time == expected.end_time, row
        assert outcome.completions == expected.completions, row
        assert outcome.final_marking == expected.final_marking, row
