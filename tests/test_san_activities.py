"""Tests of SAN places, gates, cases and activities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.san.activities import Case, InstantaneousActivity, TimedActivity
from repro.san.gates import InputGate, OutputGate
from repro.san.marking import Marking
from repro.san.places import Place
from repro.stats.distributions import Constant, Exponential

RNG = np.random.default_rng(0)


def test_place_validation():
    with pytest.raises(ValueError):
        Place("", 0)
    with pytest.raises(ValueError):
        Place("p", -1)
    assert Place("p", 2).renamed("x.").name == "x.p"


def test_activity_enabled_by_input_arcs():
    activity = TimedActivity("t", Constant(1.0), input_arcs=["a", ("b", 2)])
    assert not activity.enabled(Marking({"a": 1, "b": 1}))
    assert activity.enabled(Marking({"a": 1, "b": 2}))


def test_input_gate_predicate_participates_in_enabling():
    gate = InputGate("g", predicate=lambda m: m["x"] >= 3, watched_places=("x",))
    activity = TimedActivity("t", Constant(1.0), input_arcs=["a"], input_gates=[gate])
    assert not activity.enabled(Marking({"a": 1, "x": 2}))
    assert activity.enabled(Marking({"a": 1, "x": 3}))


def test_completion_applies_arcs_and_gates_in_san_order():
    trace = []
    input_gate = InputGate(
        "ig", predicate=lambda m: True, function=lambda m: trace.append("input-gate")
    )
    output_gate = OutputGate("og", function=lambda m: trace.append("output-gate"))
    activity = TimedActivity(
        "t",
        Constant(1.0),
        input_arcs=[("a", 1)],
        input_gates=[input_gate],
        cases=[Case.build(output_arcs=[("b", 2)], output_gates=[output_gate])],
    )
    marking = Marking({"a": 1})
    activity.complete(marking, activity.cases[0])
    assert marking["a"] == 0
    assert marking["b"] == 2
    assert trace == ["input-gate", "output-gate"]


def test_case_weights_can_depend_on_the_marking():
    activity = InstantaneousActivity(
        "i",
        input_arcs=["a"],
        cases=[
            Case.build(probability=lambda m: m["heads"], output_arcs=["h"]),
            Case.build(probability=lambda m: m["tails"], output_arcs=["t"]),
        ],
    )
    marking = Marking({"a": 1, "heads": 1, "tails": 0})
    chosen = activity.choose_case(marking, RNG)
    assert chosen.output_arcs == (("h", 1),)


def test_case_selection_follows_probabilities():
    activity = InstantaneousActivity(
        "i",
        input_arcs=["a"],
        cases=[
            Case.build(probability=0.75, output_arcs=["x"], label="x"),
            Case.build(probability=0.25, output_arcs=["y"], label="y"),
        ],
    )
    rng = np.random.default_rng(3)
    marking = Marking({"a": 1})
    labels = [activity.choose_case(marking, rng).label for _ in range(2000)]
    fraction_x = labels.count("x") / len(labels)
    assert fraction_x == pytest.approx(0.75, abs=0.04)


def test_zero_total_case_probability_raises():
    activity = InstantaneousActivity(
        "i",
        cases=[Case.build(probability=0.0), Case.build(probability=0.0)],
    )
    with pytest.raises(ValueError):
        activity.choose_case(Marking(), RNG)


def test_single_case_skips_probability_evaluation():
    activity = InstantaneousActivity("i", cases=[Case.build(probability=0.0)])
    assert activity.choose_case(Marking(), RNG) is activity.cases[0]


def test_timed_activity_samples_from_marking_dependent_distribution():
    activity = TimedActivity(
        "t",
        distribution=lambda marking: Constant(float(marking["speed"])),
        input_arcs=["a"],
    )
    assert activity.sample_duration(Marking({"speed": 4}), RNG) == 4.0


def test_timed_activity_rejects_negative_weights_and_names():
    with pytest.raises(ValueError):
        TimedActivity("t", Constant(1.0), input_arcs=[("a", 0)])
    with pytest.raises(ValueError):
        TimedActivity("", Constant(1.0))


def test_exponential_timed_activity_samples_nonnegative_durations():
    activity = TimedActivity("t", Exponential(2.0))
    assert all(activity.sample_duration(Marking(), RNG) >= 0 for _ in range(100))


def test_instantaneous_activity_reports_not_timed():
    assert not InstantaneousActivity("i").timed
    assert TimedActivity("t", Constant(1.0)).timed


def test_default_case_added_when_none_given():
    activity = InstantaneousActivity("i", input_arcs=["a"])
    assert len(activity.cases) == 1
    marking = Marking({"a": 1})
    activity.complete(marking, activity.cases[0])
    assert marking["a"] == 0


def test_input_gate_renaming_translates_watched_places_and_marking_access():
    gate = InputGate(
        "g",
        predicate=lambda m: m["count"] >= 1,
        function=lambda m: m.add("count"),
        watched_places=("count",),
    )
    renamed = gate.renamed("p1.", lambda name: f"p1.{name}")
    assert renamed.watched_places == ("p1.count",)
    marking = Marking({"p1.count": 1})
    assert renamed.enabled(marking)
    renamed.apply(marking)
    assert marking["p1.count"] == 2
