"""Tests of the experiment-scale settings."""

from __future__ import annotations

import pytest

from dataclasses import replace

from repro.cluster.config import ClusterConfig
from repro.experiments.settings import (
    SCALE_PRESETS,
    ExperimentSettings,
    scaled_timeouts,
)


def test_presets_are_ordered_by_scale():
    smoke, quick, full = (
        ExperimentSettings.smoke(),
        ExperimentSettings.quick(),
        ExperimentSettings.full(),
    )
    assert smoke.executions < quick.executions < full.executions
    assert smoke.replications < quick.replications < full.replications
    assert full.class3_executions == 1000  # the paper's per-run count


def test_from_environment_selects_the_named_preset(monkeypatch):
    monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "smoke")
    assert ExperimentSettings.from_environment().executions == ExperimentSettings.smoke().executions
    monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "bogus")
    with pytest.raises(ValueError):
        ExperimentSettings.from_environment()
    monkeypatch.delenv("REPRO_EXPERIMENT_SCALE")
    assert ExperimentSettings.from_environment().executions == ExperimentSettings.quick().executions


def test_point_seed_is_deterministic_and_index_sensitive():
    settings = ExperimentSettings()
    assert settings.point_seed(1, 2, 3) == settings.point_seed(1, 2, 3)
    assert settings.point_seed(1, 2, 3) != settings.point_seed(1, 2, 4)
    assert settings.point_seed(1) != settings.point_seed(2)


def test_cluster_for_builds_a_point_configuration():
    settings = ExperimentSettings()
    config = settings.cluster_for(7, 99)
    assert config.n_processes == 7
    assert config.seed == 99


def test_with_cluster_overrides_the_base_configuration():
    base = ClusterConfig(message_size_bytes=256)
    settings = ExperimentSettings().with_cluster(base)
    assert settings.cluster_for(3, 1).message_size_bytes == 256


def test_class3_separation_grows_with_the_timeout():
    settings = ExperimentSettings()
    assert settings.class3_separation_ms(1.0) == 10.0
    assert settings.class3_separation_ms(30.0) == 60.0


def test_scaled_timeouts_clips_small_timeouts_for_large_clusters():
    timeouts = (1.0, 2.0, 10.0, 100.0)
    assert scaled_timeouts(timeouts, 5) == timeouts
    assert scaled_timeouts(timeouts, 9) == (2.0, 10.0, 100.0)
    assert scaled_timeouts(timeouts, 11, max_for_large_n=50.0) == (2.0, 10.0)


def test_settings_hash_is_stable_and_field_sensitive():
    settings = ExperimentSettings()
    assert settings.settings_hash() == ExperimentSettings().settings_hash()
    assert settings.settings_hash() != replace(settings, executions=301).settings_hash()
    assert settings.settings_hash() != replace(settings, seed=settings.seed + 1).settings_hash()
    # Nested cluster configuration is covered too.
    reclustered = settings.with_cluster(ClusterConfig(message_size_bytes=256))
    assert settings.settings_hash() != reclustered.settings_hash()


def test_scale_names_round_trip_through_the_preset_table():
    for name, factory in SCALE_PRESETS.items():
        assert factory().scale_name() == name
        assert ExperimentSettings.from_scale(name) == factory()
