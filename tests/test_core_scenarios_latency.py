"""Tests of run-class scenarios and the latency recorder."""

from __future__ import annotations

import math

import pytest

from repro.core.latency import LatencyRecorder
from repro.core.scenarios import RunClass, Scenario


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def test_no_failures_scenario():
    scenario = Scenario.no_failures()
    assert scenario.run_class is RunClass.NO_FAILURES
    assert scenario.crashed == ()
    assert not scenario.uses_heartbeat_fd
    assert scenario.heartbeat_period_ms is None
    assert "no failures" in scenario.label()


def test_coordinator_crash_scenario_crashes_process_zero():
    scenario = Scenario.coordinator_crash()
    assert scenario.run_class is RunClass.CRASH
    assert scenario.crashed == (0,)


def test_participant_crash_scenario_defaults_to_process_one():
    scenario = Scenario.participant_crash()
    assert scenario.crashed == (1,)
    with pytest.raises(ValueError):
        Scenario.participant_crash(0)


def test_wrong_suspicions_scenario_defaults_heartbeat_period_to_0_7_t():
    scenario = Scenario.wrong_suspicions(timeout_ms=10.0)
    assert scenario.uses_heartbeat_fd
    assert scenario.heartbeat_period_ms == pytest.approx(7.0)
    override = Scenario.wrong_suspicions(timeout_ms=10.0, heartbeat_period_ms=3.0)
    assert override.heartbeat_period_ms == 3.0


def test_scenario_validation_rules():
    with pytest.raises(ValueError):
        Scenario(run_class=RunClass.CRASH)  # crash without crashed processes
    with pytest.raises(ValueError):
        Scenario(run_class=RunClass.NO_FAILURES, crashed=(1,))
    with pytest.raises(ValueError):
        Scenario(run_class=RunClass.WRONG_SUSPICIONS)  # missing timeout
    with pytest.raises(ValueError):
        Scenario.wrong_suspicions(timeout_ms=-1.0)


# ----------------------------------------------------------------------
# Latency recorder
# ----------------------------------------------------------------------
def test_recorder_tracks_the_first_decision_per_instance():
    recorder = LatencyRecorder()
    recorder.register_start(0, 10.0)
    recorder.decision_callback(2, 0, "v", local_time=11.4, global_time=11.39)
    recorder.decision_callback(0, 0, "v", local_time=11.2, global_time=11.21)
    recorder.decision_callback(1, 0, "v", local_time=11.9, global_time=11.88)
    entry = recorder.instances[0]
    assert entry.first_decider == 0
    assert entry.latency == pytest.approx(1.2)
    assert entry.latency_global == pytest.approx(1.21)
    assert entry.deciders == 3
    assert entry.decided


def test_recorder_undecided_instances_have_nan_latency():
    recorder = LatencyRecorder()
    recorder.register_start(0, 1.0)
    recorder.register_start(1, 11.0)
    recorder.decision_callback(0, 1, "v", 11.5, 11.5)
    assert recorder.undecided_instances() == [0]
    assert math.isnan(recorder.instances[0].latency)
    assert recorder.latencies() == [pytest.approx(0.5)]


def test_recorder_latency_lists_cdf_and_summary():
    recorder = LatencyRecorder()
    for instance, latency in enumerate([1.0, 2.0, 3.0, 4.0]):
        recorder.register_start(instance, 10.0 * instance)
        recorder.decision_callback(0, instance, "v", 10.0 * instance + latency, 0.0)
    assert recorder.latencies() == [1.0, 2.0, 3.0, 4.0]
    assert recorder.cdf().median() == pytest.approx(2.0)
    assert recorder.summary().mean == pytest.approx(2.5)


def test_recorder_detects_agreement_violations():
    recorder = LatencyRecorder()
    recorder.register_start(0, 0.0)
    recorder.decision_callback(0, 0, "a", 1.0, 1.0)
    recorder.decision_callback(1, 0, "a", 1.1, 1.1)
    assert recorder.check_agreement()
    recorder.decision_callback(2, 0, "b", 1.2, 1.2)
    assert not recorder.check_agreement()


def test_recorder_handles_decision_before_registration():
    recorder = LatencyRecorder()
    recorder.decision_callback(0, 7, "v", 3.0, 3.0)
    recorder.register_start(7, 1.0)
    assert recorder.instances[0].latency == pytest.approx(2.0)


def test_recorder_decisions_accessor_returns_all_records():
    recorder = LatencyRecorder()
    recorder.register_start(0, 0.0)
    recorder.decision_callback(0, 0, "v", 1.0, 1.0)
    recorder.decision_callback(1, 0, "v", 2.0, 2.0)
    assert len(recorder.decisions(0)) == 2
    assert recorder.decisions(99) == []
