"""Tests of the SAN execution semantics."""

from __future__ import annotations

import pytest

from repro.des.simulator import Simulator
from repro.san.activities import Case, InstantaneousActivity, TimedActivity
from repro.san.executor import SANExecutionError, SANExecutor
from repro.san.gates import InputGate
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.places import Place
from repro.san.rewards import FirstPassageTime
from repro.stats.distributions import Constant, Exponential, Uniform


def _executor(model, seed=1, rewards=(), initial_marking=None):
    return SANExecutor(model, Simulator(seed=seed), rewards=rewards, initial_marking=initial_marking)


def _pipeline_model() -> SANModel:
    """a --(t=1)--> b --(t=2)--> c"""
    model = SANModel("pipeline")
    for name, initial in (("a", 1), ("b", 0), ("c", 0)):
        model.add_place(Place(name, initial))
    model.add_activity(
        TimedActivity("ab", Constant(1.0), input_arcs=["a"], cases=[Case.build(output_arcs=["b"])])
    )
    model.add_activity(
        TimedActivity("bc", Constant(2.0), input_arcs=["b"], cases=[Case.build(output_arcs=["c"])])
    )
    return model


def test_timed_pipeline_fires_in_sequence():
    outcome = _executor(_pipeline_model()).run()
    assert outcome.final_marking["c"] == 1
    assert outcome.end_time == pytest.approx(3.0)
    assert outcome.completions == 2
    assert outcome.dead_marking


def test_stop_predicate_ends_the_replication_early():
    outcome = _executor(_pipeline_model()).run(stop_predicate=lambda m: m["b"] >= 1)
    assert outcome.stopped_by_predicate
    assert outcome.end_time == pytest.approx(1.0)


def test_stop_predicate_true_initially_runs_nothing():
    outcome = _executor(_pipeline_model()).run(stop_predicate=lambda m: m["a"] >= 1)
    assert outcome.stopped_by_predicate
    assert outcome.completions == 0


def test_time_horizon_truncates_the_run():
    outcome = _executor(_pipeline_model()).run(until=1.5)
    assert outcome.final_marking["b"] == 1
    assert outcome.final_marking["c"] == 0


def test_instantaneous_activities_fire_before_timed_ones():
    model = SANModel("mixed")
    model.add_place(Place("a", 1))
    model.add_place(Place("b", 0))
    model.add_place(Place("c", 0))
    model.add_activity(
        InstantaneousActivity("imm", input_arcs=["a"], cases=[Case.build(output_arcs=["b"])])
    )
    model.add_activity(
        TimedActivity("late", Constant(5.0), input_arcs=["a"], cases=[Case.build(output_arcs=["c"])])
    )
    outcome = _executor(model).run()
    assert outcome.final_marking["b"] == 1
    assert outcome.final_marking["c"] == 0
    assert outcome.end_time == 0.0


def test_instantaneous_rank_orders_conflicting_activities():
    model = SANModel("ranked")
    model.add_place(Place("a", 1))
    model.add_place(Place("low", 0))
    model.add_place(Place("high", 0))
    model.add_activity(
        InstantaneousActivity("later", input_arcs=["a"], cases=[Case.build(output_arcs=["high"])], rank=5)
    )
    model.add_activity(
        InstantaneousActivity("sooner", input_arcs=["a"], cases=[Case.build(output_arcs=["low"])], rank=1)
    )
    outcome = _executor(model).run()
    assert outcome.final_marking["low"] == 1
    assert outcome.final_marking["high"] == 0


def test_resource_contention_with_seize_release_idiom_serialises_work():
    """Two jobs contending for one server token must finish at 1.0 and 2.0."""
    model = SANModel("mutex")
    model.add_place(Place("q1", 1))
    model.add_place(Place("q2", 1))
    model.add_place(Place("server", 1))
    model.add_place(Place("s1", 0))
    model.add_place(Place("s2", 0))
    model.add_place(Place("d1", 0))
    model.add_place(Place("d2", 0))
    for job in ("1", "2"):
        model.add_activity(
            InstantaneousActivity(
                f"seize{job}",
                input_arcs=[f"q{job}", "server"],
                cases=[Case.build(output_arcs=[f"s{job}"])],
            )
        )
        model.add_activity(
            TimedActivity(
                f"serve{job}",
                Constant(1.0),
                input_arcs=[f"s{job}"],
                cases=[Case.build(output_arcs=[f"d{job}", "server"])],
            )
        )
    outcome = _executor(model).run()
    assert outcome.final_marking["d1"] == 1
    assert outcome.final_marking["d2"] == 1
    assert outcome.end_time == pytest.approx(2.0)


def test_disabled_timed_activity_is_reactivated_not_fired():
    """A timed activity that loses its token before completion must not fire."""
    model = SANModel("race")
    model.add_place(Place("token", 1))
    model.add_place(Place("fast", 0))
    model.add_place(Place("slow", 0))
    model.add_activity(
        TimedActivity("quick", Constant(1.0), input_arcs=["token"], cases=[Case.build(output_arcs=["fast"])])
    )
    model.add_activity(
        TimedActivity("lazy", Constant(10.0), input_arcs=["token"], cases=[Case.build(output_arcs=["slow"])])
    )
    outcome = _executor(model).run(until=50.0)
    assert outcome.final_marking["fast"] == 1
    assert outcome.final_marking["slow"] == 0
    assert outcome.completions == 1


def test_case_probabilities_split_tokens_between_outcomes():
    model = SANModel("cases")
    model.add_place(Place("src", 200))
    model.add_place(Place("left", 0))
    model.add_place(Place("right", 0))
    model.add_activity(
        TimedActivity(
            "branch",
            Exponential(0.1),
            input_arcs=["src"],
            cases=[
                Case.build(probability=0.7, output_arcs=["left"]),
                Case.build(probability=0.3, output_arcs=["right"]),
            ],
        )
    )
    outcome = _executor(model, seed=5).run()
    assert outcome.final_marking["left"] + outcome.final_marking["right"] == 200
    assert outcome.final_marking["left"] > outcome.final_marking["right"]


def test_input_gate_with_watched_places_reacts_to_changes():
    """The propose-like pattern: an activity enabled only once a counter reaches 2."""
    model = SANModel("threshold")
    model.add_place(Place("waiting", 1))
    model.add_place(Place("count", 0))
    model.add_place(Place("sources", 2))
    model.add_place(Place("done", 0))
    model.add_activity(
        TimedActivity(
            "arrive", Uniform(0.5, 1.0), input_arcs=["sources"], cases=[Case.build(output_arcs=["count"])]
        )
    )
    model.add_activity(
        InstantaneousActivity(
            "go",
            input_arcs=["waiting"],
            input_gates=[
                InputGate("enough", predicate=lambda m: m["count"] >= 2, watched_places=("count",))
            ],
            cases=[Case.build(output_arcs=["done"])],
        )
    )
    outcome = _executor(model, seed=3).run()
    assert outcome.final_marking["done"] == 1


def test_unstable_instantaneous_loop_is_detected():
    model = SANModel("loop")
    model.add_place(Place("a", 1))
    model.add_place(Place("b", 0))
    model.add_activity(
        InstantaneousActivity("ab", input_arcs=["a"], cases=[Case.build(output_arcs=["b"])])
    )
    model.add_activity(
        InstantaneousActivity("ba", input_arcs=["b"], cases=[Case.build(output_arcs=["a"])])
    )
    with pytest.raises(SANExecutionError):
        _executor(model).run()


def test_initial_marking_override():
    model = _pipeline_model()
    outcome = _executor(model, initial_marking=Marking({"a": 0, "b": 1})).run()
    assert outcome.final_marking["c"] == 1
    assert outcome.end_time == pytest.approx(2.0)


def test_rewards_observe_first_passage_time():
    reward = FirstPassageTime(lambda m: m["c"] >= 1, name="reach_c")
    _executor(_pipeline_model(), rewards=[reward]).run()
    assert reward.value() == pytest.approx(3.0)


def test_identical_seeds_reproduce_identical_trajectories():
    model_a = SANModel("stoch")
    model_a.add_place(Place("a", 5))
    model_a.add_place(Place("b", 0))
    model_a.add_activity(
        TimedActivity("move", Exponential(1.0), input_arcs=["a"], cases=[Case.build(output_arcs=["b"])])
    )
    end_times = set()
    for _ in range(2):
        model = SANModel("stoch")
        model.add_place(Place("a", 5))
        model.add_place(Place("b", 0))
        model.add_activity(
            TimedActivity("move", Exponential(1.0), input_arcs=["a"], cases=[Case.build(output_arcs=["b"])])
        )
        end_times.add(_executor(model, seed=42).run().end_time)
    assert len(end_times) == 1


def test_batched_sampler_rejects_negative_durations():
    # Uniform with a negative support is a modeling bug; the batched
    # duration path must catch it exactly like the scalar path does.
    model = SANModel("negative")
    model.add_place(Place("a", 1))
    model.add_place(Place("b", 0))
    model.add_activity(
        TimedActivity(
            "bad",
            Uniform(-5.0, -1.0),
            input_arcs=["a"],
            cases=[Case.build(output_arcs=["b"])],
        )
    )
    with pytest.raises(ValueError, match="negative duration"):
        _executor(model).run(until=10.0)


def test_model_structure_cache_invalidates_on_structural_change():
    model = _pipeline_model()
    first = _executor(model)
    assert first._timed is SANExecutor._structure(model).timed
    # Adding an activity bumps the version; a new executor sees it.
    model.add_place(Place("d", 0))
    model.add_activity(
        TimedActivity(
            "cd", Constant(1.0), input_arcs=["c"], cases=[Case.build(output_arcs=["d"])]
        )
    )
    second = _executor(model)
    names = {activity.name for activity in second._timed}
    assert "cd" in names
    assert second._timed is not first._timed
