"""Tests of the SAN simulation runner, calibration and validation helpers."""

from __future__ import annotations

import pytest

from repro.core.calibration import calibrate_t_send, simulated_latency_cdfs_by_t_send
from repro.core.scenarios import Scenario
from repro.core.simulation import SimulationConfig, SimulationRunner
from repro.core.validation import compare_results, crossover_point, ordering_holds
from repro.failure_detectors.history import FailureDetectorHistory
from repro.failure_detectors.qos import estimate_qos
from repro.sanmodels.parameters import SANParameters


def _fake_qos(recurrence=20.0, duration=2.0, n_processes=3, experiment=1000.0):
    history = FailureDetectorHistory()
    for monitor in range(n_processes):
        for monitored in range(n_processes):
            if monitor == monitored:
                continue
            t = recurrence
            while t + duration < experiment:
                history.record(monitor, monitored, t, True)
                history.record(monitor, monitored, t + duration, False)
                t += recurrence
    return estimate_qos(history, n_processes, experiment)


# ----------------------------------------------------------------------
# SimulationRunner
# ----------------------------------------------------------------------
def test_simulation_config_requires_qos_for_class3():
    with pytest.raises(ValueError):
        SimulationConfig(n_processes=3, scenario=Scenario.wrong_suspicions(5.0))


def test_simulation_runner_class1_produces_latencies():
    result = SimulationRunner(
        SimulationConfig(n_processes=3, scenario=Scenario.no_failures(), replications=30, seed=1)
    ).run()
    assert len(result.latencies_ms) == 30
    assert result.undecided == 0
    assert 0.05 < result.mean_latency_ms < 10.0
    assert result.summary is not None
    assert result.cdf().n == 30


def test_simulation_runner_class2_coordinator_crash_is_slower():
    base = SimulationRunner(
        SimulationConfig(n_processes=3, scenario=Scenario.no_failures(), replications=40, seed=2)
    ).run()
    crash = SimulationRunner(
        SimulationConfig(n_processes=3, scenario=Scenario.coordinator_crash(), replications=40, seed=2)
    ).run()
    assert crash.mean_latency_ms > base.mean_latency_ms


def test_simulation_runner_class3_uses_the_measured_qos():
    good_fd = SimulationRunner(
        SimulationConfig(
            n_processes=3,
            scenario=Scenario.wrong_suspicions(timeout_ms=50.0),
            fd_qos=_fake_qos(recurrence=10_000.0, duration=1.0),
            replications=30,
            seed=3,
        )
    ).run()
    bad_fd = SimulationRunner(
        SimulationConfig(
            n_processes=3,
            scenario=Scenario.wrong_suspicions(timeout_ms=1.0),
            fd_qos=_fake_qos(recurrence=4.0, duration=1.0),
            replications=30,
            seed=3,
        )
    ).run()
    assert bad_fd.mean_latency_ms > good_fd.mean_latency_ms


def test_simulation_runner_class3_with_perfect_qos_degenerates_to_class1():
    qos = estimate_qos(FailureDetectorHistory(), n_processes=3, experiment_duration=100.0)
    runner = SimulationRunner(
        SimulationConfig(
            n_processes=3,
            scenario=Scenario.wrong_suspicions(timeout_ms=100.0),
            fd_qos=qos,
            replications=20,
            seed=4,
        )
    )
    assert runner._fd_settings() is None
    assert len(runner.run().latencies_ms) == 20


def test_simulation_runner_fd_kinds_give_different_but_finite_latencies():
    qos = _fake_qos(recurrence=6.0, duration=1.5)
    results = {}
    for kind in ("deterministic", "exponential"):
        results[kind] = SimulationRunner(
            SimulationConfig(
                n_processes=3,
                scenario=Scenario.wrong_suspicions(timeout_ms=2.0),
                fd_qos=qos,
                fd_kind=kind,
                replications=30,
                seed=5,
            )
        ).run().mean_latency_ms
    assert all(value > 0 for value in results.values())


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def test_calibrate_t_send_picks_the_best_matching_candidate():
    params = SANParameters()
    # Produce "measurements" from the SAN itself with a known t_send; the
    # calibration sweep must pick a candidate at least as good as any other.
    from repro.sanmodels.consensus_model import ConsensusSANExperiment

    truth = ConsensusSANExperiment(
        n_processes=3, parameters=params.with_t_send(0.025), seed=10
    ).run(replications=60)
    result = calibrate_t_send(
        measured_latencies=truth.latencies_ms,
        base_parameters=params,
        n_processes=3,
        candidate_t_send_ms=(0.005, 0.025),
        replications=60,
        seed=11,
    )
    assert result.best_t_send_ms in (0.005, 0.025)
    best = result.candidate_for(result.best_t_send_ms)
    assert all(best.ks_distance <= candidate.ks_distance for candidate in result.candidates)
    assert result.measured_mean_ms == pytest.approx(truth.mean_ms, rel=1e-6)


def test_calibrate_t_send_requires_measurements():
    with pytest.raises(ValueError):
        calibrate_t_send([], SANParameters())


def test_simulated_latency_cdfs_by_t_send_returns_one_cdf_per_candidate():
    cdfs = simulated_latency_cdfs_by_t_send(
        SANParameters(), n_processes=3, candidate_t_send_ms=(0.01, 0.03), replications=20, seed=1
    )
    assert set(cdfs) == {0.01, 0.03}
    assert all(cdf.n == 20 for cdf in cdfs.values())


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------
def test_compare_results_reports_relative_error_and_overlap():
    report = compare_results([1.0, 1.1, 0.9, 1.0], [1.05, 1.0, 1.1, 0.95], label="n=3")
    assert report.relative_error < 0.1
    assert report.agrees_within(0.1)
    assert report.intervals_overlap
    assert 0.0 <= report.ks_distance <= 1.0
    assert "n=3" in str(report)


def test_compare_results_detects_large_disagreement():
    report = compare_results([1.0, 1.1, 0.9], [2.0, 2.1, 1.9])
    assert report.relative_error > 0.5
    assert not report.agrees_within(0.3)
    assert not report.intervals_overlap


def test_compare_results_rejects_empty_samples():
    with pytest.raises(ValueError):
        compare_results([], [1.0])


def test_ordering_holds_helper():
    assert ordering_holds([1.0, 1.5, 2.0])
    assert not ordering_holds([1.0, 0.5])
    assert ordering_holds([3.0, 2.0, 2.0], decreasing=True)


def test_crossover_point_finds_the_first_threshold_crossing():
    xs = [1, 2, 5, 10, 20]
    ys = [50.0, 20.0, 5.0, 1.5, 1.4]
    assert crossover_point(xs, ys, threshold=2.0) == 10
    assert crossover_point(xs, ys, threshold=0.5) is None
