"""Tests of means, confidence intervals and summaries."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.descriptive import (
    batch_means,
    confidence_interval,
    summarize,
)


def test_confidence_interval_of_constant_sample_has_zero_width():
    ci = confidence_interval([2.0, 2.0, 2.0, 2.0])
    assert ci.mean == 2.0
    assert ci.half_width == 0.0
    assert ci.contains(2.0)


def test_confidence_interval_known_values():
    # For the sample 1..5 with 90% confidence, mean 3, sd 1.5811,
    # t(0.95, df=4) = 2.1318 -> half width ~ 1.507.
    ci = confidence_interval([1, 2, 3, 4, 5], confidence=0.90)
    assert ci.mean == pytest.approx(3.0)
    assert ci.half_width == pytest.approx(1.5074, rel=1e-3)
    assert ci.lower == pytest.approx(3.0 - 1.5074, rel=1e-3)
    assert ci.upper == pytest.approx(3.0 + 1.5074, rel=1e-3)


def test_single_observation_gives_infinite_half_width():
    ci = confidence_interval([4.2])
    assert ci.mean == 4.2
    assert math.isinf(ci.half_width)


def test_higher_confidence_widens_the_interval():
    sample = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    narrow = confidence_interval(sample, confidence=0.80)
    wide = confidence_interval(sample, confidence=0.99)
    assert wide.half_width > narrow.half_width


def test_empty_sample_rejected():
    with pytest.raises(ValueError):
        confidence_interval([])


def test_invalid_confidence_rejected():
    with pytest.raises(ValueError):
        confidence_interval([1, 2], confidence=1.5)


def test_interval_overlap_detection():
    a = confidence_interval([1.0, 1.1, 0.9, 1.05])
    b = confidence_interval([1.05, 1.0, 1.1, 0.95])
    c = confidence_interval([100.0, 101.0, 99.0])
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_summarize_reports_order_statistics():
    summary = summarize(list(range(1, 101)))
    assert summary.n == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.minimum == 1
    assert summary.maximum == 100
    assert summary.median == pytest.approx(50.5)
    assert summary.p90 == pytest.approx(90.1, rel=1e-2)
    assert "mean" in summary.as_dict()


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_batch_means_partitions_the_sample():
    means = batch_means([1, 2, 3, 4, 5, 6], batches=3)
    assert means == [1.5, 3.5, 5.5]


def test_batch_means_rejects_more_batches_than_samples():
    with pytest.raises(ValueError):
        batch_means([1, 2], batches=3)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=50))
def test_confidence_interval_always_contains_the_sample_mean(sample):
    ci = confidence_interval(sample)
    assert ci.lower <= ci.mean <= ci.upper
    assert ci.mean == pytest.approx(float(np.mean(sample)), abs=1e-6)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=60)
)
def test_summary_respects_basic_order_invariants(sample):
    summary = summarize(sample)
    # Comparisons allow a tiny slack for floating-point summation error
    # (e.g. the mean of [0.7, 0.7, 0.7] is 0.6999...98 in IEEE arithmetic).
    slack = 1e-9 * max(1.0, summary.maximum)
    assert summary.minimum <= summary.median <= summary.maximum
    assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
    assert summary.p90 <= summary.maximum + slack
