"""CLI contract for ``python -m repro.analysis``: exit codes and formats."""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def dirty_tree(tmp_path):
    """A tiny repo-shaped tree with one DET002 finding in src/repro/."""
    package = tmp_path / "src" / "repro" / "des"
    package.mkdir(parents=True)
    (package / "sim.py").write_text(
        "def key(name):\n    return hash(name)\n", encoding="utf-8"
    )
    return tmp_path


def run_cli(argv):
    return main([str(arg) for arg in argv])


def test_exit_zero_on_clean_repo_package(capsys):
    code = run_cli(["src/repro/analysis", "--root", REPO_ROOT])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_exit_one_on_findings(dirty_tree, capsys):
    code = run_cli(["src", "--root", dirty_tree])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET002" in out
    assert "src/repro/des/sim.py:2" in out


def test_exit_two_on_missing_path(capsys):
    code = run_cli(["no/such/path", "--root", REPO_ROOT])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_exit_two_on_unknown_select(capsys):
    code = run_cli(["src", "--root", REPO_ROOT, "--select", "BOGUS9"])
    assert code == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_exit_two_on_malformed_baseline(dirty_tree, capsys):
    bad = dirty_tree / "baseline.json"
    bad.write_text("[]", encoding="utf-8")
    code = run_cli(["src", "--root", dirty_tree, "--baseline", bad])
    assert code == 2
    assert "baseline" in capsys.readouterr().err


def test_json_format(dirty_tree, capsys):
    code = run_cli(["src", "--root", dirty_tree, "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["active"] == 1
    assert payload["findings"][0]["code"] == "DET002"


def test_github_format(dirty_tree, capsys):
    code = run_cli(["src", "--root", dirty_tree, "--format", "github"])
    assert code == 1
    captured = capsys.readouterr()
    assert captured.out.startswith("::error file=src/repro/des/sim.py,line=2")
    assert "DET002" in captured.err  # human summary still lands on stderr


def test_select_skips_other_rules(dirty_tree, capsys):
    code = run_cli(["src", "--root", dirty_tree, "--select", "DET004"])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_baseline_write_then_gate(dirty_tree, capsys):
    baseline = dirty_tree / "baseline.json"
    assert run_cli(["src", "--root", dirty_tree, "--baseline", baseline, "--write-baseline"]) == 0
    assert "recorded 1 findings" in capsys.readouterr().out

    # Gated run: the recorded finding no longer fails...
    assert run_cli(["src", "--root", dirty_tree, "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # ...but a new finding still does.
    sim = dirty_tree / "src" / "repro" / "des" / "sim.py"
    sim.write_text(sim.read_text(encoding="utf-8") + "SALT = hash('x')\n", encoding="utf-8")
    assert run_cli(["src", "--root", dirty_tree, "--baseline", baseline]) == 1


def test_write_baseline_requires_baseline_path():
    with pytest.raises(SystemExit) as excinfo:
        run_cli(["src", "--root", REPO_ROOT, "--write-baseline"])
    assert excinfo.value.code == 2


def test_list_rules(capsys):
    assert run_cli(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "DET004", "DET005", "PICKLE001", "MUT001"):
        assert code in out


def test_show_suppressed_includes_suppressed_findings(capsys):
    run_cli(["src/repro/analysis", "--root", REPO_ROOT, "--show-suppressed"])
    out = capsys.readouterr().out
    assert "suppressed" in out


def test_default_paths():
    parser = build_parser()
    options = parser.parse_args([])
    assert options.paths == ["src", "tests", "benchmarks"]
