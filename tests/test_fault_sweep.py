"""Tests of the fault-load scenario sweep (experiments.fault_sweep)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.fault_sweep import (
    FAULT_LOAD_KINDS,
    build_fault_load,
    fault_sweep_plan,
    format_fault_sweep,
    run_fault_sweep,
)
from repro.experiments.settings import ExperimentSettings
from repro.faults import MessageLoss, NetworkPartition


def _tiny_settings() -> ExperimentSettings:
    smoke = ExperimentSettings.smoke()
    from dataclasses import replace

    return replace(
        smoke, class3_executions=10, replications=10, simulated_process_counts=(3,)
    )


def test_build_fault_load_covers_every_kind():
    for kind in FAULT_LOAD_KINDS:
        load = build_fault_load(kind, loss_rate=0.1, n_processes=3, horizon_ms=300.0)
        assert load.label() == kind
        assert load.select(MessageLoss)  # the loss axis is always present
    with pytest.raises(ValueError):
        build_fault_load("bogus", 0.0, 3, 300.0)
    assert not build_fault_load("none", 0.0, 3, 300.0)  # empty load


def test_partition_load_isolates_the_coordinator():
    load = build_fault_load("partition", 0.0, 5, horizon_ms=300.0)
    (partition,) = load.select(NetworkPartition)
    assert partition.groups == ((0,), (1, 2, 3, 4))
    assert partition.start_ms == pytest.approx(100.0)
    assert partition.end_ms == pytest.approx(200.0)


def test_plan_has_one_point_per_grid_combination():
    settings = _tiny_settings()
    plan = fault_sweep_plan(settings, loss_rates=(0.0, 0.05), load_kinds=("none", "reorder"))
    assert len(plan) == 1 * 2 * 2
    assert len(set(plan.seeds())) == len(plan)


def test_fault_sweep_runs_end_to_end_and_reports_drop_counters():
    settings = _tiny_settings()
    result = run_fault_sweep(
        settings, loss_rates=(0.0, 0.2), load_kinds=("none", "partition")
    )
    assert len(result.points) == 4
    lossy = result.point(3, "none", 0.2)
    assert lossy.messages_dropped > 0
    assert lossy.drops_by_cause.get("wire:loss", 0) > 0
    assert lossy.fault_counters["messages_lost"] == lossy.drops_by_cause["wire:loss"]
    partitioned = result.point(3, "partition", 0.0)
    assert partitioned.drops_by_cause.get("wire:partition", 0) > 0
    clean = result.point(3, "none", 0.0)
    assert clean.messages_dropped == 0
    assert math.isfinite(clean.mean_latency_ms)
    assert clean.san_latency_ms is not None
    # Aggregated counters and the textual report.
    totals = result.total_drops_by_cause()
    assert totals.get("wire:loss", 0) > 0 and totals.get("wire:partition", 0) > 0
    text = format_fault_sweep(result)
    assert "wire:loss" in text and "partition" in text


def test_fault_sweep_parallel_matches_serial():
    settings = _tiny_settings()
    kwargs = dict(loss_rates=(0.0, 0.2), load_kinds=("none",))
    serial = run_fault_sweep(settings, jobs=1, **kwargs)
    parallel = run_fault_sweep(settings, jobs=2, **kwargs)
    for key, point in serial.points.items():
        other = parallel.points[key]
        assert point.mean_latency_ms == other.mean_latency_ms
        assert point.drops_by_cause == other.drops_by_cause
        assert point.san_latency_ms == other.san_latency_ms
