"""Tests of the Ethernet hub, the transport pipeline and message tracing."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.cluster.message import BROADCAST, Message
from repro.cluster.neko import ProtocolLayer


class _Sink(ProtocolLayer):
    """Records every delivered message."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_deliver(self, message):
        self.received.append(message)


def _cluster(config):
    cluster = Cluster(config)
    cluster.create_processes(lambda sim, pid: [_Sink(sim, f"sink{pid}")])
    cluster.start_all()
    return cluster


def _send(cluster, sender, destination, msg_type="data", size=100):
    message = Message(sender=sender, destination=destination, msg_type=msg_type, size_bytes=size)
    cluster.transport.send(message)
    return message


def test_unicast_is_delivered_to_its_destination_only(cluster_config):
    cluster = _cluster(cluster_config)
    _send(cluster, 0, 2)
    cluster.run(until=10.0)
    assert len(cluster.process(2).layer(_Sink).received) == 1
    assert cluster.process(1).layer(_Sink).received == []
    assert cluster.transport.messages_delivered == 1


def test_end_to_end_delay_is_positive_and_bounded(cluster_config):
    cluster = _cluster(cluster_config)
    _send(cluster, 0, 1)
    cluster.run(until=10.0)
    record = cluster.trace.records[0]
    assert 0.05 < record.end_to_end_delay < 1.0


def test_broadcast_reaches_every_other_process(cluster_config_5):
    cluster = _cluster(cluster_config_5)
    _send(cluster, 2, BROADCAST)
    cluster.run(until=10.0)
    for pid in range(5):
        received = cluster.process(pid).layer(_Sink).received
        assert len(received) == (0 if pid == 2 else 1)
    # The copies carry the original message id as parent.
    parents = {record.parent_id for record in cluster.trace.records}
    assert len(parents) == 1


def test_broadcast_copies_are_staggered_by_sender_side_serialisation(cluster_config_5):
    cluster = _cluster(cluster_config_5)
    _send(cluster, 0, BROADCAST)
    cluster.run(until=10.0)
    deliveries = sorted(record.delivered_at for record in cluster.trace.records)
    assert len(deliveries) == 4
    assert deliveries[-1] - deliveries[0] > cluster.config.network.cpu_send_ms


def test_concurrent_senders_contend_for_the_shared_medium(cluster_config):
    config = cluster_config
    cluster = _cluster(config)
    _send(cluster, 0, 2)
    _send(cluster, 1, 2)
    cluster.run(until=10.0)
    assert cluster.hub.frames_transmitted == 2
    # Both messages also contend for the destination CPU; the second delivery
    # must be later than the first by at least the receive cost.
    times = sorted(record.delivered_at for record in cluster.trace.records)
    assert times[1] - times[0] >= config.network.cpu_receive_ms - 1e-9


def test_crashed_sender_sends_nothing(cluster_config):
    cluster = _cluster(cluster_config)
    cluster.crash_process(0)
    _send(cluster, 0, 1)
    cluster.run(until=10.0)
    assert cluster.transport.messages_delivered == 0
    assert cluster.transport.messages_dropped >= 1


def test_crashed_destination_drops_the_message(cluster_config):
    cluster = _cluster(cluster_config)
    cluster.crash_process(1)
    _send(cluster, 0, 1)
    cluster.run(until=10.0)
    assert cluster.process(1).layer(_Sink).received == []
    assert cluster.transport.messages_dropped >= 1


def test_larger_messages_occupy_the_wire_for_longer(cluster_config):
    cluster = _cluster(cluster_config)
    assert cluster.hub.frame_time(1000) > cluster.hub.frame_time(100)


def test_unknown_destination_is_rejected(cluster_config):
    cluster = _cluster(cluster_config)
    with pytest.raises(ValueError):
        _send(cluster, 0, 9)


def test_trace_filters_and_delay_lists(cluster_config):
    cluster = _cluster(cluster_config)
    _send(cluster, 0, 1, msg_type="ping")
    _send(cluster, 0, BROADCAST, msg_type="blast")
    cluster.run(until=10.0)
    assert len(cluster.trace.filter(msg_type="ping")) == 1
    assert len(cluster.trace.filter(broadcast=True)) == 2
    assert len(cluster.trace.unicast_delays(msg_type="ping")) == 1
    assert len(cluster.trace.broadcast_delays_averaged(msg_type="blast")) == 1
    assert len(cluster.trace.broadcast_delays_per_destination(msg_type="blast")) == 2


def test_message_helpers():
    message = Message(sender=0, destination=BROADCAST, msg_type="x")
    assert message.is_broadcast
    copy = message.unicast_copy(2)
    assert copy.destination == 2 and copy.parent_id == message.msg_id
    assert message.end_to_end_delay() is None
    message.submitted_at, message.delivered_at = 1.0, 1.4
    assert message.end_to_end_delay() == pytest.approx(0.4)


def test_reproducibility_same_seed_same_delays():
    def run_once():
        cluster = _cluster(ClusterConfig(n_processes=3, seed=77))
        _send(cluster, 0, 1)
        _send(cluster, 2, 1)
        cluster.run(until=10.0)
        return [record.end_to_end_delay for record in cluster.trace.records]

    assert run_once() == run_once()
