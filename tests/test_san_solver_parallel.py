"""Tests of the parallel SimulativeSolver and its precision-loop fixes."""

from __future__ import annotations

import math

import pytest

from repro.san.activities import Case, TimedActivity
from repro.san.model import SANModel
from repro.san.places import Place
from repro.san.rewards import FirstPassageTime, IntervalOfTime
from repro.san.solver import SimulativeSolver
from repro.sanmodels.consensus_model import ConsensusSANExperiment
from repro.stats.distributions import Uniform


# Module-level factories so that jobs>1 can pickle the solver.
def _latency_model() -> SANModel:
    model = SANModel("latency")
    model.add_place(Place("start", 1))
    model.add_place(Place("end", 0))
    model.add_activity(
        TimedActivity(
            "work",
            Uniform(1.0, 3.0),
            input_arcs=["start"],
            cases=[Case.build(output_arcs=["end"])],
        )
    )
    return model


def _latency_rewards():
    return [FirstPassageTime(lambda m: m["end"] >= 1, name="latency")]


def _done(marking) -> bool:
    return marking["end"] >= 1


def _far_rewards():
    # Reached only if the horizon allows; NaN otherwise.
    return [FirstPassageTime(lambda m: m["end"] >= 2, name="never")]


def _zero_rewards():
    # Identically zero: "end" never holds tokens before the stop predicate.
    return [IntervalOfTime(lambda m: 0.0, name="zero")]


def _solver(**kwargs) -> SimulativeSolver:
    defaults = dict(
        model_factory=_latency_model,
        reward_factory=_latency_rewards,
        stop_predicate=_done,
        seed=17,
    )
    defaults.update(kwargs)
    return SimulativeSolver(**defaults)


# ----------------------------------------------------------------------
# Parallel equivalence
# ----------------------------------------------------------------------
def test_parallel_solve_is_bit_identical_to_serial():
    serial = _solver().solve(replications=24, jobs=1)
    parallel = _solver().solve(replications=24, jobs=3)
    assert serial.values("latency") == parallel.values("latency")
    assert serial.mean("latency") == parallel.mean("latency")
    assert [rep.replication for rep in parallel.replications] == list(range(24))


def test_parallel_precision_loop_matches_serial():
    kwargs = dict(
        target_reward="latency",
        relative_precision=0.15,
        min_replications=8,
        max_replications=200,
        precision_batch=8,
    )
    serial = _solver().solve(jobs=1, **kwargs)
    parallel = _solver().solve(jobs=2, **kwargs)
    assert serial.n == parallel.n
    assert serial.values("latency") == parallel.values("latency")
    assert serial.precision_achieved is True
    assert parallel.precision_achieved is True


def test_parallel_consensus_experiment_matches_serial():
    serial = ConsensusSANExperiment(n_processes=3, seed=7).run(replications=8, jobs=1)
    parallel = ConsensusSANExperiment(n_processes=3, seed=7).run(replications=8, jobs=2)
    assert serial.latencies_ms == parallel.latencies_ms
    assert serial.mean_ms == parallel.mean_ms


# ----------------------------------------------------------------------
# Precision-loop termination (zero mean) and NaN accounting
# ----------------------------------------------------------------------
def test_zero_mean_target_stops_with_warning_instead_of_running_to_max():
    solver = _solver(reward_factory=_zero_rewards)
    with pytest.warns(UserWarning, match="zero mean"):
        result = solver.solve(
            target_reward="zero",
            relative_precision=0.1,
            min_replications=5,
            max_replications=10_000,
        )
    assert result.n == 5  # stopped at the first check, not at max_replications
    assert result.precision_achieved is False
    assert result.target_reward == "zero"
    assert "zero mean" in result.precision_note


def test_unreached_precision_target_is_flagged():
    result = _solver().solve(
        target_reward="latency",
        relative_precision=1e-9,
        min_replications=4,
        max_replications=12,
        precision_batch=4,
    )
    assert result.n == 12
    assert result.precision_achieved is False
    assert "not reached" in result.precision_note


def test_nan_filtered_sample_size_is_surfaced():
    # The horizon cuts every replication short of the unreachable target.
    solver = _solver(reward_factory=_far_rewards, max_time=10.0)
    result = solver.solve(replications=6)
    assert result.nan_count("never") == 6
    assert result.sample_size("never") == 0
    assert math.isnan(result.mean("never"))
    ok = _solver().solve(replications=6)
    assert ok.sample_size("latency") == 6
    assert ok.nan_count("latency") == 0


# ----------------------------------------------------------------------
# Model reuse
# ----------------------------------------------------------------------
def test_reuse_model_is_bit_identical_to_fresh_factories():
    fresh = _solver().solve(replications=25)
    reused = _solver(reuse_model=True).solve(replications=25)
    assert [rep.rewards for rep in fresh.replications] == [
        rep.rewards for rep in reused.replications
    ]
    assert [rep.end_time for rep in fresh.replications] == [
        rep.end_time for rep in reused.replications
    ]


def test_reuse_model_builds_the_model_once():
    calls = []

    def counting_factory():
        calls.append(1)
        return _latency_model()

    solver = _solver(model_factory=counting_factory, reuse_model=True)
    solver.solve(replications=10)
    assert len(calls) == 1


def test_reused_model_is_dropped_on_pickling():
    import pickle

    solver = _solver(reuse_model=True)
    solver.run_replication(0)
    assert solver._cached_model is not None
    clone = pickle.loads(pickle.dumps(solver))
    assert clone._cached_model is None
    # The clone rebuilds its own cache and produces the same results.
    assert clone.run_replication(3).rewards == solver.run_replication(3).rewards


def test_reuse_model_parallel_matches_serial():
    serial = _solver(reuse_model=True).solve(replications=12, jobs=1)
    parallel = _solver(reuse_model=True).solve(replications=12, jobs=2)
    assert [rep.rewards for rep in serial.replications] == [
        rep.rewards for rep in parallel.replications
    ]
