"""Tests of the bi-modal uniform fitting used for end-to-end delays (§5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.distributions import BimodalUniform
from repro.stats.fitting import fit_bimodal_uniform


def _samples_from(dist: BimodalUniform, n: int = 5000) -> list[float]:
    rng = np.random.default_rng(5)
    return [dist.sample(rng) for _ in range(n)]


def test_fit_recovers_the_papers_distribution_approximately():
    truth = BimodalUniform()  # the paper's unicast fit
    fitted = fit_bimodal_uniform(_samples_from(truth))
    assert fitted.low1 == pytest.approx(0.1, abs=0.02)
    assert fitted.high2 == pytest.approx(0.35, abs=0.03)
    assert fitted.p1 == pytest.approx(0.8)
    assert fitted.mean() == pytest.approx(truth.mean(), rel=0.1)


def test_fit_respects_the_requested_body_probability():
    truth = BimodalUniform()
    fitted = fit_bimodal_uniform(_samples_from(truth), body_probability=0.6)
    assert fitted.p1 == pytest.approx(0.6)


def test_fitted_modes_do_not_overlap():
    rng = np.random.default_rng(11)
    samples = list(rng.uniform(0.1, 0.4, size=2000))
    fitted = fit_bimodal_uniform(samples)
    assert fitted.low1 <= fitted.high1 <= fitted.low2 <= fitted.high2


def test_fit_requires_enough_samples():
    with pytest.raises(ValueError):
        fit_bimodal_uniform([0.1] * 5)


def test_fit_rejects_invalid_body_probability():
    with pytest.raises(ValueError):
        fit_bimodal_uniform([0.1] * 20, body_probability=1.2)


def test_fit_handles_nearly_constant_data():
    samples = [0.2 + 1e-6 * i for i in range(100)]
    fitted = fit_bimodal_uniform(samples)
    assert fitted.low1 == pytest.approx(0.2, abs=1e-3)
    assert fitted.high2 == pytest.approx(0.2, abs=1e-3)
