"""Tests of the named random streams."""

from __future__ import annotations

import numpy as np

from repro.des.random import RandomStreams, _stable_hash


def test_same_seed_same_stream_name_gives_identical_sequences():
    a = RandomStreams(7).stream("net")
    b = RandomStreams(7).stream("net")
    assert [float(a.random()) for _ in range(5)] == [float(b.random()) for _ in range(5)]


def test_different_names_give_different_sequences():
    streams = RandomStreams(7)
    a = streams.stream("net")
    b = streams.stream("cpu")
    assert [float(a.random()) for _ in range(5)] != [float(b.random()) for _ in range(5)]


def test_different_seeds_give_different_sequences():
    a = RandomStreams(1).stream("net")
    b = RandomStreams(2).stream("net")
    assert [float(a.random()) for _ in range(5)] != [float(b.random()) for _ in range(5)]


def test_stream_is_cached_and_stateful():
    streams = RandomStreams(3)
    first = streams.stream("x")
    value = float(first.random())
    again = streams.stream("x")
    assert first is again
    assert float(again.random()) != value  # state advanced, not reset


def test_contains_len_and_iter():
    streams = RandomStreams(3)
    assert "a" not in streams
    streams.stream("a")
    streams.stream("b")
    assert "a" in streams
    assert len(streams) == 2
    assert set(iter(streams)) == {"a", "b"}


def test_spawn_is_deterministic():
    child1 = RandomStreams(9).spawn("replica-1")
    child2 = RandomStreams(9).spawn("replica-1")
    assert float(child1.stream("s").random()) == float(child2.stream("s").random())


def test_spawn_children_differ_by_name():
    parent = RandomStreams(9)
    a = parent.spawn("replica-1").stream("s")
    b = parent.spawn("replica-2").stream("s")
    assert float(a.random()) != float(b.random())


def test_stable_hash_is_deterministic_and_distinct():
    assert _stable_hash("abc") == _stable_hash("abc")
    assert _stable_hash("abc") != _stable_hash("abd")


def test_streams_produce_numpy_generators():
    assert isinstance(RandomStreams(0).stream("x"), np.random.Generator)


def test_spawn_does_not_collide_across_masters():
    # Regression: the old additive derivation (master + hash(name)) made
    # children of *different* masters collide whenever the seed difference
    # equalled the hash difference.  SeedSequence spawn keys cannot.
    delta = _stable_hash("replica-2") - _stable_hash("replica-1")
    a = abs(delta) + 1_000  # keep both constructed seeds non-negative
    b = a + delta
    colliding_old = (a + _stable_hash("replica-2")) % (2**63) == (
        b + _stable_hash("replica-1")
    ) % (2**63)
    assert colliding_old  # the constructed pair did collide under the old scheme
    one = RandomStreams(a).spawn("replica-2").stream("s")
    two = RandomStreams(b).spawn("replica-1").stream("s")
    assert [float(one.random()) for _ in range(4)] != [
        float(two.random()) for _ in range(4)
    ]


def test_spawn_preserves_non_integer_entropy():
    # Regression: non-int entropy used to be discarded (base = 0), making
    # every OS-seeded parent produce the same children.
    parent_a = RandomStreams(None)
    parent_b = RandomStreams(None)
    a = parent_a.spawn("replica-1").stream("s")
    b = parent_b.spawn("replica-1").stream("s")
    assert float(a.random()) != float(b.random())


def test_spawned_streams_are_disjoint_from_parent_streams():
    parent = RandomStreams(21)
    direct = parent.stream("x")
    nested = parent.spawn("x").stream("x")
    assert [float(direct.random()) for _ in range(4)] != [
        float(nested.random()) for _ in range(4)
    ]
