"""Per-rule fixture tests for the determinism linter's rule set.

Every rule has one known-bad fixture that must fire (with the exact
expected finding count, so rules cannot silently widen or narrow) and
one known-good fixture that must pass clean.  Fixtures live under
``tests/fixtures/analysis/`` -- outside every rule's default package
scope -- so each test aims its rule at the fixture with a scope
override, which doubles as coverage of the engine's per-package scope
configuration.
"""

from pathlib import Path

import pytest

from repro.analysis import Scope, Severity, all_rules, analyze_paths, get_rule
from repro.analysis.rules import _REGISTRY, Rule, register_rule

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"

#: (rule code, bad fixture, expected findings in it).
RULE_FIXTURES = [
    ("DET001", "det001", 5),
    ("DET002", "det002", 2),
    ("DET003", "det003", 5),
    ("DET004", "det004", 3),
    ("DET005", "det005", 2),
    ("PICKLE001", "pickle001", 3),
    ("MUT001", "mut001", 3),
]

EVERYWHERE = Scope(include=("*",))


def run_rule_on(filename: str, code: str):
    """Analyze one fixture file with one rule, scope widened to match."""
    return analyze_paths(
        [str(FIXTURES / filename)],
        root=REPO_ROOT,
        scopes={code: EVERYWHERE},
        select=[code],
    )


@pytest.mark.parametrize("code,stem,expected", RULE_FIXTURES)
def test_bad_fixture_fires(code, stem, expected):
    result = run_rule_on(f"{stem}_bad.py", code)
    assert len(result.findings) == expected
    assert all(finding.code == code for finding in result.findings)
    assert all(finding.status == "active" for finding in result.findings)
    lines = [finding.line for finding in result.findings]
    assert lines == sorted(lines), "findings must come out in source order"
    assert all(finding.path.endswith(f"{stem}_bad.py") for finding in result.findings)


@pytest.mark.parametrize("code,stem,expected", RULE_FIXTURES)
def test_good_fixture_passes(code, stem, expected):
    result = run_rule_on(f"{stem}_good.py", code)
    assert result.findings == []


@pytest.mark.parametrize("code,stem,expected", RULE_FIXTURES)
def test_suppressed_bad_fixture_passes(code, stem, expected, tmp_path):
    """Appending a justified suppression to each finding line silences it."""
    source = (FIXTURES / f"{stem}_bad.py").read_text(encoding="utf-8")
    flagged = {finding.line for finding in run_rule_on(f"{stem}_bad.py", code).findings}
    lines = source.splitlines()
    for number in flagged:
        lines[number - 1] += f"  # repro: ignore[{code}] fixture justification"
    target = tmp_path / f"{stem}_suppressed.py"
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")

    result = analyze_paths(
        [str(target)], root=tmp_path, scopes={code: EVERYWHERE}, select=[code]
    )
    assert result.unsuppressed == []
    suppressed = [f for f in result.findings if f.status == "suppressed"]
    assert len(suppressed) == expected
    assert all(f.suppress_reason == "fixture justification" for f in suppressed)


# ----------------------------------------------------------------------
# Default scopes
# ----------------------------------------------------------------------
def test_sim_scoped_rules_ignore_out_of_scope_files():
    """Without an override, tests/fixtures is outside the sim packages."""
    for code in ("DET001", "DET002", "DET004", "DET005"):
        stem = code.lower()
        result = analyze_paths(
            [str(FIXTURES / f"{stem}_bad.py")], root=REPO_ROOT, select=[code]
        )
        assert result.findings == [], code


def test_scope_patterns():
    scope = Scope(include=("src/repro/des/*",), exclude=("src/repro/des/skip.py",))
    assert scope.applies_to("src/repro/des/simulator.py")
    assert scope.applies_to("src/repro/des/deep/nested.py")
    assert not scope.applies_to("src/repro/stats/cdf.py")
    assert not scope.applies_to("src/repro/des/skip.py")


def test_det004_scope_exempts_artifacts_and_benchmarking():
    scope = get_rule("DET004").scope
    assert scope.applies_to("src/repro/des/simulator.py")
    assert not scope.applies_to("src/repro/experiments/artifacts.py")
    assert not scope.applies_to("src/repro/benchmarking.py")


def test_det001_scope_includes_the_analyzer_itself():
    assert get_rule("DET001").scope.applies_to("src/repro/analysis/engine.py")


# ----------------------------------------------------------------------
# Registry and rule metadata
# ----------------------------------------------------------------------
def test_registry_is_complete_and_ordered():
    rules = all_rules()
    codes = [rule.code for rule in rules]
    assert codes == sorted(codes)
    assert {code for code, _stem, _n in RULE_FIXTURES} <= set(codes)


def test_every_rule_is_documented():
    for rule in all_rules():
        assert rule.code and rule.name, rule
        assert len(rule.rationale) > 80, f"{rule.code} rationale is too thin"
        assert rule.interests, rule.code
        assert isinstance(rule.severity, Severity)


def test_get_rule_unknown_code():
    with pytest.raises(KeyError, match="unknown rule code"):
        get_rule("NOPE999")


def test_duplicate_rule_code_rejected():
    class First(Rule):
        code = "TST999"
        name = "test-first"
        rationale = "test"
        interests = ()

    class Second(Rule):
        code = "TST999"
        name = "test-second"
        rationale = "test"
        interests = ()

    try:
        register_rule(First)
        with pytest.raises(ValueError, match="duplicate rule code"):
            register_rule(Second)
        register_rule(First)  # re-registering the same class is a no-op
    finally:
        _REGISTRY.pop("TST999", None)
