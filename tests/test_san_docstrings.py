"""Docstring gate for the SAN execution core.

The ruff ``D100``/``D101``/``D102``/``D103`` rules are scoped (via a
negated per-file-ignore in ``ruff.toml``) to the four modules whose
public surface carries the determinism/draw-order contract.  This test
mirrors that gate with a plain AST walk, so the obligation is enforced
even where ruff is not installed, and additionally checks that the
module docstrings actually state the contract.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

import repro.san

SAN_DIR = Path(repro.san.__file__).parent

#: The SAN execution core: every public symbol must be documented.
GATED_MODULES = ("solver", "execution", "compiled", "batched")


def _missing_docstrings(tree: ast.Module) -> list:
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            name = child.name
            if name.startswith("_"):  # private (and magic) names are exempt
                continue
            if ast.get_docstring(child) is None:
                missing.append(f"{prefix}{name} (line {child.lineno})")
            if isinstance(child, ast.ClassDef):
                walk(child, prefix=f"{prefix}{name}.")

    walk(tree, prefix="")
    return missing


@pytest.mark.parametrize("module", GATED_MODULES)
def test_san_core_public_surface_is_fully_documented(module):
    source = (SAN_DIR / f"{module}.py").read_text()
    missing = _missing_docstrings(ast.parse(source))
    assert not missing, (
        f"repro/san/{module}.py public symbols without docstrings: {missing}"
    )


@pytest.mark.parametrize("module", GATED_MODULES)
def test_san_core_module_docstrings_state_the_determinism_contract(module):
    source = (SAN_DIR / f"{module}.py").read_text()
    doc = (ast.get_docstring(ast.parse(source)) or "").lower()
    assert any(word in doc for word in ("determin", "bit-identical", "draw order")), (
        f"repro/san/{module}.py module docstring must state the "
        "determinism/draw-order obligations"
    )
