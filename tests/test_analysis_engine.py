"""Engine behavior: suppressions, baselines, discovery -- and the
self-hosting gate that keeps this repository clean."""

import json
from pathlib import Path

import pytest

from repro.analysis import Scope, analyze_paths, load_baseline, write_baseline
from repro.analysis.engine import PARSE_CODE, SUPPRESSION_CODE, discover_files

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"
EVERYWHERE = Scope(include=("*",))


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def suppression_fixture_result():
    return analyze_paths(
        [str(FIXTURES / "suppressions.py")],
        root=REPO_ROOT,
        scopes={"DET002": EVERYWHERE},
        select=["DET002"],
    )


def test_justified_suppression_suppresses():
    result = suppression_fixture_result()
    suppressed = [f for f in result.findings if f.status == "suppressed"]
    assert len(suppressed) == 1
    assert suppressed[0].code == "DET002"
    assert suppressed[0].suppress_reason == "fixture: justified suppression"


def test_unjustified_suppression_does_not_suppress():
    result = suppression_fixture_result()
    active_det002 = [f for f in result.unsuppressed if f.code == "DET002"]
    assert len(active_det002) == 1, "reason-less ignore must leave the finding live"
    messages = [f.message for f in result.unsuppressed if f.code == SUPPRESSION_CODE]
    assert any("no justification" in message for message in messages)


def test_unused_and_malformed_suppressions_reported():
    result = suppression_fixture_result()
    sup = [f for f in result.unsuppressed if f.code == SUPPRESSION_CODE]
    assert len(sup) == 3  # reason-less, unused, and bracket-less
    assert any("unused suppression" in f.message for f in sup)
    assert any("malformed suppression" in f.message for f in sup)


def test_suppression_in_string_literal_is_prose_not_suppression(tmp_path):
    target = tmp_path / "docs.py"
    target.write_text(
        '"""Explains the # repro: ignore[DET002] comment syntax."""\n'
        "HELP = \"suppress with '# repro: ignore[DET001] reason'\"\n",
        encoding="utf-8",
    )
    result = analyze_paths([str(target)], root=tmp_path)
    assert result.findings == []  # no SUP001: strings are not comments


def test_suppression_must_match_the_code(tmp_path):
    target = tmp_path / "wrong.py"
    target.write_text(
        "def f(kind):\n"
        "    return hash(kind)  # repro: ignore[DET001] wrong code entirely\n",
        encoding="utf-8",
    )
    result = analyze_paths(
        [str(target)], root=tmp_path, scopes={"DET002": EVERYWHERE}
    )
    codes = sorted(f.code for f in result.unsuppressed)
    # The DET002 finding survives and the DET001 ignore is unused.
    assert codes == ["DET002", SUPPRESSION_CODE]


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def test_baseline_roundtrip_and_line_number_independence(tmp_path):
    target = tmp_path / "legacy.py"
    target.write_text(
        "def a(x):\n    return hash(x)\n\ndef b(y):\n    return hash(y)\n",
        encoding="utf-8",
    )
    scopes = {"DET002": EVERYWHERE}
    first = analyze_paths([str(target)], root=tmp_path, scopes=scopes)
    assert len(first.unsuppressed) == 2

    baseline_path = tmp_path / "baseline.json"
    assert write_baseline(baseline_path, first) == 2
    baseline = load_baseline(baseline_path)

    second = analyze_paths([str(target)], root=tmp_path, scopes=scopes, baseline=baseline)
    assert second.unsuppressed == []
    assert [f.status for f in second.findings] == ["baselined", "baselined"]

    # Unrelated edits above a finding do not invalidate the baseline,
    # and a *new* finding is not grandfathered.
    target.write_text(
        "# a new leading comment shifts every line number\n"
        "def a(x):\n    return hash(x)\n\ndef b(y):\n    return hash(y)\n"
        "\ndef c(z):\n    return hash(str(z))\n",
        encoding="utf-8",
    )
    third = analyze_paths([str(target)], root=tmp_path, scopes=scopes, baseline=baseline)
    assert len(third.unsuppressed) == 1
    assert third.unsuppressed[0].line == 9


def test_load_baseline_missing_and_malformed(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()
    bad = tmp_path / "bad.json"
    bad.write_text('["just", "a", "list"]', encoding="utf-8")
    with pytest.raises(ValueError, match="not a repro.analysis baseline"):
        load_baseline(bad)


# ----------------------------------------------------------------------
# Discovery and parse failures
# ----------------------------------------------------------------------
def test_directory_scan_skips_fixture_corpus():
    files = discover_files(["tests"], REPO_ROOT)
    as_posix = [str(path.as_posix()) for path in files]
    assert not any("/fixtures/" in path for path in as_posix)
    assert any(path.endswith("test_analysis_engine.py") for path in as_posix)


def test_explicit_fixture_file_is_analyzed():
    files = discover_files([str(FIXTURES / "det001_bad.py")], REPO_ROOT)
    assert len(files) == 1


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        discover_files(["no/such/dir"], REPO_ROOT)


def test_unknown_select_code_raises():
    with pytest.raises(KeyError, match="unknown rule codes"):
        analyze_paths(["src"], root=REPO_ROOT, select=["NOPE001"])


def test_syntax_error_becomes_parse_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n    pass\n", encoding="utf-8")
    result = analyze_paths([str(target)], root=tmp_path)
    assert [f.code for f in result.findings] == [PARSE_CODE]
    assert result.unsuppressed, "parse failures must fail the gate"


# ----------------------------------------------------------------------
# Self-hosting: the repo gate, as a tier-1 test
# ----------------------------------------------------------------------
def test_analyzer_is_clean_on_its_own_package():
    result = analyze_paths(["src/repro/analysis"], root=REPO_ROOT)
    assert result.unsuppressed == []
    for finding in result.findings:
        assert finding.status == "suppressed"
        assert finding.suppress_reason, "self-suppressions must be justified"


def test_repo_has_zero_unsuppressed_findings():
    """The CI gate, runnable locally: src, tests, benchmarks are clean."""
    result = analyze_paths(["src", "tests", "benchmarks"], root=REPO_ROOT)
    assert [f.location() for f in result.unsuppressed] == []
    # Every suppression in the tree carries its justification.
    for finding in result.findings:
        if finding.status == "suppressed":
            assert finding.suppress_reason


def test_json_report_is_deterministic():
    from repro.analysis import render_json

    result = analyze_paths(["src/repro/analysis"], root=REPO_ROOT)
    again = analyze_paths(["src/repro/analysis"], root=REPO_ROOT)
    assert render_json(result) == render_json(again)
    payload = json.loads(render_json(result))
    assert set(payload) == {"files", "summary", "findings"}
